//! Tune → compile → serve → verify, end to end, at a small scale.
//!
//! Offline, a `RecFlexEngine` is tuned on synthetic history and compiled
//! into one fused heterogeneous-schedule kernel, verified bit-exact against
//! the scalar reference. Online, the engine serves a seeded Poisson
//! long-tail request stream through `recflex-serve` with dynamic batching
//! and an SLO — and the whole run replays bit-identically.

use recflex::embedding::reference_model_output;
use recflex::prelude::*;

fn main() {
    let model = ModelPreset::A.scaled(0.02);
    let history = Dataset::synthesize(&model, 4, 128, 42);
    let arch = GpuArch::v100();

    // Offline: two-stage interference-aware tuning + fused compilation.
    let engine = RecFlexEngine::tune(&model, &history, &arch, &TunerConfig::fast());

    // One fused launch, checked against the golden scalar implementation.
    let batch = Batch::generate(&model, 256, 7);
    let (pooled, report) = engine.run(&batch).expect("fused launch");
    let tables = TableSet::for_model(&model);
    assert_eq!(pooled, reference_model_output(&model, &tables, &batch));
    println!(
        "fused launch: {:.1} us, {:.1} GB/s, bit-exact vs reference",
        report.latency_us, report.metrics.memory_throughput_gbps
    );

    // Online: a Poisson long-tail stream under dynamic batching + an SLO.
    let stream = WorkloadSpec::long_tail(800.0).stream(&model, 32, 9);
    let runtime = ServeRuntime {
        backend: &engine,
        model: &model,
        tables: &tables,
        arch: &arch,
        config: ServeConfig {
            streams: 4,
            policy: BatchPolicy::Dynamic {
                max_batch: 256,
                max_wait_us: 200.0,
            },
            slo_deadline_us: Some(20_000.0),
            ..ServeConfig::default()
        },
    };
    let served = runtime.serve(&stream).expect("serve");
    println!(
        "served {} requests: p50 {:.1} us, p99 {:.1} us, mean queue {:.1} us, \
         {} launches, shed {:.1}%",
        served.completed().count(),
        served.percentile_us(0.50),
        served.percentile_us(0.99),
        served.mean_queue_us(),
        served.kernel_launches,
        100.0 * served.shed_rate(),
    );

    let replay = runtime.serve(&stream).expect("replay");
    assert_eq!(served, replay);
    println!("replay: bit-identical");
}
