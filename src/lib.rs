//! # recflex — feature-heterogeneity-aware recommendation inference
//!
//! Root facade over the workspace crates that reproduce *RecFlex: Enabling
//! Feature Heterogeneity-Aware Optimization for Deep Recommendation Models
//! with Flexible Schedules* (SC'24) on a deterministic GPU simulator.
//!
//! Each sub-crate is re-exported under a short alias so downstream users can
//! depend on the single `recflex` package:
//!
//! * [`data`] — feature specs, pooling distributions, CSR batches, datasets,
//! * [`sim`] — the deterministic analytical GPU simulator,
//! * [`embedding`] — embedding tables, reference kernels, workload analysis,
//! * [`schedules`] — the per-feature schedule templates and registry,
//! * [`compiler`] — heterogeneous-schedule fusion compiler,
//! * [`tuner`] — the interference-aware two-stage tuner,
//! * [`baselines`] — TensorFlow/RECom/TorchRec/HugeCTR comparison backends,
//! * [`dnn`] — the dense MLP stage for end-to-end experiments,
//! * [`core`] — the tuned, compiled, servable [`RecFlexEngine`],
//! * [`serve`] — the deterministic online-serving runtime (dynamic batching,
//!   SLO-aware scheduling, drift-triggered retuning).

pub use recflex_baselines as baselines;
pub use recflex_compiler as compiler;
pub use recflex_core as core;
pub use recflex_data as data;
pub use recflex_dnn as dnn;
pub use recflex_embedding as embedding;
pub use recflex_schedules as schedules;
pub use recflex_serve as serve;
pub use recflex_sim as sim;
pub use recflex_tuner as tuner;

pub use recflex_core::RecFlexEngine;
pub use recflex_data::{Batch, Dataset, FeatureSpec, ModelConfig, ModelPreset};
pub use recflex_sim::GpuArch;

/// Everything a typical tune → compile → serve session needs.
pub mod prelude {
    pub use recflex_baselines::{Backend, BackendError, BackendRun};
    pub use recflex_core::{RecFlexEngine, ServingSimulator};
    pub use recflex_data::{Batch, Dataset, FeatureSpec, ModelConfig, ModelPreset, PoolingDist};
    pub use recflex_embedding::TableSet;
    pub use recflex_serve::{
        BatchPolicy, CanaryConfig, DriftConfig, LifecycleConfig, OutcomePlan, OutcomeSpec, Request,
        RetryPolicy, RetuneOutcome, RetunePolicy, ServeConfig, ServeReport, ServeRuntime,
        WorkloadSpec,
    };
    pub use recflex_sim::GpuArch;
    pub use recflex_tuner::TunerConfig;
}
