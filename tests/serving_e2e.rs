//! Cross-crate integration: tune a RecFlex engine through the facade and
//! serve an online request stream with every batching policy, ending in a
//! drift-triggered hot swap. This is the README's tune → compile → serve
//! story run end to end.

use recflex::data::shift_distribution;
use recflex::prelude::*;

fn tuned() -> (ModelConfig, TableSet, GpuArch, RecFlexEngine) {
    let model = ModelPreset::A.scaled(0.01);
    let tables = TableSet::for_model(&model);
    let arch = GpuArch::v100();
    let history = Dataset::synthesize(&model, 2, 64, 5);
    let engine = RecFlexEngine::tune(&model, &history, &arch, &TunerConfig::fast());
    (model, tables, arch, engine)
}

#[test]
fn facade_tune_then_serve_all_policies() {
    let (model, tables, arch, engine) = tuned();
    let stream = WorkloadSpec::long_tail(600.0).stream(&model, 16, 11);
    for policy in [
        BatchPolicy::Unsplit,
        BatchPolicy::Split { cap: 128 },
        BatchPolicy::Dynamic {
            max_batch: 256,
            max_wait_us: 200.0,
        },
    ] {
        let runtime = ServeRuntime {
            backend: &engine,
            model: &model,
            tables: &tables,
            arch: &arch,
            config: ServeConfig {
                streams: 2,
                policy,
                slo_deadline_us: None,
                closed_loop: false,
                hot_shard_cap: None,
            },
        };
        let report = runtime.serve(&stream).unwrap();
        assert_eq!(report.records.len(), 16);
        assert_eq!(report.shed_rate(), 0.0);
        let replay = runtime.serve(&stream).unwrap();
        assert_eq!(report, replay, "deterministic replay through the facade");
    }
}

#[test]
fn facade_offline_wrapper_matches_paper_splitting_semantics() {
    let (model, tables, arch, engine) = tuned();
    let server = ServingSimulator {
        backend: &engine,
        model: &model,
        tables: &tables,
        arch,
        max_batch: Some(128),
    };
    let long = Batch::generate(&model, 512, 3);
    let stats = server.serve(std::slice::from_ref(&long)).unwrap();
    assert_eq!(stats.request_latencies.len(), 1);
    assert_eq!(stats.kernel_launches, 4, "512 samples split into 4 chunks");
}

#[test]
fn facade_drift_retune_hot_swaps_a_fresh_engine() {
    let (model, tables, arch, engine) = tuned();
    let shifted = shift_distribution(&model, 2.5, 0.0);
    let stream = WorkloadSpec::long_tail(600.0).stream(&shifted, 20, 23);
    let mut policy = RetunePolicy {
        drift: DriftConfig {
            window: 6,
            threshold: 0.3,
            feature_threshold: 0.5,
        },
        retune_latency_us: 2_000.0,
        lifecycle: LifecycleConfig::default(),
        retuner: Box::new(|recent: &[Batch]| {
            let ds = Dataset::from_batches(recent.to_vec());
            (Box::new(RecFlexEngine::tune(
                &ModelPreset::A.scaled(0.01),
                &ds,
                &GpuArch::v100(),
                &TunerConfig::fast(),
            )) as Box<dyn Backend>)
                .into()
        }),
    };
    let runtime = ServeRuntime {
        backend: &engine,
        model: &model,
        tables: &tables,
        arch: &arch,
        config: ServeConfig {
            streams: 2,
            policy: BatchPolicy::Split { cap: 256 },
            slo_deadline_us: None,
            closed_loop: false,
            hot_shard_cap: None,
        },
    };
    let report = runtime.serve_with_retune(&stream, &mut policy).unwrap();
    assert!(report.retunes >= 1, "shifted traffic must trigger a retune");
    assert_eq!(
        report.records.len(),
        20,
        "serving continues across the swap"
    );
}
