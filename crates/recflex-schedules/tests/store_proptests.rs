//! Property tests for the profile vault (ISSUE 9 satellites 1 and 3).
//!
//! * **Loader hardening**: arbitrary bytes — pure garbage, truncations
//!   and single-byte mutations of real sidecars — must always come back
//!   as a structured [`StoreError`] (observed as a quarantine), never a
//!   panic. This also exercises the vendored `serde_json` parser's error
//!   paths, including its recursion-depth guard.
//! * **Determinism**: the same seed and [`StoreFaultSpec`] must replay
//!   to a byte-identical diagnostic log, quarantine set and stats JSON,
//!   run after run — the property CI re-checks across `RECFLEX_THREADS`.

use proptest::proptest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recflex_schedules::{MemVfs, ProfileKey, ProfileVault, ScheduleProfile, StoreFaultSpec, Vfs};
use serde::Serialize;

const SCHEMA_VERSION: u32 = recflex_schedules::store::SCHEMA_VERSION;

fn profile(model: &str, latency: f64, summary: Vec<u32>) -> ScheduleProfile {
    let n = summary.len();
    ScheduleProfile {
        schema_version: SCHEMA_VERSION,
        key: ProfileKey {
            model: model.to_string(),
            arch: "V100".to_string(),
            dist_summary: summary,
        },
        choices: (0..n).collect(),
        schedule_labels: (0..n)
            .map(|i| format!("warp_t128_v{}_u1", 1 + i % 4))
            .collect(),
        occupancy: Some(4),
        mean_latency_us: latency,
        hash: String::new(),
    }
}

proptest! {
    /// Pure garbage bytes load as a quarantine, never a panic.
    #[test]
    fn garbage_sidecars_never_panic(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..512usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let mut vault = ProfileVault::new(MemVfs::new());
        vault.vfs_mut().plant("garbage.json", &bytes);
        let key = ProfileKey {
            model: "m".to_string(),
            arch: "V100".to_string(),
            dist_summary: vec![8],
        };
        assert!(vault.lookup(&key).is_none());
        assert_eq!(vault.stats().quarantined, 1);
        assert_eq!(vault.diagnostics().len(), 1);
    }

    /// Truncating a valid sidecar at any byte boundary is detected.
    #[test]
    fn truncated_sidecars_never_panic(cut in 0u32..4096) {
        let mut vault = ProfileVault::new(MemVfs::new());
        let p = profile("trunc", 11.25, vec![8, 40, 16, 2]);
        let name = vault.store(&p).unwrap();
        let full = vault.vfs_mut().contents(&name).unwrap().to_vec();
        let cut = (cut as usize) % full.len();
        vault.vfs_mut().remove(&name).unwrap();
        vault.vfs_mut().plant(&name, &full[..cut]);
        // A truncated document can never parse AND hash-validate: the
        // hash field seals the full content.
        assert!(vault.lookup(&p.key).is_none());
        assert_eq!(vault.stats().quarantined, 1);
    }

    /// Flipping any single byte of a valid sidecar either leaves a
    /// detectably-invalid document (quarantine) or — only when the flip
    /// lands in insignificant whitespace — the identical profile.
    #[test]
    fn mutated_sidecars_never_panic(pos in 0u32..4096, xor in 1u32..256) {
        let mut vault = ProfileVault::new(MemVfs::new());
        let p = profile("mut", 7.5, vec![3, 9]);
        let name = vault.store(&p).unwrap();
        let mut bytes = vault.vfs_mut().contents(&name).unwrap().to_vec();
        let at = (pos as usize) % bytes.len();
        bytes[at] ^= xor as u8;
        vault.vfs_mut().remove(&name).unwrap();
        vault.vfs_mut().plant(&name, &bytes);
        match vault.lookup(&p.key) {
            Some(got) => {
                // Survivable flips must reproduce the profile exactly.
                assert_eq!(got, p.clone().seal());
                assert_eq!(vault.stats().quarantined, 0);
            }
            None => assert_eq!(vault.stats().quarantined, 1),
        }
    }

    /// Deeply nested JSON planted as a sidecar exercises the parser's
    /// recursion guard: structured error, no stack overflow.
    #[test]
    fn deep_nesting_is_rejected_not_overflowed(depth in 100u32..5000) {
        let mut vault = ProfileVault::new(MemVfs::new());
        let doc = "[".repeat(depth as usize);
        vault.vfs_mut().plant("deep.json", doc.as_bytes());
        let key = ProfileKey {
            model: "m".to_string(),
            arch: "V100".to_string(),
            dist_summary: vec![1],
        };
        assert!(vault.lookup(&key).is_none());
        assert_eq!(vault.stats().quarantined, 1);
    }

    /// One seed ⇒ one story: a hostile fault plan replays to
    /// byte-identical diagnostics, quarantine set and stats JSON.
    #[test]
    fn seeded_fault_runs_replay_byte_identically(seed in 0u64..1_000_000) {
        let a = hostile_run(seed);
        let b = hostile_run(seed);
        assert_eq!(a, b);
    }
}

#[derive(Serialize)]
struct RunReport {
    diagnostics: Vec<String>,
    quarantine_log: Vec<String>,
    stats: recflex_schedules::VaultStats,
    survivors: Vec<String>,
}

/// A fixed op sequence against a seeded hostile store; returns the run's
/// full observable state as canonical JSON.
fn hostile_run(seed: u64) -> String {
    let spec = StoreFaultSpec::hostile();
    let plan = spec.plan(32, seed);
    let mut vault = ProfileVault::new(MemVfs::with_plan(plan));
    let models = ["alpha", "beta", "gamma"];
    for (i, m) in models.iter().enumerate() {
        let p = profile(m, 5.0 + i as f64, vec![8 + i as u32, 24]);
        let _ = vault.store(&p); // store failures are part of the story
    }
    // Two lookup rounds: the first may quarantine, the second must see
    // a clean (or cleanly degraded) store.
    let mut survivors = Vec::new();
    for _round in 0..2 {
        for (i, m) in models.iter().enumerate() {
            let key = ProfileKey {
                model: m.to_string(),
                arch: "V100".to_string(),
                dist_summary: vec![8 + i as u32, 24],
            };
            if let Some(p) = vault.lookup_nearest(&key, 4) {
                survivors.push(format!("{m}:{}", p.mean_latency_us));
            }
        }
    }
    let quarantine_log = vault
        .vfs_mut()
        .list()
        .into_iter()
        .filter(|n| n.ends_with(".quarantined"))
        .collect();
    let report = RunReport {
        diagnostics: vault.diagnostics().to_vec(),
        quarantine_log,
        stats: vault.stats(),
        survivors,
    };
    serde_json::to_string_pretty(&report).unwrap()
}

/// The canonical corruption quartet (torn write, byte-flip, duplicate,
/// version skew) in one store: all four detected, all four quarantined
/// with deterministic diagnostics, and the clean profile still served.
#[test]
fn corruption_quartet_is_fully_quarantined() {
    let mut vault = ProfileVault::new(MemVfs::new());
    let clean = profile("clean", 5.0, vec![8]).seal();
    vault.store(&clean).unwrap();

    // Torn write: a truncated sidecar.
    let torn = profile("torn", 6.0, vec![8]).seal();
    let torn_text = serde_json::to_string_pretty(&torn).unwrap();
    vault
        .vfs_mut()
        .plant(&torn.key.sidecar_name(), &torn_text.as_bytes()[..40]);

    // Byte-flip: one corrupted content byte behind a valid hash.
    let flip = profile("flip", 7.0, vec![8]).seal();
    let mut flip_bytes = serde_json::to_string_pretty(&flip).unwrap().into_bytes();
    let at = flip_bytes
        .windows(3)
        .position(|w| w == b"7.0")
        .expect("latency literal");
    flip_bytes[at] = b'1';
    vault.vfs_mut().plant(&flip.key.sidecar_name(), &flip_bytes);

    // Duplicate: a second (invalid: stale hash) copy of the clean key.
    let mut dup = clean.clone();
    dup.mean_latency_us = 1.0; // content changed, hash not re-sealed
    vault.vfs_mut().plant(
        &format!("dup-{}", clean.key.sidecar_name()),
        serde_json::to_string_pretty(&dup).unwrap().as_bytes(),
    );

    // Version skew: wrong schema version, correctly sealed.
    let skew = ScheduleProfile {
        schema_version: SCHEMA_VERSION + 7,
        ..profile("skew", 8.0, vec![8])
    }
    .seal();
    vault.vfs_mut().plant(
        &skew.key.sidecar_name(),
        serde_json::to_string_pretty(&skew).unwrap().as_bytes(),
    );

    // One lookup sweeps the store: every corruption quarantined, the
    // clean profile survives (the stale-hash duplicate loses validation,
    // so no conflict is even reached).
    let got = vault.lookup(&clean.key).expect("clean profile survives");
    assert_eq!(got.mean_latency_us, 5.0);
    assert_eq!(vault.stats().quarantined, 4, "{:?}", vault.diagnostics());
    let diags = vault.diagnostics().join("\n");
    assert!(diags.contains("malformed"), "torn: {diags}");
    assert!(diags.contains("hash mismatch"), "flip+dup: {diags}");
    assert!(diags.contains("schema version"), "skew: {diags}");
}
