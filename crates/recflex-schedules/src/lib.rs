//! # recflex-schedules — per-feature kernel schedule templates
//!
//! A *schedule* is how one feature's embedding operation maps onto GPU
//! threads (paper footnote 2: tiling, thread mapping, loop order…). RecFlex
//! requires users to provide per-feature schedule *templates* with tunable
//! parameters (Section V: templates were written "based on the kernels
//! provided by TensorFlow, TorchRec, and NVIDIA Thrust"). This crate
//! provides five families:
//!
//! | Template | Thread mapping | Sweet spot |
//! |---|---|---|
//! | [`ScheduleKind::RowPerThread`] | one sample per thread, serial pooling | tiny dims, one-hot |
//! | [`ScheduleKind::SubWarp`] | 2–16 threads per sample across dim | small/mid dims |
//! | [`ScheduleKind::SamplePerWarp`] | one warp per sample (TorchRec-like) | dim ≈ 32–128 |
//! | [`ScheduleKind::SamplePerBlock`] | one block per sample (HugeCTR-like) | huge pooling factors |
//! | [`ScheduleKind::SmemStaged`] | warp per sample + smem row staging | large pf × large dim, low occupancy |
//!
//! Tunables: threads/block, vector width, pooling-loop unroll, staging
//! depth. Every concrete [`ScheduleInstance`]:
//!
//! * reports a resource footprint ([`ScheduleInstance::resources`]) that the
//!   occupancy calculator consumes — register demand grows with
//!   accumulator count and unrolling, so occupancy control has real
//!   consequences (the Figure 12 spill cliff),
//! * computes how many blocks a live workload needs
//!   ([`ScheduleInstance::required_blocks`]) — the input to runtime thread
//!   mapping,
//! * produces an analytic [`recflex_sim::BlockProfile`] per block from the
//!   CSR, with faithful coalescing (sector overfetch for scattered
//!   accesses), divergence (warps iterate to the max pooling factor among
//!   their samples) and predication (lanes beyond the dim are switched off),
//! * executes functionally, bit-identical to the scalar reference,
//! * prints the CUDA `__device__` function it corresponds to.

pub mod codegen;
pub mod exec;
pub mod profile;
pub mod registry;
pub mod store;
pub mod template;

pub use registry::{enumerate_candidates, CandidateError, CandidateSet};
pub use store::{
    distribution_summary, DirVfs, MemVfs, ProfileKey, ProfileVault, ScheduleProfile, StoreError,
    StoreFault, StoreFaultKind, StoreFaultPlan, StoreFaultSpec, VaultStats, Vfs,
};
pub use template::{ScheduleInstance, ScheduleKind, ScheduleParams};
