//! Candidate enumeration — the per-feature search space `S^(f)`.
//!
//! The paper's tuner receives `N_f` schedule candidates per feature
//! (Section IV-A1). This registry enumerates a feature-appropriate
//! candidate set from the five template families: templates that cannot
//! possibly suit a feature (e.g. a block-per-sample mapping for a one-hot
//! field) are pruned so tuning time stays within the `O(F·K)` budget.

use crate::template::{ScheduleInstance, ScheduleKind, ScheduleParams};
use recflex_data::FeatureSpec;

/// The candidate set of one feature.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Feature index in the model.
    pub feature_idx: usize,
    /// The `N_f` candidates, in a stable enumeration order.
    pub candidates: Vec<ScheduleInstance>,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the set is empty. Never true for a set returned by
    /// [`enumerate_candidates`]: emptiness is surfaced there as a
    /// [`CandidateError`] instead of an empty set, so downstream code
    /// may index `candidates[0]` without checking.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Candidate enumeration failure: the feature admits no schedule at all.
///
/// The only way to get here is a degenerate [`FeatureSpec`] (an embedding
/// dimension of zero prunes every template family). Surfacing it as a
/// structured error — rather than the `debug_assert` this module used to
/// rely on — means release builds fail loudly at enumeration time instead
/// of panicking on an out-of-bounds `candidates[0]` deep inside the tuner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateError {
    /// Feature index in the model.
    pub feature_idx: usize,
    /// The embedding dimension that pruned every template.
    pub emb_dim: u32,
}

impl std::fmt::Display for CandidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "feature {} admits no schedule candidates (emb_dim {})",
            self.feature_idx, self.emb_dim
        )
    }
}

impl std::error::Error for CandidateError {}

fn params(t: u32, g: u32, v: u32, u: u32, stage: u32) -> ScheduleParams {
    ScheduleParams {
        threads_per_block: t,
        group_size: g,
        vector_width: v,
        unroll: u,
        stage_rows: stage,
    }
}

/// Enumerate the schedule candidates for one feature.
///
/// Guaranteed non-empty on success: any feature with `emb_dim >= 1` always
/// receives at least the scalar `SamplePerWarp` mapping. A degenerate spec
/// that prunes everything returns [`CandidateError`] instead of an empty
/// set.
pub fn enumerate_candidates(
    feature_idx: usize,
    spec: &FeatureSpec,
) -> Result<CandidateSet, CandidateError> {
    let dim = spec.emb_dim;
    let mean_pf = spec.pooling.mean();
    let mut c = Vec::new();

    // RowPerThread: accumulators live in registers, so only small dims.
    if dim <= 64 {
        for t in [64u32, 128, 256] {
            for v in [1u32, 4] {
                if v <= dim {
                    c.push(ScheduleInstance {
                        kind: ScheduleKind::RowPerThread,
                        params: params(t, 1, v, 1, 0),
                        emb_dim: dim,
                    });
                }
            }
        }
    }

    // SubWarp: group must not exceed the useful lane count too far.
    for g in [2u32, 4, 8, 16] {
        if g > dim * 2 {
            continue;
        }
        for t in [128u32, 256] {
            for v in [1u32, 2, 4] {
                if v > dim {
                    continue;
                }
                for u in [1u32, 2] {
                    c.push(ScheduleInstance {
                        kind: ScheduleKind::SubWarp,
                        params: params(t, g, v, u, 0),
                        emb_dim: dim,
                    });
                }
            }
        }
    }

    // SamplePerWarp: the general-purpose mapping, always included.
    for t in [128u32, 256] {
        for v in [1u32, 2, 4] {
            if v > dim {
                continue;
            }
            for u in [1u32, 2] {
                c.push(ScheduleInstance {
                    kind: ScheduleKind::SamplePerWarp,
                    params: params(t, 32, v, u, 0),
                    emb_dim: dim,
                });
            }
        }
    }

    // SamplePerBlock: only pays off with substantial per-sample pooling.
    if mean_pf >= 16.0 {
        for t in [128u32, 256] {
            for v in [2u32, 4] {
                if v > dim {
                    continue;
                }
                c.push(ScheduleInstance {
                    kind: ScheduleKind::SamplePerBlock,
                    params: params(t, t, v, 1, 0),
                    emb_dim: dim,
                });
            }
        }
    }

    // GatherScatter: TensorFlow's two-phase lowering — attractive for any
    // multi-hot feature when measured in isolation, a bandwidth trap when
    // fused (which is exactly why the search space must contain it: the
    // tuner's job is to reject it under interference).
    if mean_pf >= 4.0 && dim >= 1 {
        for t in [128u32, 256] {
            let v = 4u32.min(dim);
            c.push(ScheduleInstance {
                kind: ScheduleKind::GatherScatter,
                params: params(t, 32, v, 1, 0),
                emb_dim: dim,
            });
        }
    }

    // SmemStaged: multi-hot features with enough rows to stage.
    if mean_pf >= 8.0 {
        for stage in [8u32, 16] {
            for v in [2u32, 4] {
                if v > dim {
                    continue;
                }
                // Keep the staging buffer within a sane smem budget.
                let smem = 4 * stage * dim * 4; // 4 warps at 128 threads
                if smem <= 48 * 1024 {
                    c.push(ScheduleInstance {
                        kind: ScheduleKind::SmemStaged,
                        params: params(128, 32, v, 1, stage),
                        emb_dim: dim,
                    });
                }
            }
        }
    }

    if c.is_empty() {
        return Err(CandidateError {
            feature_idx,
            emb_dim: dim,
        });
    }
    Ok(CandidateSet {
        feature_idx,
        candidates: c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{ModelPreset, PoolingDist};
    use std::collections::HashSet;

    fn spec(dim: u32, pooling: PoolingDist) -> FeatureSpec {
        FeatureSpec {
            name: "t".into(),
            table_rows: 10_000,
            emb_dim: dim,
            pooling,
            coverage: 1.0,
            row_skew: 0.0,
        }
    }

    #[test]
    fn every_feature_of_every_preset_has_candidates() {
        for preset in ModelPreset::TABLE1 {
            let m = preset.scaled(0.02);
            for (i, f) in m.features.iter().enumerate() {
                let cs = enumerate_candidates(i, f).unwrap();
                assert!(!cs.is_empty(), "{preset:?} feature {i}");
                assert!(
                    cs.len() < 80,
                    "search space must stay bounded, got {}",
                    cs.len()
                );
            }
        }
    }

    #[test]
    fn one_hot_features_skip_block_per_sample() {
        let cs = enumerate_candidates(0, &spec(32, PoolingDist::OneHot)).unwrap();
        assert!(cs
            .candidates
            .iter()
            .all(|s| s.kind != ScheduleKind::SamplePerBlock));
        assert!(cs
            .candidates
            .iter()
            .all(|s| s.kind != ScheduleKind::SmemStaged));
    }

    #[test]
    fn heavy_multi_hot_includes_block_per_sample() {
        let cs = enumerate_candidates(0, &spec(64, PoolingDist::Fixed(100))).unwrap();
        assert!(cs
            .candidates
            .iter()
            .any(|s| s.kind == ScheduleKind::SamplePerBlock));
        assert!(cs
            .candidates
            .iter()
            .any(|s| s.kind == ScheduleKind::SmemStaged));
    }

    #[test]
    fn wide_dims_skip_row_per_thread() {
        let cs = enumerate_candidates(0, &spec(128, PoolingDist::Fixed(10))).unwrap();
        assert!(cs
            .candidates
            .iter()
            .all(|s| s.kind != ScheduleKind::RowPerThread));
    }

    #[test]
    fn vector_width_never_exceeds_dim() {
        let cs = enumerate_candidates(0, &spec(4, PoolingDist::Fixed(20))).unwrap();
        assert!(cs.candidates.iter().all(|s| s.params.vector_width <= 4));
        let tiny = enumerate_candidates(0, &spec(4, PoolingDist::OneHot)).unwrap();
        assert!(tiny.candidates.iter().all(|s| s.params.vector_width <= 4));
    }

    #[test]
    fn candidates_are_distinct() {
        let cs = enumerate_candidates(0, &spec(32, PoolingDist::Fixed(50))).unwrap();
        let set: HashSet<_> = cs.candidates.iter().collect();
        assert_eq!(
            set.len(),
            cs.len(),
            "duplicate candidates in the search space"
        );
    }

    #[test]
    fn enumeration_is_deterministic() {
        let a = enumerate_candidates(3, &spec(16, PoolingDist::Fixed(30))).unwrap();
        let b = enumerate_candidates(3, &spec(16, PoolingDist::Fixed(30))).unwrap();
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn degenerate_feature_is_a_structured_error_not_a_panic() {
        // emb_dim 0 prunes every template family; the old debug_assert
        // made this a release-mode silent empty set.
        let err = enumerate_candidates(7, &spec(0, PoolingDist::Fixed(10))).unwrap_err();
        assert_eq!(
            err,
            CandidateError {
                feature_idx: 7,
                emb_dim: 0
            }
        );
        assert!(err.to_string().contains("feature 7"));
    }

    #[test]
    fn any_positive_dim_is_guaranteed_candidates() {
        // The doc contract on `is_empty`: every valid (dim >= 1) feature
        // gets at least the scalar SamplePerWarp mapping, for every
        // pooling shape.
        for dim in [1u32, 2, 3, 5, 17, 64, 128, 512] {
            for pooling in [
                PoolingDist::OneHot,
                PoolingDist::Fixed(1),
                PoolingDist::Fixed(200),
            ] {
                let cs = enumerate_candidates(0, &spec(dim, pooling)).unwrap();
                assert!(!cs.is_empty(), "dim {dim}");
            }
        }
    }
}
