//! Analytic per-block profiling of schedules.
//!
//! Given a feature's CSR and a block index, each schedule computes the
//! block's [`BlockProfile`] exactly as the corresponding CUDA code would
//! behave:
//!
//! * **Coalescing** — loads are counted in 32-byte sectors. A warp-per-
//!   sample schedule reading a contiguous row produces `ceil(row_bytes/32)`
//!   sectors; a row-per-thread schedule's lanes each hit their own row, so
//!   every vector load is its own sector and small dims over-fetch.
//! * **Divergence** — a warp iterates to the *maximum* pooling factor among
//!   its samples; lanes whose sample is exhausted idle (the paper's Table II
//!   "Avg. Active Threads Per Warp" gap).
//! * **Predication** — lanes beyond the embedding dimension are predicated
//!   off (the TorchRec max-dim penalty).
//! * **Spilling** — if occupancy control capped registers below the
//!   schedule's natural demand, the overflow spills once per pooling-loop
//!   round.

use crate::template::{ScheduleInstance, ScheduleKind};
use recflex_data::FeatureBatch;
use recflex_embedding::FeatureWorkload;
use recflex_sim::BlockProfile;

/// Sectors needed to read `dim × 4` contiguous bytes in chunks of
/// `lanes × vec` floats.
fn sectors_per_row(dim: u32, lanes: u32, vec: u32) -> u64 {
    let chunk_floats = lanes * vec;
    let mut sectors = 0u64;
    let mut remaining = dim;
    while remaining > 0 {
        let this = remaining.min(chunk_floats);
        sectors += (this as u64 * 4).div_ceil(32);
        remaining -= this;
    }
    sectors.max(1)
}

impl ScheduleInstance {
    /// Profile block `rel_bidx` of this schedule over feature batch `fb`.
    ///
    /// `reg_cap` is the occupancy-control register budget (spill modelling).
    /// Blocks whose sample range is empty (possible under static
    /// over-allocation) report an idle profile.
    pub fn block_profile(
        &self,
        fb: &FeatureBatch,
        w: &FeatureWorkload,
        rel_bidx: u32,
        reg_cap: Option<u32>,
    ) -> BlockProfile {
        let batch = fb.batch_size();
        let spb = self.samples_per_block();
        let s0 = rel_bidx.saturating_mul(spb);
        if s0 >= batch {
            return BlockProfile::idle();
        }
        let s1 = (s0 + spb).min(batch);

        // Grid-level reuse: the block's first-touch table bytes scale with
        // the feature's unique/total ratio (exact at feature granularity).
        let unique_frac = if w.bytes_read() == 0 {
            1.0
        } else {
            w.unique_bytes() as f64 / w.bytes_read() as f64
        };

        let mut p = match self.kind {
            ScheduleKind::SamplePerBlock => self.profile_sample_per_block(fb, s0, unique_frac),
            ScheduleKind::GatherScatter => self.profile_gather(fb, s0, s1, unique_frac),
            _ => self.profile_grouped(fb, s0, s1, unique_frac),
        };

        // Register spilling under occupancy control: the register set is
        // cycled once per pooling-loop round.
        if let Some(cap) = reg_cap {
            let natural = self.natural_regs();
            if cap < natural {
                let max_pf = (s0..s1).map(|s| fb.pooling_factor(s)).max().unwrap_or(0);
                let rounds = (max_pf as u64).div_ceil(self.params.unroll as u64).max(1);
                p.add_spill(natural - cap, self.params.threads_per_block, rounds);
            }
        }
        // Host-resident table rows missing the GPU hot cache travel over
        // the interconnect (paper Section VII's UVM schedules).
        p.demote_to_uvm(w.uvm_cold_frac);
        p
    }

    /// Whether this schedule can be dispatched at *warp* granularity
    /// (paper Section IV-B: the thread-mapping unit "can be extended to
    /// other thread group structures like warps"). Schedules that use
    /// block-wide shared memory or `__syncthreads()` need whole blocks.
    pub fn supports_warp_mapping(&self) -> bool {
        matches!(
            self.kind,
            ScheduleKind::RowPerThread | ScheduleKind::SubWarp | ScheduleKind::SamplePerWarp
        )
    }

    /// Warp tasks needed for a live workload under warp-granularity
    /// mapping: one task per `samples_per_warp()` samples.
    pub fn required_warps(&self, w: &FeatureWorkload) -> u32 {
        w.batch_size.div_ceil(self.samples_per_warp()).max(1)
    }

    /// Profile of a single *warp task* `rel_widx` (the warp-granularity
    /// analogue of [`Self::block_profile`]). Only meaningful for
    /// [`Self::supports_warp_mapping`] schedules.
    pub fn warp_profile(
        &self,
        fb: &FeatureBatch,
        w: &FeatureWorkload,
        rel_widx: u32,
        reg_cap: Option<u32>,
    ) -> BlockProfile {
        debug_assert!(self.supports_warp_mapping());
        let spw = self.samples_per_warp();
        let s0 = rel_widx.saturating_mul(spw);
        if s0 >= fb.batch_size() {
            return BlockProfile::idle();
        }
        let s1 = (s0 + spw).min(fb.batch_size());
        let unique_frac = if w.bytes_read() == 0 {
            1.0
        } else {
            w.unique_bytes() as f64 / w.bytes_read() as f64
        };
        let mut p = self.profile_grouped(fb, s0, s1, unique_frac);
        if let Some(cap) = reg_cap {
            let natural = self.natural_regs();
            if cap < natural {
                let max_pf = (s0..s1).map(|s| fb.pooling_factor(s)).max().unwrap_or(0);
                let rounds = (max_pf as u64).div_ceil(self.params.unroll as u64).max(1);
                p.add_spill(natural - cap, 32, rounds);
            }
        }
        p.demote_to_uvm(w.uvm_cold_frac);
        p
    }

    /// Profile for RowPerThread / SubWarp / SamplePerWarp / SmemStaged:
    /// `group_size` lanes per sample, several samples per warp.
    fn profile_grouped(
        &self,
        fb: &FeatureBatch,
        s0: u32,
        s1: u32,
        unique_frac: f64,
    ) -> BlockProfile {
        let g = self.params.group_size;
        let vec = self.params.vector_width;
        let dim = self.emb_dim;
        let spw = self.samples_per_warp();
        let chunks = self.chunks_per_row() as u64;
        let scattered = matches!(self.kind, ScheduleKind::RowPerThread);
        let row_sectors = if scattered {
            chunks
        } else {
            sectors_per_row(dim, g, vec)
        };
        let useful_lane_iters_per_row = (dim as u64).div_ceil(vec as u64);
        let out_sectors_per_sample = if scattered {
            chunks // lanes write their own sample's vector: scattered
        } else {
            sectors_per_row(dim, g, vec)
        };

        let staged = matches!(self.kind, ScheduleKind::SmemStaged);
        let instr_per_iter =
            1.0 + vec as f64 + 3.0 / self.params.unroll as f64 + if staged { 2.0 } else { 0.0 };

        let mut p = BlockProfile::default();
        let mut s = s0;
        let mut warps = 0u32;
        let mut block_max_pf = 0u32;
        let mut critical = 0u64;
        while s < s1 {
            let e = (s + spw).min(s1);
            let mut max_pf = 0u64;
            let mut sum_pf = 0u64;
            for si in s..e {
                let pf = fb.pooling_factor(si) as u64;
                max_pf = max_pf.max(pf);
                sum_pf += pf;
            }
            block_max_pf = block_max_pf.max(max_pf as u32);
            let warp_iters = max_pf * chunks;
            // This warp's dependent-load chain: one load per iteration.
            critical = critical.max(warp_iters);
            p.issue_cycles += warp_iters as f64 * instr_per_iter;
            p.mem_transactions += sum_pf * row_sectors;
            p.bytes_accessed += sum_pf * row_sectors * 32;
            p.thread_active_sum += sum_pf * chunks * g as u64;
            p.thread_useful_sum += sum_pf * useful_lane_iters_per_row;
            p.thread_slot_sum += warp_iters * 32;

            // Output stores: one pooled vector per sample in the warp.
            let n_samples = (e - s) as u64;
            p.mem_transactions += n_samples * out_sectors_per_sample;
            p.bytes_written += n_samples * out_sectors_per_sample * 32;
            p.issue_cycles += (n_samples * chunks) as f64 * 1.5;

            warps += 1;
            s = e;
        }

        p.active_warps = warps;
        // Prologue: the task-map entry and the argument pack are two
        // dependent global loads before any embedding work can start
        // (Figure 8 lines 8–11) — a real fixed cost per block that
        // penalizes schedules splintering the batch into tiny blocks.
        p.critical_mem_chain = critical + chunks + 2;
        p.mem_transactions += 2;
        p.unique_bytes = (p.bytes_accessed as f64 * unique_frac) as u64 + 64;
        p.bytes_accessed += 64;
        p.issue_cycles += 20.0;
        p.flops = (s0..s1).map(|si| fb.pooling_factor(si) as u64).sum::<u64>() * dim as u64;
        // Pooling loads are independent gathers; a warp keeps several in
        // flight, bounded by its scoreboard/MSHR share. Unrolling and
        // vectorization raise the sustainable depth.
        p.mlp = if staged {
            (self.params.stage_rows as f64 / 2.0).min(8.0)
        } else {
            (1.5 + self.params.unroll as f64 * vec as f64 / 2.0).min(6.0)
        };
        if staged {
            // One block-wide barrier per staging round.
            let rounds = (block_max_pf as u64).div_ceil(self.params.stage_rows.max(1) as u64);
            p.barriers += rounds as u32;
        }
        p
    }

    /// Profile for SamplePerBlock: the whole block serves sample `s`.
    fn profile_sample_per_block(
        &self,
        fb: &FeatureBatch,
        s: u32,
        unique_frac: f64,
    ) -> BlockProfile {
        let vec = self.params.vector_width;
        let dim = self.emb_dim;
        let num_warps = (self.params.threads_per_block / 32).max(1);
        let pf = fb.pooling_factor(s) as u64;
        let chunks = self.chunks_per_row() as u64;
        let row_sectors = sectors_per_row(dim, 32, vec);
        let useful_lane_iters_per_row = (dim as u64).div_ceil(vec as u64);

        let mut p = BlockProfile::default();
        let rows_per_warp = pf.div_ceil(num_warps as u64);
        let active_warps = pf.min(num_warps as u64).max(1) as u32;
        let warp_iters = rows_per_warp * chunks;
        let instr_per_iter = 1.0 + vec as f64 + 3.0 / self.params.unroll as f64;

        p.issue_cycles = active_warps as f64 * warp_iters as f64 * instr_per_iter
            / num_warps as f64
            * num_warps as f64; // total warp-instructions across the block
        p.mem_transactions = pf * row_sectors;
        p.bytes_accessed = pf * row_sectors * 32;
        p.thread_active_sum = pf * chunks * 32;
        p.thread_useful_sum = pf * useful_lane_iters_per_row;
        p.thread_slot_sum = (active_warps as u64 * warp_iters).max(1) * 32;

        // Cross-warp tree reduction through shared memory + final store.
        let out_sectors = sectors_per_row(dim, 32, vec);
        p.mem_transactions += out_sectors;
        p.bytes_written = out_sectors * 32;
        p.issue_cycles += num_warps as f64 * chunks as f64 * 3.0 + 25.0;
        p.barriers = 2;
        p.active_warps = active_warps;
        // Rows split across warps shorten the chain; + reduction round and
        // the two dependent prologue loads (task map, argument pack).
        p.critical_mem_chain = rows_per_warp * chunks + 2 * chunks + 2;
        p.mem_transactions += 2;
        p.unique_bytes = (p.bytes_accessed as f64 * unique_frac) as u64 + 64;
        p.bytes_accessed += 64;
        p.mlp = (1.5 + self.params.unroll as f64 * vec as f64 / 2.0).min(6.0);
        p.flops = pf * dim as u64 + num_warps as u64 * dim as u64;
        p
    }

    /// Profile for GatherScatter: two balanced streaming phases through a
    /// global scratch buffer (the TensorFlow gather + segment-sum
    /// lowering). Chains are the shortest of any template because every
    /// warp streams an even share of rows; the price is ~3× the memory
    /// traffic, and the scratch bytes are compulsory DRAM (no reuse).
    fn profile_gather(
        &self,
        fb: &FeatureBatch,
        s0: u32,
        s1: u32,
        unique_frac: f64,
    ) -> BlockProfile {
        let vec = self.params.vector_width;
        let dim = self.emb_dim;
        let num_warps = (self.params.threads_per_block / 32).max(1) as u64;
        let chunks = self.chunks_per_row() as u64;
        let row_sectors = sectors_per_row(dim, 32, vec);
        let rows: u64 = (s0..s1).map(|s| fb.pooling_factor(s) as u64).sum();
        let n_samples = (s1 - s0) as u64;

        let mut p = BlockProfile::default();
        let rows_per_warp = rows.div_ceil(num_warps);
        // Phase 1: gather (table read + scratch write), phase 2: reduce
        // (scratch read + output write). All streams, evenly balanced.
        let table_bytes = rows * row_sectors * 32;
        let scratch_bytes = 2 * rows * row_sectors * 32; // write + read back
        let out_sectors = n_samples * sectors_per_row(dim, 32, vec);
        p.mem_transactions = 3 * rows * row_sectors + out_sectors + 2;
        p.bytes_accessed = table_bytes + scratch_bytes + 64;
        p.bytes_written = rows * row_sectors * 32 + out_sectors * 32;
        // Table reads follow feature reuse; scratch traffic is all unique.
        p.unique_bytes = (table_bytes as f64 * unique_frac) as u64 + scratch_bytes + 64;
        p.issue_cycles = (3 * rows_per_warp * chunks) as f64 * (1.0 + vec as f64)
            + n_samples as f64 * chunks as f64 * 1.5
            + 20.0;
        // Both phases stream an even row share per warp; + prologue.
        p.critical_mem_chain = 3 * rows_per_warp * chunks + chunks + 2;
        p.active_warps = rows.min(num_warps).max(1) as u32;
        p.thread_active_sum = 3 * rows * chunks * 32;
        p.thread_useful_sum = 3 * rows * (dim as u64).div_ceil(vec as u64);
        p.thread_slot_sum = 3 * rows * chunks * 32;
        p.barriers = 1;
        p.flops = rows * dim as u64;
        p.mlp = 8.0; // pure streaming copies pipeline deeply
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::ScheduleParams;
    use recflex_data::{FeatureBatch, FeatureSpec, PoolingDist};

    fn workload(fb: &FeatureBatch, dim: u32) -> FeatureWorkload {
        FeatureWorkload::analyze(0, fb, dim, 100_000)
    }

    fn spec(dim: u32, pf: u32) -> FeatureSpec {
        FeatureSpec {
            name: "t".into(),
            table_rows: 100_000,
            emb_dim: dim,
            pooling: PoolingDist::Fixed(pf),
            coverage: 1.0,
            row_skew: 0.0,
        }
    }

    fn inst(
        kind: ScheduleKind,
        t: u32,
        g: u32,
        v: u32,
        u: u32,
        stage: u32,
        dim: u32,
    ) -> ScheduleInstance {
        ScheduleInstance {
            kind,
            params: ScheduleParams {
                threads_per_block: t,
                group_size: g,
                vector_width: v,
                unroll: u,
                stage_rows: stage,
            },
            emb_dim: dim,
        }
    }

    #[test]
    fn sectors_per_row_math() {
        // 32 floats = 128B = 4 sectors read by 32 lanes × 1 float.
        assert_eq!(sectors_per_row(32, 32, 1), 4);
        // 4 floats = 16B → still one 32B sector.
        assert_eq!(sectors_per_row(4, 32, 1), 1);
        // 64 floats by 8 lanes × 4 = 32 floats/chunk: 2 chunks × 4 sectors.
        assert_eq!(sectors_per_row(64, 8, 4), 8);
        // 2 lanes × 1 float = 8B chunks: 16 chunks of 1 sector for dim 32.
        assert_eq!(sectors_per_row(32, 2, 1), 16);
    }

    #[test]
    fn row_per_thread_overfetches_on_wide_dims() {
        let fb = FeatureBatch::generate(&spec(32, 10), 128, 1);
        let w = workload(&fb, 32);
        let rpt = inst(ScheduleKind::RowPerThread, 128, 1, 1, 1, 0, 32);
        let warp = inst(ScheduleKind::SamplePerWarp, 128, 32, 1, 1, 0, 32);
        let p_rpt = rpt.block_profile(&fb, &w, 0, None);
        let p_warp = warp.block_profile(&fb, &w, 0, None);
        // RowPerThread: every 1-float load is its own sector → 8× the bytes
        // of the coalesced warp mapping per unit of useful data.
        let rpt_bytes_per_flop = p_rpt.bytes_accessed as f64 / p_rpt.flops as f64;
        let warp_bytes_per_flop = p_warp.bytes_accessed as f64 / p_warp.flops as f64;
        assert!(
            rpt_bytes_per_flop > 4.0 * warp_bytes_per_flop,
            "rpt {rpt_bytes_per_flop} vs warp {warp_bytes_per_flop}"
        );
    }

    #[test]
    fn warp_mapping_wastes_lanes_on_tiny_dims() {
        let fb = FeatureBatch::generate(&spec(4, 1), 256, 2);
        let w = workload(&fb, 4);
        let warp = inst(ScheduleKind::SamplePerWarp, 128, 32, 1, 1, 0, 4);
        let rpt = inst(ScheduleKind::RowPerThread, 128, 1, 1, 1, 0, 4);
        let p_warp = warp.block_profile(&fb, &w, 0, None);
        let p_rpt = rpt.block_profile(&fb, &w, 0, None);
        let warp_useful = p_warp.thread_useful_sum as f64 / p_warp.thread_slot_sum as f64;
        let rpt_useful = p_rpt.thread_useful_sum as f64 / p_rpt.thread_slot_sum as f64;
        // 4 of 32 lanes useful for the warp mapping on dim 4.
        assert!(warp_useful < 0.2, "warp useful {warp_useful}");
        assert!(rpt_useful > 0.5, "rpt useful {rpt_useful}");
    }

    #[test]
    fn divergence_tracks_pf_variance() {
        // Warp of 32 samples: one has pf 100, the rest pf 1.
        let mut offsets = vec![0u32];
        let mut indices = Vec::new();
        for s in 0..32 {
            let pf = if s == 0 { 100 } else { 1 };
            for k in 0..pf {
                indices.push((s * 131 + k) % 1000);
            }
            offsets.push(indices.len() as u32);
        }
        let fb = FeatureBatch { offsets, indices };
        let w = workload(&fb, 8);
        let rpt = inst(ScheduleKind::RowPerThread, 32, 1, 1, 1, 0, 8);
        let p = rpt.block_profile(&fb, &w, 0, None);
        // Active fraction ≈ (100+31)/(32×100).
        let frac = p.thread_active_sum as f64 / p.thread_slot_sum as f64;
        assert!(
            frac < 0.1,
            "divergent warp should be mostly idle, got {frac}"
        );
    }

    #[test]
    fn uniform_pf_has_no_divergence() {
        let fb = FeatureBatch::generate(&spec(8, 10), 64, 3);
        let w = workload(&fb, 8);
        let rpt = inst(ScheduleKind::RowPerThread, 64, 1, 1, 1, 0, 8);
        let p = rpt.block_profile(&fb, &w, 0, None);
        assert_eq!(p.thread_active_sum, p.thread_slot_sum);
    }

    #[test]
    fn sample_per_block_parallelizes_rows() {
        let fb = FeatureBatch::generate(&spec(64, 200), 8, 4);
        let w = workload(&fb, 64);
        let blk = inst(ScheduleKind::SamplePerBlock, 256, 256, 4, 1, 0, 64);
        let warp = inst(ScheduleKind::SamplePerWarp, 256, 32, 4, 1, 0, 64);
        let p_blk = blk.block_profile(&fb, &w, 0, None);
        let p_warp = warp.block_profile(&fb, &w, 0, None);
        // Per unit of pooling work, the block mapping issues over ~8 warps
        // in parallel, so its per-sample issue chain is much shorter.
        let blk_chain = p_blk.issue_cycles / p_blk.active_warps.max(1) as f64 / p_blk.flops as f64;
        let warp_chain =
            p_warp.issue_cycles / p_warp.active_warps.max(1) as f64 / (p_warp.flops as f64 / 8.0); // block had 8 samples
        assert!(blk_chain < warp_chain, "blk {blk_chain} warp {warp_chain}");
        assert_eq!(p_blk.barriers, 2);
    }

    #[test]
    fn reg_cap_triggers_spill_traffic() {
        let fb = FeatureBatch::generate(&spec(128, 50), 128, 5);
        let w = workload(&fb, 128);
        let rpt = inst(ScheduleKind::RowPerThread, 128, 1, 1, 1, 0, 128);
        let free = rpt.block_profile(&fb, &w, 0, None);
        let capped = rpt.block_profile(&fb, &w, 0, Some(32));
        // 116 spilled regs cycled 50 rounds adds ~22% on top of the already
        // overfetch-heavy RowPerThread baseline.
        assert!(
            capped.bytes_accessed as f64 > free.bytes_accessed as f64 * 1.15,
            "spill traffic must be visible: {} vs {}",
            capped.bytes_accessed,
            free.bytes_accessed
        );
        assert!(capped.issue_cycles > free.issue_cycles);
        // A schedule whose natural demand fits the cap is unaffected.
        let warp = inst(ScheduleKind::SamplePerWarp, 128, 32, 1, 1, 0, 128);
        let wf = warp.block_profile(&fb, &w, 0, None);
        let wc = warp.block_profile(&fb, &w, 0, Some(32));
        assert_eq!(wf, wc);
    }

    #[test]
    fn out_of_range_block_is_idle() {
        let fb = FeatureBatch::generate(&spec(16, 5), 64, 6);
        let w = workload(&fb, 16);
        let s = inst(ScheduleKind::SamplePerWarp, 128, 32, 1, 1, 0, 16);
        // 4 samples/block → 16 blocks needed; block 100 has nothing.
        let p = s.block_profile(&fb, &w, 100, None);
        assert!(p.is_idle());
    }

    #[test]
    fn staged_has_higher_mlp_and_barriers() {
        let fb = FeatureBatch::generate(&spec(32, 64), 32, 7);
        let w = workload(&fb, 32);
        let staged = inst(ScheduleKind::SmemStaged, 128, 32, 4, 1, 16, 32);
        let warp = inst(ScheduleKind::SamplePerWarp, 128, 32, 4, 1, 0, 32);
        let ps = staged.block_profile(&fb, &w, 0, None);
        let pw = warp.block_profile(&fb, &w, 0, None);
        assert!(ps.mlp > pw.mlp);
        assert!(ps.barriers > 0);
        assert_eq!(pw.barriers, 0);
    }

    #[test]
    fn unique_bytes_scaled_by_feature_reuse() {
        let mut s = spec(16, 20);
        s.table_rows = 50; // tiny table → heavy reuse
        let fb = FeatureBatch::generate(&s, 256, 8);
        let w = workload(&fb, 16);
        assert!(w.reuse_factor() > 10.0);
        let sched = inst(ScheduleKind::SamplePerWarp, 128, 32, 1, 1, 0, 16);
        let p = sched.block_profile(&fb, &w, 0, None);
        assert!(p.unique_bytes < p.bytes_accessed / 5);
    }

    #[test]
    fn profiles_cover_whole_batch_exactly_once() {
        let fb = FeatureBatch::generate(&spec(32, 10), 500, 9);
        let w = workload(&fb, 32);
        let s = inst(ScheduleKind::SubWarp, 128, 8, 2, 1, 0, 32);
        let blocks = s.required_blocks(&w);
        let total_flops: u64 = (0..blocks)
            .map(|b| s.block_profile(&fb, &w, b, None).flops)
            .sum();
        assert_eq!(total_flops, w.total_lookups as u64 * 32);
    }
}
