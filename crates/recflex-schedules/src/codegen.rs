//! CUDA `__device__` function emission.
//!
//! On real hardware RecFlex's fusion compiler emits one `__device__`
//! function per (deduplicated) schedule and dispatches to them with
//! block-level if-else branches (paper Figure 8). The simulator executes
//! the analytic equivalents, but we still emit the CUDA source each
//! schedule corresponds to: it documents precisely what would run on a GPU
//! and feeds the fused-kernel pretty printer in `recflex-compiler`.

use crate::template::{ScheduleInstance, ScheduleKind};
use std::fmt::Write as _;

impl ScheduleInstance {
    /// CUDA type for this vector width.
    fn vec_type(&self) -> &'static str {
        match self.params.vector_width {
            4 => "float4",
            2 => "float2",
            _ => "float",
        }
    }

    /// Name of the shared-memory struct of this schedule (for the fused
    /// kernel's union; empty-smem schedules still get a 1-byte struct).
    pub fn smem_struct(&self, id: usize) -> String {
        let bytes = self.smem_bytes().max(1);
        format!("struct Schedule{id}SharedMemory {{ char bytes[{bytes}]; }};")
    }

    /// Emit the `__device__` function implementing this schedule.
    ///
    /// The body follows the paper's template contract (Section V): it
    /// receives its argument pack, its relative block index and the block
    /// count of its feature, plus the shared-memory union pointer.
    pub fn cuda_device_fn(&self, id: usize) -> String {
        let p = &self.params;
        let dim = self.emb_dim;
        let vec_t = self.vec_type();
        let spb = self.samples_per_block();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "// {} — threads/block={}, group={}, vec={}, unroll={}, regs≈{}, smem={}B",
            self.label(),
            p.threads_per_block,
            p.group_size,
            p.vector_width,
            p.unroll,
            self.natural_regs(),
            self.smem_bytes()
        );
        let _ = writeln!(
            s,
            "__device__ void Schedule{id}(const EmbArgs* __restrict__ args, int rel_bidx, int feature_blocks, SmemUnion* smem) {{"
        );
        let _ = writeln!(s, "  const int* __restrict__ offsets = args->offsets;");
        let _ = writeln!(s, "  const int* __restrict__ indices = args->indices;");
        let _ = writeln!(
            s,
            "  const {vec_t}* __restrict__ table = (const {vec_t}*)args->table;"
        );
        let _ = writeln!(s, "  {vec_t}* __restrict__ out = ({vec_t}*)args->out;");
        let _ = writeln!(s, "  const int batch = args->batch_size;");
        match self.kind {
            ScheduleKind::RowPerThread => {
                let _ = writeln!(s, "  int sample = rel_bidx * {spb} + threadIdx.x;");
                let _ = writeln!(s, "  if (sample >= batch) return;");
                let _ = writeln!(s, "  float acc[{dim}] = {{0.f}};");
                let _ = writeln!(s, "  #pragma unroll {}", p.unroll);
                let _ = writeln!(
                    s,
                    "  for (int i = offsets[sample]; i < offsets[sample + 1]; ++i) {{"
                );
                let _ = writeln!(
                    s,
                    "    const float* row = (const float*)table + (size_t)indices[i] * {dim};"
                );
                let _ = writeln!(s, "    #pragma unroll");
                let _ = writeln!(s, "    for (int d = 0; d < {dim}; ++d) acc[d] += row[d];");
                let _ = writeln!(s, "  }}");
                let _ = writeln!(s, "  for (int d = 0; d < {dim}; ++d) ((float*)out)[(size_t)sample * {dim} + d] = acc[d];");
            }
            ScheduleKind::SubWarp | ScheduleKind::SamplePerWarp => {
                let g = p.group_size;
                let ept = self.elems_per_thread();
                let _ = writeln!(s, "  int lane = threadIdx.x % {g};");
                let _ = writeln!(s, "  int sample = rel_bidx * {spb} + threadIdx.x / {g};");
                let _ = writeln!(s, "  if (sample >= batch) return;");
                let _ = writeln!(s, "  float acc[{ept}] = {{0.f}};");
                let _ = writeln!(s, "  #pragma unroll {}", p.unroll);
                let _ = writeln!(
                    s,
                    "  for (int i = offsets[sample]; i < offsets[sample + 1]; ++i) {{"
                );
                let _ = writeln!(
                    s,
                    "    const {vec_t}* row = table + (size_t)indices[i] * {};",
                    dim / p.vector_width.max(1)
                );
                let _ = writeln!(
                    s,
                    "    for (int c = lane; c * {v} < {dim}; c += {g})",
                    v = p.vector_width
                );
                let _ = writeln!(
                    s,
                    "      vec_add(acc, row[c]);  // predicated off beyond dim"
                );
                let _ = writeln!(s, "  }}");
                let _ = writeln!(s, "  vec_store(out, sample, lane, acc);");
            }
            ScheduleKind::SamplePerBlock => {
                let warps = p.threads_per_block / 32;
                let _ = writeln!(s, "  int sample = rel_bidx;  // one block per sample");
                let _ = writeln!(s, "  int warp = threadIdx.x / 32, lane = threadIdx.x % 32;");
                let _ = writeln!(s, "  float acc[{}] = {{0.f}};", self.elems_per_thread());
                let _ = writeln!(s, "  for (int i = offsets[sample] + warp; i < offsets[sample + 1]; i += {warps}) {{");
                let _ = writeln!(
                    s,
                    "    const {vec_t}* row = table + (size_t)indices[i] * {};",
                    dim / p.vector_width.max(1)
                );
                let _ = writeln!(
                    s,
                    "    for (int c = lane; c * {v} < {dim}; c += 32) vec_add(acc, row[c]);",
                    v = p.vector_width
                );
                let _ = writeln!(s, "  }}");
                let _ = writeln!(s, "  // cross-warp tree reduction through the smem union");
                let _ = writeln!(s, "  float* partial = (float*)smem;");
                let _ = writeln!(s, "  warp_reduce_store(partial, warp, lane, acc);");
                let _ = writeln!(s, "  __syncthreads();");
                let _ = writeln!(
                    s,
                    "  if (warp == 0) final_reduce_store(out, sample, lane, partial, {warps});"
                );
                let _ = writeln!(s, "  __syncthreads();");
            }
            ScheduleKind::GatherScatter => {
                let _ = writeln!(
                    s,
                    "  // phase 1: gather rows to global scratch (balanced streams)"
                );
                let _ = writeln!(s, "  {vec_t}* scratch = ({vec_t}*)args->scratch + (size_t)rel_bidx * {spb} * MAX_PF * {};", dim / p.vector_width.max(1));
                let _ = writeln!(
                    s,
                    "  int s_lo = rel_bidx * {spb}, s_hi = min(s_lo + {spb}, batch);"
                );
                let _ = writeln!(s, "  for (int i = offsets[s_lo] + threadIdx.x / 32; i < offsets[s_hi]; i += blockDim.x / 32)");
                let _ = writeln!(
                    s,
                    "    copy_row(scratch, i - offsets[s_lo], table, indices[i]);"
                );
                let _ = writeln!(s, "  __syncthreads();");
                let _ = writeln!(
                    s,
                    "  // phase 2: segment-reduce the scratch into pooled outputs"
                );
                let _ = writeln!(s, "  segment_reduce(out, scratch, offsets, s_lo, s_hi);");
            }
            ScheduleKind::SmemStaged => {
                let stage = p.stage_rows;
                let _ = writeln!(s, "  int lane = threadIdx.x % 32;");
                let _ = writeln!(s, "  int warp = threadIdx.x / 32;");
                let _ = writeln!(s, "  int sample = rel_bidx * {spb} + warp;");
                let _ = writeln!(s, "  if (sample >= batch) return;");
                let _ = writeln!(
                    s,
                    "  {vec_t}* stage = ({vec_t}*)smem + warp * {stage} * {};",
                    dim / p.vector_width.max(1)
                );
                let _ = writeln!(s, "  float acc[{}] = {{0.f}};", self.elems_per_thread());
                let _ = writeln!(s, "  for (int base = offsets[sample]; base < offsets[sample + 1]; base += {stage}) {{");
                let _ = writeln!(
                    s,
                    "    stage_rows(stage, table, indices, base, {stage});  // bulk copy, high MLP"
                );
                let _ = writeln!(s, "    __syncthreads();");
                let _ = writeln!(s, "    accumulate_staged(acc, stage, lane, {stage});");
                let _ = writeln!(s, "  }}");
                let _ = writeln!(s, "  vec_store(out, sample, lane, acc);");
            }
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::ScheduleParams;

    fn inst(kind: ScheduleKind, dim: u32) -> ScheduleInstance {
        ScheduleInstance {
            kind,
            params: ScheduleParams {
                threads_per_block: 128,
                group_size: if kind == ScheduleKind::RowPerThread {
                    1
                } else {
                    32
                },
                vector_width: 2,
                unroll: 2,
                stage_rows: if kind == ScheduleKind::SmemStaged {
                    8
                } else {
                    0
                },
            },
            emb_dim: dim,
        }
    }

    #[test]
    fn every_kind_emits_a_device_fn() {
        for kind in [
            ScheduleKind::RowPerThread,
            ScheduleKind::SubWarp,
            ScheduleKind::SamplePerWarp,
            ScheduleKind::SamplePerBlock,
            ScheduleKind::SmemStaged,
            ScheduleKind::GatherScatter,
        ] {
            let src = inst(kind, 32).cuda_device_fn(3);
            assert!(src.contains("__device__ void Schedule3("), "{kind:?}");
            assert!(src.contains("offsets"), "{kind:?} must read the CSR");
        }
    }

    #[test]
    fn block_kinds_synchronize() {
        let src = inst(ScheduleKind::SamplePerBlock, 64).cuda_device_fn(0);
        assert!(src.contains("__syncthreads()"));
        let src2 = inst(ScheduleKind::SmemStaged, 64).cuda_device_fn(0);
        assert!(src2.contains("__syncthreads()"));
        let src3 = inst(ScheduleKind::SamplePerWarp, 64).cuda_device_fn(0);
        assert!(!src3.contains("__syncthreads()"));
    }

    #[test]
    fn smem_struct_sizes_match() {
        let s = inst(ScheduleKind::SmemStaged, 32);
        let decl = s.smem_struct(1);
        assert!(decl.contains(&format!("bytes[{}]", s.smem_bytes())));
        let w = inst(ScheduleKind::SamplePerWarp, 32);
        assert!(
            w.smem_struct(0).contains("bytes[1]"),
            "zero smem pads to 1 byte"
        );
    }

    #[test]
    fn vector_types_selected() {
        let mut s = inst(ScheduleKind::SamplePerWarp, 64);
        s.params.vector_width = 4;
        assert!(s.cuda_device_fn(0).contains("float4"));
        s.params.vector_width = 1;
        assert!(!s.cuda_device_fn(0).contains("float4"));
    }
}
