//! Functional execution of schedules.
//!
//! Every schedule computes the same mathematical function — sum pooling of
//! the looked-up rows per sample — they differ only in how the work maps to
//! hardware, which the analytic profiles capture. Functional execution
//! therefore accumulates each sample's rows **in CSR order** regardless of
//! the simulated thread mapping, so all schedules, the fused kernel and the
//! baselines produce output bit-identical to the scalar reference. (On a
//! real GPU the tree reductions of `SamplePerBlock` would reassociate the
//! sum; fixing the order here is what makes exact equality testing
//! possible, and is documented as a deliberate substitution in DESIGN.md.)

use crate::template::ScheduleInstance;
use recflex_data::FeatureBatch;
use recflex_embedding::{reference_pooled, EmbTable};

impl ScheduleInstance {
    /// Execute this schedule's feature over a whole batch: `out` is
    /// `batch × dim`, sample-row-major.
    pub fn execute<T: EmbTable>(&self, table: &T, fb: &FeatureBatch, out: &mut [f32]) {
        debug_assert_eq!(table.dim(), self.emb_dim);
        reference_pooled(table, fb, out);
    }

    /// Execute only the samples owned by block `rel_bidx` (used by the
    /// fused-kernel executor, whose blocks own disjoint sample ranges).
    /// `out` is still the feature's full `batch × dim` buffer.
    pub fn execute_block<T: EmbTable>(
        &self,
        table: &T,
        fb: &FeatureBatch,
        rel_bidx: u32,
        out: &mut [f32],
    ) {
        let dim = self.emb_dim as usize;
        let batch = fb.batch_size();
        let spb = self.samples_per_block();
        let s0 = rel_bidx.saturating_mul(spb).min(batch);
        let s1 = (s0 + spb).min(batch);
        for s in s0..s1 {
            let dst = &mut out[s as usize * dim..(s as usize + 1) * dim];
            dst.fill(0.0);
            for &row in fb.sample_indices(s) {
                for (d, slot) in dst.iter_mut().enumerate() {
                    *slot += table.value(row, d as u32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{ScheduleKind, ScheduleParams};
    use recflex_data::{FeatureSpec, PoolingDist};
    use recflex_embedding::{FeatureWorkload, VirtualTable};

    fn spec(dim: u32) -> FeatureSpec {
        FeatureSpec {
            name: "t".into(),
            table_rows: 500,
            emb_dim: dim,
            pooling: PoolingDist::Normal {
                mean: 12.0,
                std: 6.0,
                max: 60,
            },
            coverage: 0.8,
            row_skew: 0.5,
        }
    }

    fn all_kinds(dim: u32) -> Vec<ScheduleInstance> {
        [
            (ScheduleKind::RowPerThread, 1u32, 0u32),
            (ScheduleKind::SubWarp, 8, 0),
            (ScheduleKind::SamplePerWarp, 32, 0),
            (ScheduleKind::SamplePerBlock, 128, 0),
            (ScheduleKind::SmemStaged, 32, 8),
            (ScheduleKind::GatherScatter, 32, 0),
        ]
        .into_iter()
        .map(|(kind, g, stage)| ScheduleInstance {
            kind,
            params: ScheduleParams {
                threads_per_block: 128,
                group_size: g,
                vector_width: 2,
                unroll: 1,
                stage_rows: stage,
            },
            emb_dim: dim,
        })
        .collect()
    }

    #[test]
    fn every_kind_matches_reference_bitwise() {
        let dim = 16;
        let s = spec(dim);
        let fb = FeatureBatch::generate(&s, 96, 33);
        let table = VirtualTable::new(9, 500, dim);
        let mut golden = vec![0.0; 96 * dim as usize];
        reference_pooled(&table, &fb, &mut golden);
        for sched in all_kinds(dim) {
            let mut out = vec![7.0; 96 * dim as usize];
            sched.execute(&table, &fb, &mut out);
            assert_eq!(out, golden, "{:?} diverged", sched.kind);
        }
    }

    #[test]
    fn blockwise_execution_equals_whole_feature() {
        let dim = 8;
        let s = spec(dim);
        let fb = FeatureBatch::generate(&s, 77, 5);
        let table = VirtualTable::new(4, 500, dim);
        let w = FeatureWorkload::analyze(0, &fb, dim, 500);
        for sched in all_kinds(dim) {
            let mut whole = vec![0.0; 77 * dim as usize];
            sched.execute(&table, &fb, &mut whole);
            let mut by_blocks = vec![0.0; 77 * dim as usize];
            for b in 0..sched.required_blocks(&w) {
                sched.execute_block(&table, &fb, b, &mut by_blocks);
            }
            assert_eq!(whole, by_blocks, "{:?} block split diverged", sched.kind);
        }
    }

    #[test]
    fn out_of_range_block_writes_nothing() {
        let dim = 8;
        let s = spec(dim);
        let fb = FeatureBatch::generate(&s, 16, 5);
        let table = VirtualTable::new(4, 500, dim);
        let sched = &all_kinds(dim)[2];
        let mut out = vec![3.0; 16 * dim as usize];
        sched.execute_block(&table, &fb, 999, &mut out);
        assert!(out.iter().all(|&x| x == 3.0));
    }
}
