//! Schedule kinds, tunable parameters and resource footprints.

use recflex_embedding::FeatureWorkload;
use recflex_sim::BlockResources;

/// The five schedule template families (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// One sample per thread; the thread loops over its sample's rows and
    /// accumulates the whole embedding vector in registers. Scattered
    /// (uncoalesced) loads but zero lane waste for tiny dims.
    RowPerThread,
    /// `group_size` (2–16) threads cooperate on one sample, striding the
    /// embedding dimension; several samples share a warp.
    SubWarp,
    /// One warp per sample, lanes across the dimension — the FBGEMM /
    /// TorchRec mapping.
    SamplePerWarp,
    /// One block per sample; warps split the sample's rows and partial
    /// sums are tree-reduced through shared memory — the HugeCTR mapping.
    SamplePerBlock,
    /// Warp per sample with rows staged through shared memory in batches
    /// of `stage_rows`, trading shared memory for memory-level parallelism.
    SmemStaged,
    /// TensorFlow's two-phase lowering: materialize all gathered rows to a
    /// global scratch buffer with perfectly parallel coalesced copies, then
    /// segment-reduce the scratch. Shortest dependence chains of any
    /// template — and 3× the DRAM traffic (read + scratch write + scratch
    /// read-back), which makes it a classic trap for isolated tuning: it
    /// measures fastest when bandwidth is free and poisons a
    /// bandwidth-saturated fused kernel (paper Section II-C, straw-man 1).
    GatherScatter,
}

impl ScheduleKind {
    /// Short name used in reports and generated CUDA.
    pub fn short_name(&self) -> &'static str {
        match self {
            ScheduleKind::RowPerThread => "rpt",
            ScheduleKind::SubWarp => "subwarp",
            ScheduleKind::SamplePerWarp => "warp",
            ScheduleKind::SamplePerBlock => "block",
            ScheduleKind::SmemStaged => "staged",
            ScheduleKind::GatherScatter => "gather",
        }
    }
}

/// Tunable parameters of a schedule instance. The search space over these
/// is what the paper's users define in their template classes (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleParams {
    /// Threads per block (64 / 128 / 256).
    pub threads_per_block: u32,
    /// Threads cooperating on one sample: 1 (RowPerThread), 2–16
    /// (SubWarp), 32 (SamplePerWarp / SmemStaged), or the whole block
    /// (SamplePerBlock).
    pub group_size: u32,
    /// Floats per vectorized load/store (1 / 2 / 4 — `float`, `float2`,
    /// `float4`).
    pub vector_width: u32,
    /// Pooling-loop unroll factor; raises register pressure and
    /// memory-level parallelism.
    pub unroll: u32,
    /// Rows staged in shared memory per round (SmemStaged only, else 0).
    pub stage_rows: u32,
}

/// A concrete schedule: a kind, its parameters and the feature's embedding
/// dimension (the only feature property baked into generated code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleInstance {
    /// Template family.
    pub kind: ScheduleKind,
    /// Tunable parameters.
    pub params: ScheduleParams,
    /// Embedding dimension of the feature this schedule serves.
    pub emb_dim: u32,
}

impl ScheduleInstance {
    /// Samples processed by one block.
    pub fn samples_per_block(&self) -> u32 {
        match self.kind {
            ScheduleKind::SamplePerBlock => 1,
            _ => (self.params.threads_per_block / self.params.group_size).max(1),
        }
    }

    /// Samples sharing one warp (divergence granularity).
    pub fn samples_per_warp(&self) -> u32 {
        match self.kind {
            ScheduleKind::SamplePerBlock => 1,
            _ => (32 / self.params.group_size).max(1),
        }
    }

    /// Embedding elements each cooperating thread accumulates.
    pub fn elems_per_thread(&self) -> u32 {
        let lanes = match self.kind {
            ScheduleKind::SamplePerBlock => 32, // per-warp row processing
            _ => self.params.group_size,
        };
        let per_chunk = lanes * self.params.vector_width;
        self.emb_dim.div_ceil(per_chunk) * self.params.vector_width
    }

    /// Dim chunks iterated per row (`ceil(dim / (lanes × vec))`).
    pub fn chunks_per_row(&self) -> u32 {
        let lanes = match self.kind {
            ScheduleKind::SamplePerBlock => 32,
            _ => self.params.group_size,
        };
        self.emb_dim
            .div_ceil(lanes * self.params.vector_width)
            .max(1)
    }

    /// Natural register demand per thread: base bookkeeping plus the
    /// accumulator vector plus unroll load buffers. This is what makes
    /// RowPerThread on a 128-dim feature a register hog and what feeds
    /// the spill model under occupancy control.
    pub fn natural_regs(&self) -> u32 {
        let base = 18;
        let accumulators = match self.kind {
            ScheduleKind::RowPerThread => self.emb_dim,
            _ => self.elems_per_thread(),
        };
        let unroll_bufs = self.params.unroll * self.params.vector_width * 2;
        (base + accumulators + unroll_bufs).min(255)
    }

    /// Shared memory per block in bytes.
    pub fn smem_bytes(&self) -> u32 {
        match self.kind {
            ScheduleKind::SamplePerBlock => {
                // One partial vector per warp for the cross-warp reduction.
                let warps = self.params.threads_per_block / 32;
                warps * self.emb_dim * 4
            }
            ScheduleKind::SmemStaged => {
                // Each warp stages `stage_rows` rows of its sample.
                let warps = self.params.threads_per_block / 32;
                warps * self.params.stage_rows * self.emb_dim * 4
            }
            _ => 0,
        }
    }

    /// Resource footprint for the occupancy calculator.
    pub fn resources(&self) -> BlockResources {
        BlockResources::new(
            self.params.threads_per_block,
            self.natural_regs(),
            self.smem_bytes(),
        )
    }

    /// Blocks needed for a live batch — the quantity the host-side runtime
    /// thread mapping sums over features. Every sample gets an output (a
    /// zero vector when the feature is absent), so the count depends on
    /// batch size, not on present samples.
    pub fn required_blocks(&self, w: &FeatureWorkload) -> u32 {
        w.batch_size.div_ceil(self.samples_per_block()).max(1)
    }

    /// Stable display name, e.g. `warp_t128_v4_u2`.
    pub fn label(&self) -> String {
        let p = &self.params;
        match self.kind {
            ScheduleKind::SubWarp => format!(
                "subwarp{}_t{}_v{}_u{}",
                p.group_size, p.threads_per_block, p.vector_width, p.unroll
            ),
            ScheduleKind::SmemStaged => format!(
                "staged{}_t{}_v{}",
                p.stage_rows, p.threads_per_block, p.vector_width
            ),
            k => format!(
                "{}_t{}_v{}_u{}",
                k.short_name(),
                p.threads_per_block,
                p.vector_width,
                p.unroll
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(
        kind: ScheduleKind,
        t: u32,
        g: u32,
        v: u32,
        u: u32,
        stage: u32,
        dim: u32,
    ) -> ScheduleInstance {
        ScheduleInstance {
            kind,
            params: ScheduleParams {
                threads_per_block: t,
                group_size: g,
                vector_width: v,
                unroll: u,
                stage_rows: stage,
            },
            emb_dim: dim,
        }
    }

    #[test]
    fn samples_per_block_by_kind() {
        assert_eq!(
            inst(ScheduleKind::RowPerThread, 128, 1, 1, 1, 0, 8).samples_per_block(),
            128
        );
        assert_eq!(
            inst(ScheduleKind::SubWarp, 128, 4, 1, 1, 0, 16).samples_per_block(),
            32
        );
        assert_eq!(
            inst(ScheduleKind::SamplePerWarp, 256, 32, 4, 1, 0, 64).samples_per_block(),
            8
        );
        assert_eq!(
            inst(ScheduleKind::SamplePerBlock, 128, 128, 4, 1, 0, 64).samples_per_block(),
            1
        );
    }

    #[test]
    fn elems_per_thread_covers_dim() {
        let s = inst(ScheduleKind::SamplePerWarp, 128, 32, 4, 1, 0, 128);
        assert_eq!(s.elems_per_thread(), 4);
        assert_eq!(s.chunks_per_row(), 1);
        let s2 = inst(ScheduleKind::SubWarp, 128, 4, 2, 1, 0, 64);
        // 4 lanes × 2 floats = 8 per chunk → 8 chunks, 16 elems/thread.
        assert_eq!(s2.chunks_per_row(), 8);
        assert_eq!(s2.elems_per_thread(), 16);
    }

    #[test]
    fn row_per_thread_is_register_hungry_for_big_dims() {
        let small = inst(ScheduleKind::RowPerThread, 128, 1, 1, 1, 0, 4);
        let big = inst(ScheduleKind::RowPerThread, 128, 1, 1, 1, 0, 128);
        assert!(small.natural_regs() < 32);
        assert!(big.natural_regs() > 120);
        let warp = inst(ScheduleKind::SamplePerWarp, 128, 32, 4, 1, 0, 128);
        assert!(
            warp.natural_regs() < 40,
            "warp mapping splits the dim across lanes"
        );
    }

    #[test]
    fn smem_by_kind() {
        assert_eq!(
            inst(ScheduleKind::SamplePerWarp, 128, 32, 4, 1, 0, 64).smem_bytes(),
            0
        );
        // SamplePerBlock: 4 warps × 64 dims × 4B = 1 KiB.
        assert_eq!(
            inst(ScheduleKind::SamplePerBlock, 128, 128, 4, 1, 0, 64).smem_bytes(),
            1024
        );
        // SmemStaged: 4 warps × 16 rows × 32 dims × 4B = 8 KiB.
        assert_eq!(
            inst(ScheduleKind::SmemStaged, 128, 32, 4, 1, 16, 32).smem_bytes(),
            8192
        );
    }

    #[test]
    fn required_blocks_scale_with_batch() {
        let s = inst(ScheduleKind::SamplePerWarp, 128, 32, 4, 1, 0, 32);
        let w = FeatureWorkload {
            feature_idx: 0,
            batch_size: 512,
            total_lookups: 100,
            unique_rows: 50,
            max_pf: 5,
            mean_pf: 0.2,
            present_samples: 30,
            emb_dim: 32,
            table_rows: 1000,
            uvm_cold_frac: 0.0,
        };
        // 4 samples per block → 128 blocks.
        assert_eq!(s.required_blocks(&w), 128);
    }

    #[test]
    fn labels_are_unique_across_params() {
        let a = inst(ScheduleKind::SamplePerWarp, 128, 32, 4, 1, 0, 32);
        let b = inst(ScheduleKind::SamplePerWarp, 256, 32, 4, 1, 0, 32);
        let c = inst(ScheduleKind::SubWarp, 128, 8, 4, 1, 0, 32);
        assert_ne!(a.label(), b.label());
        assert_ne!(a.label(), c.label());
    }
}
