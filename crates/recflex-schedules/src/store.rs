//! The crash-safe profile vault: persistent tuned-schedule sidecars.
//!
//! Every lifecycle retune and fleet replica used to start from a cold
//! tuner sweep because tuned schedules lived only in memory. This module
//! persists a tuning decision as a JSON **sidecar** keyed by
//! `(model, arch, quantized distribution summary)` — the Chic
//! `schedule_tuner` sidecar design: a content hash over the canonical
//! encoding, a schema version, deterministic diagnostics on any mismatch,
//! and lexical tie-breaks wherever an order must be invented.
//!
//! The robustness contract mirrors the compute-side fault machinery
//! ([`FaultPlan`](../../recflex_serve/struct.FaultPlan.html) and friends):
//!
//! * **Writes are atomic**: serialize → content-hash → write a `.tmp`
//!   sibling → rename into place. A fault mid-write can corrupt the temp
//!   file being published, never an already-published sidecar in place.
//! * **Loads never trust bytes**: parse errors, hash mismatches, schema
//!   skew and shape violations all surface as structured [`StoreError`]s.
//!   The offending sidecar is **quarantined** (renamed aside) with a
//!   deterministic diagnostic, and the caller degrades to a cold tune.
//!   Nothing in this module panics on foreign bytes.
//! * **Conflicts resolve deterministically**: among valid sidecars for
//!   one key the winner is the lowest recorded mean fused latency, ties
//!   broken by lexical sidecar name.
//! * **Every failure mode is replayable**: the [`Vfs`] trait has a real
//!   directory backend ([`DirVfs`]) and a deterministic in-memory backend
//!   ([`MemVfs`]) that executes a seeded [`StoreFaultPlan`] — fail-write,
//!   torn write, byte-flip, stale read, duplicate sidecar — so a
//!   corruption scenario is a pure function of its seed at any
//!   `RECFLEX_THREADS`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recflex_data::Batch;
use serde::{Deserialize, Serialize};

/// Sidecar schema version this build reads and writes. A sidecar bearing
/// any other version is quarantined as [`StoreError::SchemaSkew`] — never
/// reinterpreted.
pub const SCHEMA_VERSION: u32 = 1;

/// Lookups-per-sample are quantized to multiples of `1/SUMMARY_QUANTUM`
/// when they enter a [`ProfileKey`], so keys are exact-match stable under
/// measurement noise.
pub const SUMMARY_QUANTUM: f64 = 8.0;

// ---------------------------------------------------------------------------
// Keys and profiles
// ---------------------------------------------------------------------------

/// Identity of a tuned profile: which model, which device, and what the
/// traffic looked like (quantized per-feature mean lookups per sample).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileKey {
    /// Model name.
    pub model: String,
    /// Architecture name (e.g. `"V100"`).
    pub arch: String,
    /// Per-feature mean lookups per sample, in units of
    /// `1/`[`SUMMARY_QUANTUM`] (see [`distribution_summary`]).
    pub dist_summary: Vec<u32>,
}

impl ProfileKey {
    /// Stable 64-bit digest of the key (FNV-1a over its canonical JSON).
    pub fn digest(&self) -> u64 {
        let canon = serde_json::to_string(self).expect("key serialization is infallible");
        fnv1a64(canon.as_bytes())
    }

    /// The sidecar file name this key stores under.
    pub fn sidecar_name(&self) -> String {
        format!(
            "{}-{}-{:016x}.json",
            sanitize(&self.model),
            sanitize(&self.arch),
            self.digest()
        )
    }

    /// L1 distance between two quantized summaries, or `None` when the
    /// keys are not comparable (different model, arch or feature count).
    pub fn distance(&self, other: &ProfileKey) -> Option<u64> {
        if self.model != other.model
            || self.arch != other.arch
            || self.dist_summary.len() != other.dist_summary.len()
        {
            return None;
        }
        Some(
            self.dist_summary
                .iter()
                .zip(&other.dist_summary)
                .map(|(&a, &b)| u64::from(a.abs_diff(b)))
                .sum(),
        )
    }
}

/// Quantized per-feature mean lookups per sample over `batches` — the
/// traffic component of a [`ProfileKey`]. Empty input yields an empty
/// summary.
pub fn distribution_summary(batches: &[Batch]) -> Vec<u32> {
    let Some(first) = batches.first() else {
        return Vec::new();
    };
    let mut lookups = vec![0u64; first.features.len()];
    let mut samples = 0u64;
    for b in batches {
        samples += u64::from(b.batch_size);
        for (f, fb) in b.features.iter().enumerate() {
            lookups[f] += fb.indices.len() as u64;
        }
    }
    let samples = samples.max(1) as f64;
    lookups
        .iter()
        .map(|&l| (l as f64 / samples * SUMMARY_QUANTUM).round() as u32)
        .collect()
}

/// One persisted tuning decision.
///
/// Schedules are stored as per-feature candidate **indices** plus the
/// chosen schedules' display labels: on resume the loader re-enumerates
/// the candidate sets and verifies index → label agreement, so a sidecar
/// written by a build with a different enumeration order (version skew
/// the schema version cannot see) is rejected instead of silently
/// resuming the wrong schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleProfile {
    /// Sidecar schema version ([`SCHEMA_VERSION`] for this build).
    pub schema_version: u32,
    /// What this profile was tuned for.
    pub key: ProfileKey,
    /// Winning candidate index per feature.
    pub choices: Vec<usize>,
    /// Display label of each chosen schedule (skew guard).
    pub schedule_labels: Vec<String>,
    /// The winning occupancy target, if occupancy control was in force.
    pub occupancy: Option<u32>,
    /// Mean fused latency of the chosen configuration, µs — the recorded
    /// perf counter deterministic winner selection is based on.
    pub mean_latency_us: f64,
    /// FNV-1a content hash (hex) over the canonical encoding of every
    /// other field. Filled by [`Self::seal`]; verified on load.
    pub hash: String,
}

impl ScheduleProfile {
    /// The hash of the profile's current content (hash field excluded).
    pub fn content_hash(&self) -> String {
        let mut body = self.clone();
        body.hash = String::new();
        let canon = serde_json::to_string(&body).expect("profile serialization is infallible");
        format!("{:016x}", fnv1a64(canon.as_bytes()))
    }

    /// Fill `hash` from the current content.
    pub fn seal(mut self) -> Self {
        self.hash = self.content_hash();
        self
    }

    /// Validate everything that can be validated without re-enumerating
    /// candidates: schema version, content hash, and structural shape.
    pub fn validate(&self, name: &str) -> Result<(), StoreError> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(StoreError::SchemaSkew {
                name: name.to_string(),
                found: self.schema_version,
                supported: SCHEMA_VERSION,
            });
        }
        let actual = self.content_hash();
        if actual != self.hash {
            return Err(StoreError::HashMismatch {
                name: name.to_string(),
                expected: self.hash.clone(),
                actual,
            });
        }
        let n = self.key.dist_summary.len();
        if self.choices.len() != n || self.schedule_labels.len() != n {
            return Err(StoreError::Shape {
                name: name.to_string(),
                detail: format!(
                    "{} choices / {} labels for {} features",
                    self.choices.len(),
                    self.schedule_labels.len(),
                    n
                ),
            });
        }
        if !self.mean_latency_us.is_finite() || self.mean_latency_us < 0.0 {
            return Err(StoreError::Shape {
                name: name.to_string(),
                detail: format!("non-physical mean latency {:?}", self.mean_latency_us),
            });
        }
        Ok(())
    }
}

/// Why a sidecar could not be stored or trusted. Every variant renders a
/// deterministic, host-independent diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The backing store refused an operation.
    Io {
        /// The operation (`"write"`, `"rename"`, `"read"`, …).
        op: &'static str,
        /// The sidecar involved.
        name: String,
        /// Backend detail (deterministic for [`MemVfs`]).
        detail: String,
    },
    /// The sidecar's bytes are not a well-formed profile document.
    Malformed {
        /// The sidecar involved.
        name: String,
        /// Parse/decode detail.
        detail: String,
    },
    /// The content hash does not match the content.
    HashMismatch {
        /// The sidecar involved.
        name: String,
        /// Hash recorded in the sidecar.
        expected: String,
        /// Hash of the bytes actually present.
        actual: String,
    },
    /// The sidecar was written by a different schema version.
    SchemaSkew {
        /// The sidecar involved.
        name: String,
        /// Version found in the sidecar.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// Internally inconsistent field shapes (wrong arity, non-finite
    /// latency, …).
    Shape {
        /// The sidecar involved.
        name: String,
        /// What is inconsistent.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, name, detail } => {
                write!(f, "{op} `{name}` failed: {detail}")
            }
            StoreError::Malformed { name, detail } => {
                write!(f, "`{name}` is malformed: {detail}")
            }
            StoreError::HashMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "`{name}` hash mismatch: sidecar says {expected}, content is {actual}"
            ),
            StoreError::SchemaSkew {
                name,
                found,
                supported,
            } => write!(
                f,
                "`{name}` schema version {found} (this build supports {supported})"
            ),
            StoreError::Shape { name, detail } => {
                write!(f, "`{name}` shape invalid: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

// ---------------------------------------------------------------------------
// The Vfs trait and its two backends
// ---------------------------------------------------------------------------

/// A backend I/O failure (deterministic text for [`MemVfs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsError(pub String);

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The flat file namespace the vault runs on. Implementations must keep
/// [`Vfs::list`] sorted so every scan is order-deterministic.
pub trait Vfs {
    /// All file names, lexically sorted.
    fn list(&self) -> Vec<String>;
    /// Read a file's bytes.
    fn read(&mut self, name: &str) -> Result<Vec<u8>, VfsError>;
    /// Create or replace a file.
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), VfsError>;
    /// Atomically move `from` onto `to` (replacing it).
    fn rename(&mut self, from: &str, to: &str) -> Result<(), VfsError>;
    /// Delete a file (ok if absent).
    fn remove(&mut self, name: &str) -> Result<(), VfsError>;
}

/// A real directory. Writes land in the directory given at construction;
/// the vault's temp-then-rename protocol makes publishes atomic on any
/// POSIX filesystem.
pub struct DirVfs {
    root: PathBuf,
}

impl DirVfs {
    /// Open (creating if needed) a vault directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, VfsError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| VfsError(e.to_string()))?;
        Ok(DirVfs { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Vfs for DirVfs {
    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.root)
            .map(|it| {
                it.filter_map(|e| e.ok())
                    .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, VfsError> {
        std::fs::read(self.path(name)).map_err(|e| VfsError(e.to_string()))
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        std::fs::write(self.path(name), bytes).map_err(|e| VfsError(e.to_string()))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), VfsError> {
        std::fs::rename(self.path(from), self.path(to)).map_err(|e| VfsError(e.to_string()))
    }

    fn remove(&mut self, name: &str) -> Result<(), VfsError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(VfsError(e.to_string())),
        }
    }
}

/// One storage fault. `op` indexes the [`MemVfs`] operation counter for
/// the operation type the kind targets (write #k, read #k, rename #k) —
/// counters advance even when an operation fails, so a plan addresses a
/// fixed schedule of I/O.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StoreFault {
    /// Zero-based index into the per-type operation counter.
    pub op: u64,
    /// What breaks.
    pub kind: StoreFaultKind,
}

/// The five storage failure modes the vault must survive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum StoreFaultKind {
    /// The write returns an error; nothing is stored.
    FailWrite,
    /// The write "succeeds" but persists only the first `keep` bytes —
    /// a crash between write and flush.
    TornWrite {
        /// Bytes that actually reach the store.
        keep: usize,
    },
    /// The write "succeeds" but one byte is corrupted in flight.
    ByteFlip {
        /// Corrupted position (taken modulo the content length).
        offset: usize,
        /// XOR mask applied to the byte (never 0).
        xor: u8,
    },
    /// The read returns the file's *previous* version — a lagging,
    /// non-coherent replica of the store.
    StaleRead,
    /// The rename also publishes a second sidecar (`dup-<name>`) holding
    /// the target's previous content — the "two writers raced" aftermath.
    DuplicateSidecar,
}

/// A replayable schedule of storage faults. Construct scripted plans
/// directly or seeded ones with [`StoreFaultSpec::plan`]; the empty plan
/// leaves [`MemVfs`] a faithful in-memory filesystem.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StoreFaultPlan {
    /// The faults, in any order (matched by counter, not position).
    pub faults: Vec<StoreFault>,
}

impl StoreFaultPlan {
    /// The empty plan.
    pub fn none() -> Self {
        StoreFaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn find(
        &self,
        op: u64,
        want_write: bool,
        want_read: bool,
        want_rename: bool,
    ) -> Option<StoreFaultKind> {
        self.faults
            .iter()
            .find(|f| {
                f.op == op
                    && match f.kind {
                        StoreFaultKind::FailWrite
                        | StoreFaultKind::TornWrite { .. }
                        | StoreFaultKind::ByteFlip { .. } => want_write,
                        StoreFaultKind::StaleRead => want_read,
                        StoreFaultKind::DuplicateSidecar => want_rename,
                    }
            })
            .map(|f| f.kind)
    }
}

/// Per-fault-kind probabilities for seeded plan synthesis, mirroring the
/// serving tier's `FaultSpec` idiom: a spec plus a seed replays to a
/// bit-identical [`StoreFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StoreFaultSpec {
    /// P(a write fails outright).
    pub fail_write: f64,
    /// P(a write is torn).
    pub torn_write: f64,
    /// P(a write is bit-flipped).
    pub byte_flip: f64,
    /// P(a read is stale).
    pub stale_read: f64,
    /// P(a rename duplicates its target).
    pub duplicate: f64,
}

impl StoreFaultSpec {
    /// A moderately hostile store for chaos tests.
    pub fn hostile() -> Self {
        StoreFaultSpec {
            fail_write: 0.1,
            torn_write: 0.15,
            byte_flip: 0.15,
            stale_read: 0.1,
            duplicate: 0.1,
        }
    }

    /// Draw a plan covering the first `ops` operations of each type.
    /// Pure function of `(self, ops, seed)`.
    pub fn plan(&self, ops: u64, seed: u64) -> StoreFaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        for op in 0..ops {
            // At most one write-fault per write op, drawn in fixed order.
            if rng.gen_bool(self.fail_write) {
                faults.push(StoreFault {
                    op,
                    kind: StoreFaultKind::FailWrite,
                });
            } else if rng.gen_bool(self.torn_write) {
                faults.push(StoreFault {
                    op,
                    kind: StoreFaultKind::TornWrite {
                        keep: rng.gen_range(0..96usize),
                    },
                });
            } else if rng.gen_bool(self.byte_flip) {
                faults.push(StoreFault {
                    op,
                    kind: StoreFaultKind::ByteFlip {
                        offset: rng.gen_range(0..4096usize),
                        xor: rng.gen_range(1..=255u8),
                    },
                });
            }
            if rng.gen_bool(self.stale_read) {
                faults.push(StoreFault {
                    op,
                    kind: StoreFaultKind::StaleRead,
                });
            }
            if rng.gen_bool(self.duplicate) {
                faults.push(StoreFault {
                    op,
                    kind: StoreFaultKind::DuplicateSidecar,
                });
            }
        }
        StoreFaultPlan { faults }
    }
}

/// Deterministic in-memory backend. Keeps every version of every file
/// (so [`StoreFaultKind::StaleRead`] has something stale to serve) and
/// executes a [`StoreFaultPlan`] against per-type operation counters.
/// With the empty plan it behaves as an ordinary filesystem.
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    /// Version history per file; the last entry is current.
    files: BTreeMap<String, Vec<Vec<u8>>>,
    plan: StoreFaultPlan,
    writes: u64,
    reads: u64,
    renames: u64,
}

impl MemVfs {
    /// A fault-free in-memory store.
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// An in-memory store executing `plan`.
    pub fn with_plan(plan: StoreFaultPlan) -> Self {
        MemVfs {
            plan,
            ..MemVfs::default()
        }
    }

    /// Plant a file directly, bypassing fault injection and the vault's
    /// write protocol — for seeding corrupt or foreign sidecars.
    pub fn plant(&mut self, name: &str, bytes: &[u8]) {
        self.files
            .entry(name.to_string())
            .or_default()
            .push(bytes.to_vec());
    }

    /// Current content of a file, if present.
    pub fn contents(&self, name: &str) -> Option<&[u8]> {
        self.files
            .get(name)
            .and_then(|v| v.last())
            .map(Vec::as_slice)
    }
}

impl Vfs for MemVfs {
    fn list(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, VfsError> {
        let op = self.reads;
        self.reads += 1;
        let versions = self
            .files
            .get(name)
            .ok_or_else(|| VfsError(format!("no such file `{name}`")))?;
        let stale = matches!(
            self.plan.find(op, false, true, false),
            Some(StoreFaultKind::StaleRead)
        );
        let v = if stale && versions.len() >= 2 {
            &versions[versions.len() - 2]
        } else {
            versions.last().expect("history is never empty")
        };
        Ok(v.clone())
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        let op = self.writes;
        self.writes += 1;
        let mut stored = bytes.to_vec();
        match self.plan.find(op, true, false, false) {
            Some(StoreFaultKind::FailWrite) => {
                return Err(VfsError(format!("injected write failure (write #{op})")));
            }
            Some(StoreFaultKind::TornWrite { keep }) => {
                stored.truncate(keep.min(stored.len()));
            }
            Some(StoreFaultKind::ByteFlip { offset, xor }) if !stored.is_empty() => {
                let at = offset % stored.len();
                stored[at] ^= xor.max(1);
            }
            _ => {}
        }
        self.files.entry(name.to_string()).or_default().push(stored);
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), VfsError> {
        let op = self.renames;
        self.renames += 1;
        let mut versions = self
            .files
            .remove(from)
            .ok_or_else(|| VfsError(format!("no such file `{from}`")))?;
        let current = versions.pop().expect("history is never empty");
        if matches!(
            self.plan.find(op, false, false, true),
            Some(StoreFaultKind::DuplicateSidecar)
        ) {
            // The raced writer's leftovers: the target's previous content
            // (or this one, if the target is new) under a sibling name.
            let dup = self
                .files
                .get(to)
                .and_then(|v| v.last())
                .cloned()
                .unwrap_or_else(|| current.clone());
            self.files.entry(format!("dup-{to}")).or_default().push(dup);
        }
        self.files.entry(to.to_string()).or_default().push(current);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), VfsError> {
        self.files.remove(name);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The vault
// ---------------------------------------------------------------------------

/// Vault observables, reported per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct VaultStats {
    /// Profiles successfully published.
    pub stores: u64,
    /// Publishes that failed (write or rename error).
    pub store_failures: u64,
    /// Lookups answered from a stored profile.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Sidecars quarantined (renamed aside) after failing validation.
    pub quarantined: u64,
    /// Lookups where >1 valid sidecar matched and a winner was selected.
    pub conflicts_resolved: u64,
}

/// The persistent profile store. All operations are sequential and
/// deterministic: scans walk the backend's sorted listing, diagnostics
/// carry no timestamps or host paths, and every anomaly degrades —
/// nothing here panics on untrusted bytes.
pub struct ProfileVault<V: Vfs> {
    vfs: V,
    diagnostics: Vec<String>,
    stats: VaultStats,
}

impl<V: Vfs> ProfileVault<V> {
    /// Open a vault over a backend.
    pub fn new(vfs: V) -> Self {
        ProfileVault {
            vfs,
            diagnostics: Vec::new(),
            stats: VaultStats::default(),
        }
    }

    /// The backend (tests and seeding).
    pub fn vfs_mut(&mut self) -> &mut V {
        &mut self.vfs
    }

    /// Deterministic diagnostic log, in emission order.
    pub fn diagnostics(&self) -> &[String] {
        &self.diagnostics
    }

    /// Vault counters.
    pub fn stats(&self) -> VaultStats {
        self.stats
    }

    /// Append an external diagnostic line (e.g. a resume rejection from
    /// the tuner layer) so one log tells the whole story.
    pub fn note(&mut self, line: impl Into<String>) {
        self.diagnostics.push(line.into());
    }

    /// Publish a profile under its key: seal the content hash, write a
    /// `.tmp` sibling, rename into place. On any backend error the temp
    /// file is dropped, a diagnostic is recorded, and the previously
    /// published sidecar (if any) is untouched.
    pub fn store(&mut self, profile: &ScheduleProfile) -> Result<String, StoreError> {
        let sealed = profile.clone().seal();
        let name = sealed.key.sidecar_name();
        let tmp = format!("{name}.tmp");
        let text =
            serde_json::to_string_pretty(&sealed).expect("profile serialization is infallible");
        if let Err(e) = self.vfs.write(&tmp, text.as_bytes()) {
            let _ = self.vfs.remove(&tmp);
            self.stats.store_failures += 1;
            let err = StoreError::Io {
                op: "write",
                name: name.clone(),
                detail: e.0,
            };
            self.diagnostics.push(format!("store rejected: {err}"));
            return Err(err);
        }
        if let Err(e) = self.vfs.rename(&tmp, &name) {
            let _ = self.vfs.remove(&tmp);
            self.stats.store_failures += 1;
            let err = StoreError::Io {
                op: "rename",
                name: name.clone(),
                detail: e.0,
            };
            self.diagnostics.push(format!("store rejected: {err}"));
            return Err(err);
        }
        self.stats.stores += 1;
        Ok(name)
    }

    /// Exact-key lookup: the valid sidecar for `key` with the lowest
    /// recorded latency (lexical name tie-break), or `None`.
    pub fn lookup(&mut self, key: &ProfileKey) -> Option<ScheduleProfile> {
        self.lookup_nearest(key, 0)
    }

    /// Nearest-key lookup: among valid sidecars for the same model and
    /// arch whose summary is within `max_l1` (L1 over quantized units),
    /// the closest wins; ties break on latency, then lexical name.
    pub fn lookup_nearest(&mut self, key: &ProfileKey, max_l1: u64) -> Option<ScheduleProfile> {
        let mut best: Option<(u64, f64, String, ScheduleProfile)> = None;
        let mut matched = 0u64;
        for (name, profile) in self.scan() {
            let Some(d) = key.distance(&profile.key) else {
                continue;
            };
            if d > max_l1 {
                continue;
            }
            matched += 1;
            let candidate = (d, profile.mean_latency_us, name, profile);
            let better = match &best {
                None => true,
                Some((bd, bl, bn, _)) => {
                    (candidate.0, candidate.1, candidate.2.as_str()) < (*bd, *bl, bn.as_str())
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        if matched > 1 {
            self.stats.conflicts_resolved += 1;
        }
        match best {
            Some((d, _, name, profile)) => {
                self.stats.hits += 1;
                self.diagnostics
                    .push(format!("hit `{name}` (summary distance {d})"));
                Some(profile)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Scan every published sidecar, quarantining the invalid ones.
    fn scan(&mut self) -> Vec<(String, ScheduleProfile)> {
        let names: Vec<String> = self
            .vfs
            .list()
            .into_iter()
            .filter(|n| n.ends_with(".json"))
            .collect();
        let mut valid = Vec::new();
        for name in names {
            match self.load_one(&name) {
                Ok(profile) => valid.push((name, profile)),
                Err(err) => self.quarantine(&name, &err),
            }
        }
        valid
    }

    fn load_one(&mut self, name: &str) -> Result<ScheduleProfile, StoreError> {
        let bytes = self.vfs.read(name).map_err(|e| StoreError::Io {
            op: "read",
            name: name.to_string(),
            detail: e.0,
        })?;
        let text = std::str::from_utf8(&bytes).map_err(|_| StoreError::Malformed {
            name: name.to_string(),
            detail: "not valid UTF-8".to_string(),
        })?;
        let profile: ScheduleProfile =
            serde_json::from_str(text).map_err(|e| StoreError::Malformed {
                name: name.to_string(),
                detail: e.to_string(),
            })?;
        profile.validate(name)?;
        Ok(profile)
    }

    /// Rename a failed sidecar aside and record why. A sidecar that
    /// cannot even be renamed is left in place but never trusted (the
    /// next scan re-detects it).
    fn quarantine(&mut self, name: &str, err: &StoreError) {
        self.stats.quarantined += 1;
        match self.vfs.rename(name, &format!("{name}.quarantined")) {
            Ok(()) => self.diagnostics.push(format!("quarantined: {err}")),
            Err(e) => self
                .diagnostics
                .push(format!("quarantined in place ({e}): {err}")),
        }
    }
}

/// FNV-1a, 64-bit — the workspace's stable content hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn sanitize(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(model: &str, latency: f64, summary: Vec<u32>) -> ScheduleProfile {
        let n = summary.len();
        ScheduleProfile {
            schema_version: SCHEMA_VERSION,
            key: ProfileKey {
                model: model.to_string(),
                arch: "V100".to_string(),
                dist_summary: summary,
            },
            choices: vec![0; n],
            schedule_labels: vec!["warp_t128_v1_u1".to_string(); n],
            occupancy: Some(4),
            mean_latency_us: latency,
            hash: String::new(),
        }
    }

    #[test]
    fn round_trip_through_memory() {
        let mut vault = ProfileVault::new(MemVfs::new());
        let p = profile("model-a", 12.5, vec![8, 80, 16]);
        let name = vault.store(&p).unwrap();
        assert!(name.ends_with(".json"));
        let back = vault.lookup(&p.key).expect("stored profile is found");
        assert_eq!(back.choices, p.choices);
        assert_eq!(back.mean_latency_us, p.mean_latency_us);
        assert_eq!(back.hash, back.content_hash());
        assert_eq!(vault.stats().hits, 1);
        assert_eq!(vault.stats().quarantined, 0);
    }

    #[test]
    fn round_trip_through_directory() {
        let dir = std::env::temp_dir().join(format!(
            "recflex-vault-test-{}-{:x}",
            std::process::id(),
            fnv1a64(b"round_trip_through_directory")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut vault = ProfileVault::new(DirVfs::open(&dir).unwrap());
        let p = profile("dir-model", 7.0, vec![24]);
        vault.store(&p).unwrap();
        assert!(vault.lookup(&p.key).is_some());
        // A second vault over the same directory sees the sidecar.
        let mut again = ProfileVault::new(DirVfs::open(&dir).unwrap());
        assert!(again.lookup(&p.key).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_flip_is_quarantined_and_degrades_to_miss() {
        let mut vault = ProfileVault::new(MemVfs::new());
        let p = profile("m", 5.0, vec![8]);
        let name = vault.store(&p).unwrap();
        // Corrupt one content byte in place (inside a digit of a number,
        // keeping the JSON well-formed: the hash must catch it).
        let mut bytes = vault.vfs_mut().contents(&name).unwrap().to_vec();
        let at = bytes
            .windows(4)
            .position(|w| w == b"5.0,")
            .expect("latency literal present");
        bytes[at] = b'9';
        vault.vfs_mut().remove(&name).unwrap();
        vault.vfs_mut().plant(&name, &bytes);
        assert!(vault.lookup(&p.key).is_none());
        assert_eq!(vault.stats().quarantined, 1);
        assert!(
            vault.diagnostics()[0].contains("hash mismatch"),
            "{:?}",
            vault.diagnostics()
        );
        // The quarantined sidecar is out of the namespace: scans skip it.
        assert!(vault.lookup(&p.key).is_none());
        assert_eq!(vault.stats().quarantined, 1, "no double quarantine");
    }

    #[test]
    fn torn_write_never_corrupts_the_published_sidecar() {
        // Publish clean, then retune into a torn write: the loader must
        // still serve the *old* profile (the temp file took the tear).
        let plan = StoreFaultPlan {
            faults: vec![StoreFault {
                op: 1, // the second write: the re-publish
                kind: StoreFaultKind::TornWrite { keep: 30 },
            }],
        };
        let mut vault = ProfileVault::new(MemVfs::with_plan(plan));
        let p1 = profile("m", 9.0, vec![8]);
        vault.store(&p1).unwrap();
        let p2 = ScheduleProfile {
            mean_latency_us: 4.0,
            ..p1.clone()
        };
        // The torn write "succeeds" — the tear is only visible on read.
        vault.store(&p2).unwrap();
        let got = vault.lookup(&p1.key);
        // The published sidecar was replaced by the torn bytes via
        // rename, so the loader quarantines it and reports a miss —
        // never a half-parsed profile.
        assert!(got.is_none());
        assert_eq!(vault.stats().quarantined, 1);
        assert!(vault.diagnostics().iter().any(|d| d.contains("malformed")));
    }

    #[test]
    fn fail_write_leaves_previous_version_live() {
        let plan = StoreFaultPlan {
            faults: vec![StoreFault {
                op: 1,
                kind: StoreFaultKind::FailWrite,
            }],
        };
        let mut vault = ProfileVault::new(MemVfs::with_plan(plan));
        let p1 = profile("m", 9.0, vec![8]);
        vault.store(&p1).unwrap();
        let p2 = ScheduleProfile {
            mean_latency_us: 4.0,
            ..p1.clone()
        };
        assert!(vault.store(&p2).is_err());
        let got = vault.lookup(&p1.key).expect("old version still live");
        assert_eq!(got.mean_latency_us, 9.0);
        assert_eq!(vault.stats().store_failures, 1);
    }

    #[test]
    fn schema_skew_is_quarantined() {
        let mut vault = ProfileVault::new(MemVfs::new());
        let skewed = ScheduleProfile {
            schema_version: SCHEMA_VERSION + 1,
            ..profile("m", 5.0, vec![8])
        };
        vault.store(&skewed).unwrap();
        assert!(vault.lookup(&skewed.key).is_none());
        assert_eq!(vault.stats().quarantined, 1);
        assert!(
            vault
                .diagnostics()
                .iter()
                .any(|d| d.contains("schema version 2")),
            "{:?}",
            vault.diagnostics()
        );
    }

    #[test]
    fn duplicate_sidecars_resolve_by_latency_then_name() {
        let mut vault = ProfileVault::new(MemVfs::new());
        let slow = profile("m", 9.0, vec![8]).seal();
        let fast = ScheduleProfile {
            mean_latency_us: 3.0,
            ..profile("m", 3.0, vec![8])
        }
        .seal();
        let name = slow.key.sidecar_name();
        vault.vfs_mut().plant(
            &name,
            serde_json::to_string_pretty(&slow).unwrap().as_bytes(),
        );
        vault.vfs_mut().plant(
            &format!("dup-{name}"),
            serde_json::to_string_pretty(&fast).unwrap().as_bytes(),
        );
        let got = vault.lookup(&slow.key).unwrap();
        assert_eq!(got.mean_latency_us, 3.0, "lowest latency wins");
        assert_eq!(vault.stats().conflicts_resolved, 1);
        // Equal latencies: lexically smaller name wins ("dup-…" < the
        // plain name here).
        let mut vault2 = ProfileVault::new(MemVfs::new());
        let a = ScheduleProfile {
            occupancy: Some(2),
            ..slow.clone()
        }
        .seal();
        vault2.vfs_mut().plant(
            &name,
            serde_json::to_string_pretty(&slow).unwrap().as_bytes(),
        );
        vault2.vfs_mut().plant(
            &format!("dup-{name}"),
            serde_json::to_string_pretty(&a).unwrap().as_bytes(),
        );
        let got2 = vault2.lookup(&slow.key).unwrap();
        assert_eq!(got2.occupancy, Some(2), "lexical tie-break");
    }

    #[test]
    fn nearest_lookup_respects_budget_and_distance_order() {
        let mut vault = ProfileVault::new(MemVfs::new());
        let near = profile("m", 9.0, vec![8, 16]);
        let far = profile("m", 1.0, vec![8, 24]);
        vault.store(&near).unwrap();
        vault.store(&far).unwrap();
        let probe = ProfileKey {
            model: "m".to_string(),
            arch: "V100".to_string(),
            dist_summary: vec![8, 17],
        };
        // Distance 1 vs 7: the near one wins despite worse latency.
        let got = vault.lookup_nearest(&probe, 8).unwrap();
        assert_eq!(got.key.dist_summary, vec![8, 16]);
        // Budget 0: exact only — a miss.
        assert!(vault.lookup(&probe).is_none());
        // Different arch never matches.
        let other_arch = ProfileKey {
            arch: "A100".to_string(),
            ..probe.clone()
        };
        assert!(vault.lookup_nearest(&other_arch, 100).is_none());
    }

    #[test]
    fn stale_read_serves_old_but_valid_content() {
        let plan = StoreFaultPlan {
            faults: vec![StoreFault {
                op: 0,
                kind: StoreFaultKind::StaleRead,
            }],
        };
        let mut vault = ProfileVault::new(MemVfs::with_plan(plan));
        let p1 = profile("m", 9.0, vec![8]);
        vault.store(&p1).unwrap();
        let p2 = ScheduleProfile {
            mean_latency_us: 4.0,
            ..p1.clone()
        };
        vault.store(&p2).unwrap();
        // The stale read returns version 1 — old, but internally
        // consistent, so it loads (hash still matches its own content).
        let got = vault.lookup(&p1.key).unwrap();
        assert_eq!(got.mean_latency_us, 9.0);
        // With the fault spent, the next lookup sees the fresh version.
        let got = vault.lookup(&p1.key).unwrap();
        assert_eq!(got.mean_latency_us, 4.0);
    }

    #[test]
    fn seeded_plans_replay() {
        let spec = StoreFaultSpec::hostile();
        assert_eq!(spec.plan(64, 0xFEED), spec.plan(64, 0xFEED));
        assert_ne!(spec.plan(64, 0xFEED), spec.plan(64, 0xBEEF));
    }

    #[test]
    fn distribution_summary_quantizes() {
        use recflex_data::ModelPreset;
        let m = ModelPreset::A.scaled(0.02);
        let b1 = Batch::generate(&m, 32, 1);
        let b2 = Batch::generate(&m, 32, 2);
        let s = distribution_summary(&[b1.clone(), b2.clone()]);
        assert_eq!(s.len(), m.features.len());
        assert_eq!(s, distribution_summary(&[b1, b2]));
        assert!(distribution_summary(&[]).is_empty());
    }

    #[test]
    fn sidecar_names_are_sanitized_and_stable() {
        let k = ProfileKey {
            model: "Crazy Model/α".to_string(),
            arch: "V100".to_string(),
            dist_summary: vec![1, 2],
        };
        let n = k.sidecar_name();
        assert!(n.starts_with("crazy_model__-v100-"), "{n}");
        assert_eq!(n, k.sidecar_name());
        let k2 = ProfileKey {
            dist_summary: vec![1, 3],
            ..k.clone()
        };
        assert_ne!(n, k2.sidecar_name(), "summary is part of the identity");
    }
}
