//! RECom-style execution: cross-embedding fusion with one uniform schedule
//! and static thread mapping.
//!
//! RECom fuses the embedding subgraphs of all features into a single GPU
//! kernel — a large win over TensorFlow — but "evenly distributes the
//! embedding operations of different features to individual GPU blocks"
//! and compiles one schedule for everything (paper Section II-B). Both
//! limitations are reproduced: every feature receives the same uniform
//! sub-warp schedule and the same compile-time block count derived from
//! historical batches, so heavy features serialize and light ones idle.

use recflex_compiler::{FusedKernelObject, FusedSpec, MappingStrategy};
use recflex_data::{Batch, Dataset, ModelConfig};
use recflex_embedding::{analyze_batch, FeatureWorkload, TableSet};
use recflex_schedules::{ScheduleInstance, ScheduleKind, ScheduleParams};
use recflex_sim::{launch, GpuArch};

use crate::{Backend, BackendError, BackendRun};

/// The single schedule RECom compiles for every feature.
fn uniform_schedule(dim: u32) -> ScheduleInstance {
    ScheduleInstance {
        kind: ScheduleKind::SubWarp,
        params: ScheduleParams {
            threads_per_block: 256,
            group_size: 8,
            vector_width: 1,
            unroll: 1,
            stage_rows: 0,
        },
        emb_dim: dim,
    }
}

/// RECom baseline. Construct with [`RecomBackend::compile`] so the static
/// block distribution can be derived from historical batches, exactly like
/// RECom's compile-time decisions.
pub struct RecomBackend {
    object: FusedKernelObject,
    history: Vec<Vec<FeatureWorkload>>,
}

impl RecomBackend {
    /// "Compile" the model: fix the uniform schedule and record history
    /// for the static mapping.
    pub fn compile(model: &ModelConfig, history_data: &Dataset) -> Self {
        let schedules: Vec<ScheduleInstance> = model
            .features
            .iter()
            .map(|f| uniform_schedule(f.emb_dim))
            .collect();
        let object = FusedKernelObject::compile(FusedSpec::new(schedules));
        let history = history_data
            .batches()
            .iter()
            .map(|b| analyze_batch(model, b))
            .collect();
        RecomBackend { object, history }
    }
}

impl Backend for RecomBackend {
    fn name(&self) -> &'static str {
        "RECom"
    }

    fn run(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
        batch: &Batch,
        arch: &GpuArch,
    ) -> Result<BackendRun, BackendError> {
        let bound = self.object.bind_static(
            model,
            tables,
            batch,
            &self.history,
            MappingStrategy::StaticAverage,
        );
        let report = launch(&bound, arch, &self.object.launch_config())
            .map_err(|e| BackendError::Launch(e.to_string()))?;
        Ok(BackendRun {
            output: bound.execute(),
            latency_us: report.latency_us,
            kernel_launches: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;
    use recflex_embedding::reference_model_output;

    fn setup() -> (ModelConfig, TableSet, Dataset) {
        let m = ModelPreset::A.scaled(0.01);
        let t = TableSet::for_model(&m);
        let d = Dataset::synthesize(&m, 2, 48, 5);
        (m, t, d)
    }

    #[test]
    fn single_fused_launch() {
        let (m, t, d) = setup();
        let be = RecomBackend::compile(&m, &d);
        let b = Batch::generate(&m, 48, 9);
        let run = be.run(&m, &t, &b, &GpuArch::v100()).unwrap();
        assert_eq!(run.kernel_launches, 1);
    }

    #[test]
    fn faster_than_tensorflow() {
        // Fusion pays off once per-feature launch overhead accumulates; a
        // handful of features is not enough (and was not RECom's target).
        let m = ModelPreset::A.scaled(0.08);
        let t = TableSet::for_model(&m);
        let d = Dataset::synthesize(&m, 2, 128, 5);
        let be = RecomBackend::compile(&m, &d);
        let b = Batch::generate(&m, 128, 9);
        let arch = GpuArch::v100();
        let recom = be.run(&m, &t, &b, &arch).unwrap();
        let tf = crate::TensorFlowBackend.run(&m, &t, &b, &arch).unwrap();
        assert!(
            recom.latency_us < tf.latency_us,
            "fusion must beat per-feature launches: {} vs {}",
            recom.latency_us,
            tf.latency_us
        );
    }

    #[test]
    fn uniform_schedule_shared_by_all_same_dim_features() {
        let (m, _, d) = setup();
        let be = RecomBackend::compile(&m, &d);
        // Dedup collapses to one schedule per distinct dim.
        let dims: std::collections::HashSet<u32> = m.features.iter().map(|f| f.emb_dim).collect();
        assert_eq!(be.object.unique.len(), dims.len());
    }

    #[test]
    fn output_matches_reference() {
        let (m, t, d) = setup();
        let be = RecomBackend::compile(&m, &d);
        let b = Batch::generate(&m, 32, 11);
        let run = be.run(&m, &t, &b, &GpuArch::v100()).unwrap();
        let golden = reference_model_output(&m, &t, &b);
        assert_eq!(run.output.max_abs_diff(&golden), 0.0);
    }
}
