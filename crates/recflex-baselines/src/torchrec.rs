//! TorchRec/FBGEMM-style execution: fused warp-per-sample kernel selected
//! by the maximum embedding dimension.
//!
//! TorchRec's `FusedEmbeddingBagCollection` lowers to FBGEMM's batched
//! embedding kernel: fine-grained sample-warp parallelism — the best of the
//! baselines (paper Section VI-B) — but "selects the pre-compiled fused
//! kernels based on the maximum embedding dimension among all tables"
//! (Section II-B). We reproduce that: every feature runs the warp-per-
//! sample template with the vector width sized for the *largest* dim in the
//! model, so narrow features drag predicated-off lanes through every row
//! (the Table II thread-utilization gap), and nothing adapts to per-feature
//! pooling behaviour.

use recflex_compiler::{FusedKernelObject, FusedSpec};
use recflex_data::{Batch, ModelConfig};
use recflex_embedding::TableSet;
use recflex_schedules::{ScheduleInstance, ScheduleKind, ScheduleParams};
use recflex_sim::{launch, GpuArch};

use crate::{Backend, BackendError, BackendRun};

/// TorchRec baseline.
pub struct TorchRecBackend {
    object: FusedKernelObject,
}

impl TorchRecBackend {
    /// Select the pre-compiled kernel variant for `model` (by max dim) and
    /// build the fused object.
    pub fn compile(model: &ModelConfig) -> Self {
        let (_, max_dim) = model.dim_range();
        // FBGEMM picks the widest vector the max dim allows.
        let vec = if max_dim >= 128 {
            4
        } else if max_dim >= 64 {
            2
        } else {
            1
        };
        let schedules: Vec<ScheduleInstance> = model
            .features
            .iter()
            .map(|f| ScheduleInstance {
                kind: ScheduleKind::SamplePerWarp,
                params: ScheduleParams {
                    threads_per_block: 256,
                    group_size: 32,
                    vector_width: vec,
                    unroll: 1,
                    stage_rows: 0,
                },
                emb_dim: f.emb_dim,
            })
            .collect();
        TorchRecBackend {
            object: FusedKernelObject::compile(FusedSpec::new(schedules)),
        }
    }

    /// The compiled fused object (exposed for the Table II metric study).
    pub fn object(&self) -> &FusedKernelObject {
        &self.object
    }
}

impl Backend for TorchRecBackend {
    fn name(&self) -> &'static str {
        "TorchRec"
    }

    fn run(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
        batch: &Batch,
        arch: &GpuArch,
    ) -> Result<BackendRun, BackendError> {
        // FBGEMM sizes its grid from the live batch (warp per sample), so
        // TorchRec gets runtime mapping — its strength in the paper.
        let bound = self.object.bind(model, tables, batch);
        let report = launch(&bound, arch, &self.object.launch_config())
            .map_err(|e| BackendError::Launch(e.to_string()))?;
        Ok(BackendRun {
            output: bound.execute(),
            latency_us: report.latency_us,
            kernel_launches: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Dataset, ModelPreset};
    use recflex_embedding::reference_model_output;

    #[test]
    fn best_baseline_on_heterogeneous_model() {
        let m = ModelPreset::A.scaled(0.01);
        let t = TableSet::for_model(&m);
        let d = Dataset::synthesize(&m, 2, 48, 5);
        let b = Batch::generate(&m, 48, 9);
        let arch = GpuArch::v100();
        let torchrec = TorchRecBackend::compile(&m).run(&m, &t, &b, &arch).unwrap();
        let recom = crate::RecomBackend::compile(&m, &d)
            .run(&m, &t, &b, &arch)
            .unwrap();
        let tf = crate::TensorFlowBackend.run(&m, &t, &b, &arch).unwrap();
        assert!(
            torchrec.latency_us < recom.latency_us,
            "paper ordering: TorchRec < RECom"
        );
        assert!(torchrec.latency_us < tf.latency_us);
    }

    #[test]
    fn uses_single_kind_everywhere() {
        let m = ModelPreset::A.scaled(0.01);
        let be = TorchRecBackend::compile(&m);
        assert!(be
            .object()
            .spec
            .schedules
            .iter()
            .all(|s| s.kind == ScheduleKind::SamplePerWarp));
        // Same params for everyone — only the dim differs.
        let p0 = be.object().spec.schedules[0].params;
        assert!(be.object().spec.schedules.iter().all(|s| s.params == p0));
    }

    #[test]
    fn output_matches_reference() {
        let m = ModelPreset::E.scaled(0.01);
        let t = TableSet::for_model(&m);
        let b = Batch::generate(&m, 32, 11);
        let run = TorchRecBackend::compile(&m)
            .run(&m, &t, &b, &GpuArch::a100())
            .unwrap();
        let golden = reference_model_output(&m, &t, &b);
        assert_eq!(run.output.max_abs_diff(&golden), 0.0);
    }
}
