//! # recflex-baselines — the comparison systems of the paper's evaluation
//!
//! Re-implementations of the *embedding execution strategy* of each system
//! RecFlex is compared against (paper Section VI-A), on the same simulator
//! and the same functional semantics, so Figure 9/10 comparisons are
//! apples-to-apples:
//!
//! * [`TensorFlowBackend`] — no fusion: one kernel launch per feature with
//!   a generic schedule; latency is dominated by per-kernel overhead and
//!   low per-kernel GPU utilization.
//! * [`RecomBackend`] — RECom-style cross-embedding fusion: one fused
//!   kernel, but a *single uniform schedule* for every feature and a
//!   *static* compile-time block distribution (each feature gets the same
//!   block count derived from historical batches).
//! * [`TorchRecBackend`] — TorchRec/FBGEMM-style fused kernel with
//!   warp-per-sample mapping, its parameters chosen once from the *maximum*
//!   embedding dimension across tables; small-dim features waste lanes.
//!   The strongest baseline, as in the paper.
//! * [`HugeCtrBackend`] — HugeCTR-style coarse mapping: one block per
//!   sample processing **all features sequentially**; requires a uniform
//!   embedding dimension (models D/E only) and relies on large dims and
//!   batches to saturate the GPU.
//!
//! All backends return bit-identical outputs to the scalar reference; they
//! differ exclusively in simulated execution strategy.

pub mod hugectr;
pub mod recom;
pub mod tensorflow;
pub mod torchrec;

pub use hugectr::HugeCtrBackend;
pub use recom::RecomBackend;
pub use tensorflow::TensorFlowBackend;
pub use torchrec::TorchRecBackend;

use recflex_data::{Batch, ModelConfig};
use recflex_embedding::{FusedOutput, TableSet};
use recflex_sim::GpuArch;

/// One backend invocation: functional output + simulated timing.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Pooled embeddings, bit-identical to the reference.
    pub output: FusedOutput,
    /// Total simulated embedding-stage latency (all kernels), µs.
    pub latency_us: f64,
    /// Number of kernel launches performed.
    pub kernel_launches: u32,
}

/// Why a backend refused a model/batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The backend cannot express this model (e.g. HugeCTR needs a uniform
    /// embedding dimension).
    Unsupported(String),
    /// A simulated launch failed.
    Launch(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unsupported(m) => write!(f, "model unsupported: {m}"),
            BackendError::Launch(m) => write!(f, "launch failed: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A recommendation embedding execution strategy.
pub trait Backend: Sync {
    /// Display name ("TensorFlow", "RECom", …).
    fn name(&self) -> &'static str;

    /// Whether the backend can serve this model at all.
    fn supports(&self, model: &ModelConfig) -> bool {
        let _ = model;
        true
    }

    /// Execute the embedding stage of one batch.
    fn run(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
        batch: &Batch,
        arch: &GpuArch,
    ) -> Result<BackendRun, BackendError>;
}
