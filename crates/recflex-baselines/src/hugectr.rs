//! HugeCTR-style execution: one block per sample, features processed
//! sequentially within the block.
//!
//! HugeCTR's fused embedding layer concatenates same-dimension tables and
//! launches a coarse sample-block kernel: block `s` walks *all* features of
//! sample `s` one after another (paper Section VI-B). The strategy needs
//! large embedding dimensions and batch sizes to saturate the GPU; with the
//! moderate inference batches and dims of models D/E it trails even RECom,
//! exactly as the paper measures. It refuses models whose features have
//! mixed dimensions.

use recflex_data::{Batch, ModelConfig};
use recflex_embedding::{analyze_batch, reference_model_output, TableSet};
use recflex_sim::{
    launch, BlockProfile, BlockResources, GpuArch, LaunchConfig, ProfileCtx, SimKernel,
};

use crate::{Backend, BackendError, BackendRun};

/// The HugeCTR fused pooling kernel bound to a batch.
struct HugeCtrKernel<'a> {
    batch: &'a Batch,
    dim: u32,
    threads: u32,
    /// Per-feature unique/total byte ratios for the L2 model.
    unique_fracs: Vec<f64>,
}

impl SimKernel for HugeCtrKernel<'_> {
    fn name(&self) -> &str {
        "hugectr_fused_pooling"
    }

    fn grid_blocks(&self) -> u32 {
        self.batch.batch_size
    }

    fn resources(&self) -> BlockResources {
        // Accumulator for one sample vector + bookkeeping; no smem (the
        // sample's pooled vector lives in the first warp's registers).
        BlockResources::new(
            self.threads,
            18 + self.dim.div_ceil(self.threads / 32).min(64),
            0,
        )
    }

    fn profile_block(&self, block_idx: u32, _ctx: &ProfileCtx) -> BlockProfile {
        let s = block_idx;
        let dim = self.dim as u64;
        // Lanes covering the dim: with dim 8, only 8 threads of the block
        // do useful work per row — the strategy's core weakness.
        let lanes_useful = dim.min(self.threads as u64);
        let sectors_per_row = (dim * 4).div_ceil(32);

        let mut p = BlockProfile::default();
        let mut bytes = 0u64;
        let mut unique = 0.0f64;
        for (f, fb) in self.batch.features.iter().enumerate() {
            let pf = fb.pooling_factor(s) as u64;
            if pf == 0 {
                continue;
            }
            // Features run strictly sequentially inside the block: every
            // row load of every feature sits on one dependence chain.
            p.critical_mem_chain += pf;
            p.issue_cycles += pf as f64 * 4.0 + 6.0;
            p.mem_transactions += pf * sectors_per_row;
            let b = pf * sectors_per_row * 32;
            bytes += b;
            unique += b as f64 * self.unique_fracs[f];
            p.thread_active_sum += pf * lanes_useful;
            p.thread_useful_sum += pf * lanes_useful;
            p.thread_slot_sum += pf * sectors_per_row.max(1) * 32;
            p.flops += pf * dim;
        }
        p.bytes_accessed = bytes;
        p.unique_bytes = unique as u64;
        // One pooled vector per feature written out.
        let out_sectors = self.batch.features.len() as u64 * sectors_per_row;
        p.mem_transactions += out_sectors;
        p.bytes_written = out_sectors * 32;
        p.issue_cycles += out_sectors as f64 * 1.5 + 30.0;
        // Only one warp's worth of lanes is ever memory-active when the
        // dim is small, and the feature loop is serial: low MLP.
        p.active_warps = ((dim as u32).div_ceil(32)).clamp(1, self.threads / 32);
        p.mlp = 2.5;
        p.barriers = 1;
        p
    }
}

/// HugeCTR baseline.
#[derive(Debug, Default)]
pub struct HugeCtrBackend;

impl Backend for HugeCtrBackend {
    fn name(&self) -> &'static str {
        "HugeCTR"
    }

    fn supports(&self, model: &ModelConfig) -> bool {
        model.uniform_dim().is_some()
    }

    fn run(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
        batch: &Batch,
        arch: &GpuArch,
    ) -> Result<BackendRun, BackendError> {
        let dim = model
            .uniform_dim()
            .ok_or_else(|| BackendError::Unsupported("HugeCTR needs one embedding dim".into()))?;
        let workloads = analyze_batch(model, batch);
        let unique_fracs = workloads
            .iter()
            .map(|w| {
                if w.bytes_read() == 0 {
                    1.0
                } else {
                    w.unique_bytes() as f64 / w.bytes_read() as f64
                }
            })
            .collect();
        let kern = HugeCtrKernel {
            batch,
            dim,
            threads: 128,
            unique_fracs,
        };
        let report = launch(&kern, arch, &LaunchConfig::default())
            .map_err(|e| BackendError::Launch(e.to_string()))?;
        Ok(BackendRun {
            output: reference_model_output(model, tables, batch),
            latency_us: report.latency_us,
            kernel_launches: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Dataset, ModelPreset};

    #[test]
    fn rejects_mixed_dims() {
        let a = ModelPreset::A.scaled(0.01);
        assert!(!HugeCtrBackend.supports(&a));
        let t = TableSet::for_model(&a);
        let b = Batch::generate(&a, 16, 1);
        assert!(matches!(
            HugeCtrBackend.run(&a, &t, &b, &GpuArch::v100()),
            Err(BackendError::Unsupported(_))
        ));
    }

    #[test]
    fn accepts_uniform_dim_models() {
        for preset in [ModelPreset::D, ModelPreset::E] {
            let m = preset.scaled(0.01);
            assert!(HugeCtrBackend.supports(&m));
            let t = TableSet::for_model(&m);
            let b = Batch::generate(&m, 32, 3);
            let run = HugeCtrBackend.run(&m, &t, &b, &GpuArch::v100()).unwrap();
            assert!(run.latency_us > 0.0);
            assert_eq!(run.kernel_launches, 1);
        }
    }

    #[test]
    fn slower_than_torchrec_on_model_d() {
        // Paper Figure 9: HugeCTR trails TorchRec (and RECom) because the
        // coarse sample-block mapping starves on dim-8 inference batches.
        let m = ModelPreset::D.scaled(0.02);
        let t = TableSet::for_model(&m);
        let b = Batch::generate(&m, 64, 9);
        let arch = GpuArch::v100();
        let hugectr = HugeCtrBackend.run(&m, &t, &b, &arch).unwrap();
        let torchrec = crate::TorchRecBackend::compile(&m)
            .run(&m, &t, &b, &arch)
            .unwrap();
        assert!(
            hugectr.latency_us > torchrec.latency_us,
            "HugeCTR {} must trail TorchRec {}",
            hugectr.latency_us,
            torchrec.latency_us
        );
    }

    #[test]
    fn output_matches_reference() {
        let m = ModelPreset::E.scaled(0.01);
        let t = TableSet::for_model(&m);
        let b = Batch::generate(&m, 24, 2);
        let run = HugeCtrBackend.run(&m, &t, &b, &GpuArch::v100()).unwrap();
        let golden = recflex_embedding::reference_model_output(&m, &t, &b);
        assert_eq!(run.output.max_abs_diff(&golden), 0.0);
    }

    #[test]
    fn used_with_dataset_models() {
        // Smoke test with several batch sizes.
        let m = ModelPreset::D.scaled(0.01);
        let t = TableSet::for_model(&m);
        let ds = Dataset::synthesize_varied(&m, &[8, 64, 200], 4);
        for b in ds.batches() {
            let run = HugeCtrBackend.run(&m, &t, b, &GpuArch::a100()).unwrap();
            assert!(run.latency_us.is_finite());
        }
    }
}
