//! TensorFlow-style execution: one kernel per feature, no fusion.
//!
//! Classic `tf.nn.embedding_lookup_sparse`: each feature's gather+pool runs
//! as its own GPU kernel. With a thousand features the per-launch overhead
//! alone dominates, and each small kernel leaves most SMs idle — which is
//! why the paper measures TensorFlow 35.4× behind RecFlex.

use recflex_data::{Batch, ModelConfig};
use recflex_embedding::{analyze_batch, reference_model_output, TableSet};
use recflex_schedules::{ScheduleInstance, ScheduleKind, ScheduleParams};
use recflex_sim::{launch, GpuArch, LaunchConfig, ProfileCtx, SimKernel};

use crate::{Backend, BackendError, BackendRun};

/// The fixed generic schedule TensorFlow's kernels correspond to: one warp
/// per sample, unvectorized — reasonable everywhere, optimal nowhere.
fn generic_schedule(dim: u32) -> ScheduleInstance {
    ScheduleInstance {
        kind: ScheduleKind::SamplePerWarp,
        params: ScheduleParams {
            threads_per_block: 256,
            group_size: 32,
            vector_width: 1,
            unroll: 1,
            stage_rows: 0,
        },
        emb_dim: dim,
    }
}

/// Single-feature kernel wrapper.
struct SingleFeatureKernel<'a> {
    sched: ScheduleInstance,
    fb: &'a recflex_data::FeatureBatch,
    w: &'a recflex_embedding::FeatureWorkload,
    blocks: u32,
}

impl SimKernel for SingleFeatureKernel<'_> {
    fn name(&self) -> &str {
        "tf_embedding_lookup_sparse"
    }
    fn grid_blocks(&self) -> u32 {
        self.blocks
    }
    fn resources(&self) -> recflex_sim::BlockResources {
        self.sched.resources()
    }
    fn profile_block(&self, block_idx: u32, ctx: &ProfileCtx) -> recflex_sim::BlockProfile {
        self.sched
            .block_profile(self.fb, self.w, block_idx, ctx.reg_cap)
    }
}

/// TensorFlow baseline.
#[derive(Debug, Default)]
pub struct TensorFlowBackend;

impl Backend for TensorFlowBackend {
    fn name(&self) -> &'static str {
        "TensorFlow"
    }

    fn run(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
        batch: &Batch,
        arch: &GpuArch,
    ) -> Result<BackendRun, BackendError> {
        let workloads = analyze_batch(model, batch);
        let mut latency = 0.0f64;
        let mut launches = 0u32;
        for (f, spec) in model.features.iter().enumerate() {
            let sched = generic_schedule(spec.emb_dim);
            let w = &workloads[f];
            let kern = SingleFeatureKernel {
                sched,
                fb: &batch.features[f],
                w,
                blocks: sched.required_blocks(w),
            };
            let report = launch(&kern, arch, &LaunchConfig::default())
                .map_err(|e| BackendError::Launch(e.to_string()))?;
            latency += report.latency_us;
            launches += 1;
        }
        Ok(BackendRun {
            output: reference_model_output(model, tables, batch),
            latency_us: latency,
            kernel_launches: launches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;

    #[test]
    fn one_launch_per_feature() {
        let m = ModelPreset::A.scaled(0.01);
        let tables = TableSet::for_model(&m);
        let b = Batch::generate(&m, 32, 3);
        let run = TensorFlowBackend
            .run(&m, &tables, &b, &GpuArch::v100())
            .unwrap();
        assert_eq!(run.kernel_launches as usize, m.features.len());
        // Launch overhead alone puts a floor under the latency.
        assert!(run.latency_us >= m.features.len() as f64 * GpuArch::v100().kernel_launch_us);
    }

    #[test]
    fn output_matches_reference() {
        let m = ModelPreset::C.scaled(0.01);
        let tables = TableSet::for_model(&m);
        let b = Batch::generate(&m, 24, 7);
        let run = TensorFlowBackend
            .run(&m, &tables, &b, &GpuArch::v100())
            .unwrap();
        let golden = reference_model_output(&m, &tables, &b);
        assert_eq!(run.output.max_abs_diff(&golden), 0.0);
    }

    #[test]
    fn supports_everything() {
        assert!(TensorFlowBackend.supports(&ModelPreset::A.scaled(0.01)));
        assert!(TensorFlowBackend.supports(&ModelPreset::D.scaled(0.01)));
    }
}
