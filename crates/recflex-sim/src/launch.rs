//! Kernel launch: profiles → block times → makespan → latency and metrics.
//!
//! This is where the paper's machine model lives. For every block the model
//! takes the analytic demands ([`BlockProfile`]) and the launch environment
//! (resident blocks per SM `B`, grid-level L2 pressure) and computes
//!
//! ```text
//! t_issue   = issue_cycles      · B_eff / warp_schedulers     (SM issue shared)
//! t_lsu     = mem_transactions  · B_eff / lsu_per_sm          (LSU shared)
//! t_dram    = dram_bytes        · B_eff / dram_bytes_per_sm_cycle
//! t_l2      = l2_bytes          · B_eff / l2_bytes_per_sm_cycle
//! t_latency = (mem_transactions / active_warps) · avg_latency / mlp
//! l_b       = max(all of the above) + barriers · barrier_cost
//! ```
//!
//! where `B_eff = min(B, ceil(grid/#SM))` — a block sharing its SM with
//! fewer co-residents (small grid, or a straw-man isolated measurement)
//! sees less contention. The kernel latency is the maximum of all machine
//! lower bounds (see [`BoundBreakdown`]): the Equation-2 slot bound with
//! Graham's `(1 − 1/m)·max` tail term, chip-wide DRAM/L2/issue/LSU
//! capability, and a Little's-law concurrency supply bound. Occupancy
//! therefore creates the exact tension the RecFlex tuner navigates: more
//! resident warps raise the sustainable bandwidth and hide latency, but
//! cannot help chains or saturated DRAM, and forcing residency up via
//! register capping adds spill traffic.

use rayon::prelude::*;

use crate::arch::GpuArch;
use crate::kernel::{ProfileCtx, SimKernel};
use crate::memory::MemorySystem;
use crate::metrics::KernelMetrics;
use crate::occupancy::{control_occupancy, occupancy, Occupancy};
use crate::profile::BlockProfile;

/// Launch-time options.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchConfig {
    /// Force residency to this many blocks/SM (the paper's explicit
    /// occupancy control). `None` uses the natural occupancy.
    pub occupancy_target: Option<u32>,
    /// Extra unique bytes competing for L2 beyond this kernel's own
    /// footprint — used by the tuner to emulate the fused kernel's cache
    /// environment around an isolated feature.
    pub extra_l2_pressure: u64,
    /// Multiplier on issue cycles for dispatch overhead (1.0 = if-else
    /// inlined dispatch; ~1.45 models the function-pointer-array variant
    /// discussed in Section IV-B).
    pub issue_multiplier: f64,
}

impl LaunchConfig {
    /// Config with an occupancy target and default everything else.
    pub fn with_occupancy(target: u32) -> Self {
        LaunchConfig {
            occupancy_target: Some(target),
            ..Default::default()
        }
    }
}

/// Why a launch was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Per-block resources exceed a single SM: the kernel cannot start.
    Unlaunchable,
    /// The grid is empty.
    EmptyGrid,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Unlaunchable => write!(f, "kernel resources exceed one SM"),
            LaunchError::EmptyGrid => write!(f, "kernel grid is empty"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// The individual lower bounds whose maximum is the kernel makespan —
/// diagnostic output explaining *why* a launch takes as long as it does.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BoundBreakdown {
    /// Equation-2 slot bound + Graham tail, cycles.
    pub slot_cycles: f64,
    /// Aggregate DRAM capability bound, cycles.
    pub dram_cycles: f64,
    /// Aggregate L2 capability bound, cycles.
    pub l2_cycles: f64,
    /// Aggregate instruction-issue bound, cycles.
    pub issue_cycles: f64,
    /// Aggregate LSU bound, cycles.
    pub lsu_cycles: f64,
    /// Little's-law concurrency supply bound, cycles.
    pub supply_cycles: f64,
    /// Host-interconnect (UVM) traffic bound, cycles.
    pub uvm_cycles: f64,
    /// Longest solo block (straggler), cycles.
    pub straggler_cycles: f64,
}

impl BoundBreakdown {
    /// Name of the binding constraint.
    pub fn binding(&self) -> &'static str {
        let pairs = [
            ("slots+tail", self.slot_cycles),
            ("dram", self.dram_cycles),
            ("l2", self.l2_cycles),
            ("issue", self.issue_cycles),
            ("lsu", self.lsu_cycles),
            ("supply", self.supply_cycles),
            ("uvm", self.uvm_cycles),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(n, _)| n)
            .unwrap_or("slots+tail")
    }

    /// The makespan these bounds imply.
    pub fn makespan(&self) -> f64 {
        self.slot_cycles
            .max(self.dram_cycles)
            .max(self.l2_cycles)
            .max(self.issue_cycles)
            .max(self.lsu_cycles)
            .max(self.supply_cycles)
            .max(self.uvm_cycles)
    }
}

/// Result of one simulated kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Kernel name.
    pub name: String,
    /// End-to-end latency including launch overhead, microseconds.
    pub latency_us: f64,
    /// GPU-side makespan in cycles.
    pub makespan_cycles: f64,
    /// Per-block steady-state execution times in cycles, in grid order —
    /// the tuner's Equation 3 sums slices of this.
    pub block_times: Vec<f64>,
    /// Per-block *solo* times (full machine to itself) — the straggler
    /// bound of each block; the kernel cannot finish before the slowest.
    pub block_solo_times: Vec<f64>,
    /// Achieved residency.
    pub occupancy: Occupancy,
    /// Slot utilization of the launch in `[0, 1]`.
    pub utilization: f64,
    /// Aggregated Nsight-like metrics.
    pub metrics: KernelMetrics,
    /// The lower bounds behind `makespan_cycles` and which one binds.
    pub bounds: BoundBreakdown,
}

impl LaunchReport {
    /// Sum of block times over a half-open block range (Equation 3 of the
    /// paper for one feature's block group).
    pub fn block_time_sum(&self, range: std::ops::Range<usize>) -> f64 {
        self.block_times[range].iter().sum()
    }
}

/// Launch `kernel` on `arch` under `cfg`.
pub fn launch<K: SimKernel>(
    kernel: &K,
    arch: &GpuArch,
    cfg: &LaunchConfig,
) -> Result<LaunchReport, LaunchError> {
    let grid = kernel.grid_blocks();
    if grid == 0 {
        return Err(LaunchError::EmptyGrid);
    }

    let natural_res = kernel.resources();
    let (res, blocks_per_sm, reg_cap) = match cfg.occupancy_target {
        Some(target) => {
            let ctl =
                control_occupancy(&natural_res, arch, target).ok_or(LaunchError::Unlaunchable)?;
            (ctl.resources, ctl.blocks_per_sm, ctl.reg_cap)
        }
        None => {
            let occ = occupancy(&natural_res, arch);
            if occ.blocks_per_sm == 0 {
                return Err(LaunchError::Unlaunchable);
            }
            (natural_res, occ.blocks_per_sm, None)
        }
    };
    let warps_per_block = res.warps_per_block(arch.warp_size);
    let occ = Occupancy {
        blocks_per_sm,
        warps_per_sm: blocks_per_sm * warps_per_block,
        limiter: occupancy(&res, arch).limiter,
    };

    let ctx = ProfileCtx { reg_cap };
    let issue_mult = if cfg.issue_multiplier > 0.0 {
        cfg.issue_multiplier
    } else {
        1.0
    };

    // Phase 1: profile all blocks in parallel (pure, deterministic).
    let profiles: Vec<BlockProfile> = (0..grid)
        .into_par_iter()
        .map(|b| kernel.profile_block(b, &ctx))
        .collect();

    // Phase 2: grid-level memory behaviour.
    let total_bytes: u64 = profiles.iter().map(|p| p.bytes_accessed).sum();
    let unique_bytes: u64 = profiles.iter().map(|p| p.unique_bytes).sum();
    let mem = MemorySystem::from_traffic(arch, total_bytes, unique_bytes, cfg.extra_l2_pressure);

    // Phase 3: block times under the launch environment.
    let b_eff = (blocks_per_sm as f64)
        .min((grid as f64 / arch.num_sms as f64).ceil())
        .max(1.0);
    let dram_rate = arch.dram_bytes_per_sm_cycle();
    let l2_rate = arch.l2_bytes_per_sm_cycle();

    let mut mem_bound_cycles = 0.0f64;
    let mut block_times = Vec::with_capacity(grid as usize);
    let mut block_solo_times = Vec::with_capacity(grid as usize);
    let mut straggler = 0.0f64;
    for p in &profiles {
        let aw = p.active_warps.max(1) as f64;
        let mlp = p.mlp.max(1.0);
        // The block retires with its slowest warp: prefer the explicit
        // critical chain; fall back to the uniform average for kernels
        // that do not report one.
        let chain = if p.critical_mem_chain > 0 {
            p.critical_mem_chain as f64
        } else {
            p.mem_transactions as f64 / aw
        };
        // Little's law per block: its warps sustain `aw × mlp` requests in
        // flight, so its memory work cannot drain faster than that supply,
        // and never faster than its slowest warp's chain.
        let t_lat = chain.max(p.mem_transactions as f64 / aw) * mem.avg_latency / mlp;
        // UVM misses: high-latency host accesses, hidden by the same
        // warp-level parallelism but with a far longer round trip.
        let t_uvm = (p.uvm_transactions as f64 / aw) * arch.uvm_latency / mlp;
        let dram_b = mem.dram_bytes(p);
        let l2_b = mem.l2_bytes(p);
        let barrier_cost = p.barriers as f64 * arch.barrier_cycles;

        // Steady-state time: the block shares its SM with `b_eff`
        // co-residents (the contention environment the tuner must rank
        // schedules under — these are the `l_b` of Equations 2/3).
        let t_issue = p.issue_cycles * issue_mult * b_eff / arch.warp_schedulers as f64;
        let t_lsu = p.mem_transactions as f64 * b_eff / arch.lsu_per_sm;
        let t_dram = dram_b * b_eff / dram_rate;
        let t_l2 = l2_b * b_eff / l2_rate;
        let t_mem = t_lsu.max(t_dram).max(t_l2);
        let l_b = t_issue.max(t_mem).max(t_lat).max(t_uvm) + barrier_cost;
        mem_bound_cycles += t_mem;
        block_times.push(l_b);

        // Solo time: the same block with the machine to itself — how fast
        // a straggler drains once its co-residents have retired. DRAM and
        // issue bandwidth are fluid across the chip, so the kernel can
        // never finish before its longest solo block.
        let t_solo = (p.issue_cycles * issue_mult / arch.warp_schedulers as f64)
            .max(p.mem_transactions as f64 / arch.lsu_per_sm)
            .max(dram_b / dram_rate)
            .max(l2_b / l2_rate)
            .max(t_lat)
            .max(t_uvm)
            + barrier_cost;
        block_solo_times.push(t_solo);
        straggler = straggler.max(t_solo);
    }

    // Phase 4: kernel time = the maximum of all lower bounds.
    // * Slot bound: total steady-state block time over `#SM × B` slots —
    //   exactly Equation 2.
    // * Machine bounds: aggregate DRAM bytes, L2 bytes, issue slots and
    //   LSU transactions can never exceed chip-wide capability, whatever
    //   the residency (keeps underfilled grids honest).
    // * Straggler bound: the longest solo block — the tail effect for
    //   small grids, without over-penalizing underfull final waves where
    //   the fluid DRAM share speeds survivors up.
    let slots = arch.num_sms * blocks_per_sm;
    let total_shared: f64 = block_times.iter().sum();
    let throughput_bound = total_shared / slots as f64;
    let sms = arch.num_sms as f64;
    let dram_bound: f64 =
        profiles.iter().map(|p| mem.dram_bytes(p)).sum::<f64>() / (dram_rate * sms);
    let l2_bound: f64 = profiles.iter().map(|p| mem.l2_bytes(p)).sum::<f64>() / (l2_rate * sms);
    let issue_bound: f64 = profiles.iter().map(|p| p.issue_cycles).sum::<f64>() * issue_mult
        / (arch.warp_schedulers as f64 * sms);
    let lsu_bound: f64 =
        profiles.iter().map(|p| p.mem_transactions).sum::<u64>() as f64 / (arch.lsu_per_sm * sms);
    // Little's law at machine scope: achieved bandwidth is capped by the
    // requests the resident warps keep in flight — the reason a kernel
    // with an unsuitable schedule (few active warps, shallow MLP, low
    // forced occupancy) reads 380 GB/s where a tuned one reads 640 on the
    // same GPU (paper Table II).
    let total_membytes: f64 = profiles
        .iter()
        .map(|p| mem.dram_bytes(p) + mem.l2_bytes(p))
        .sum::<f64>()
        .max(1e-9);
    let weighted_mlp: f64 = profiles
        .iter()
        .map(|p| (mem.dram_bytes(p) + mem.l2_bytes(p)) * p.mlp.max(1.0))
        .sum::<f64>()
        / total_membytes;
    let weighted_active_warps: f64 = profiles
        .iter()
        .map(|p| (mem.dram_bytes(p) + mem.l2_bytes(p)) * p.active_warps.max(1) as f64)
        .sum::<f64>()
        / total_membytes;
    let eff_warps_per_sm = (b_eff * weighted_active_warps)
        .min(occ.warps_per_sm as f64)
        .max(1.0);
    let supply_rate = eff_warps_per_sm * weighted_mlp * arch.sector_bytes as f64 / mem.avg_latency;
    let supply_bound = total_membytes / (supply_rate * sms);
    // UVM traffic crosses the host interconnect, a chip-global channel.
    let host_rate = arch.host_link_gbps / arch.clock_ghz; // bytes per cycle, whole chip
    let uvm_bound: f64 =
        profiles.iter().map(|p| p.uvm_bytes).sum::<u64>() as f64 / host_rate.max(1e-9);
    // Graham's list-scheduling characterization: non-preemptive dispatch
    // lands between the work bound and work + (1 − 1/m)·max. Random-order
    // dispatch tracks the upper form closely, so the straggler term is a
    // real cost every long block imposes on the tail — the cost runtime
    // thread mapping avoids by splitting work finely (Figure 13).
    let tail = (1.0 - 1.0 / slots as f64) * straggler;
    let bounds = BoundBreakdown {
        slot_cycles: throughput_bound + tail,
        dram_cycles: dram_bound,
        l2_cycles: l2_bound,
        issue_cycles: issue_bound,
        lsu_cycles: lsu_bound,
        supply_cycles: supply_bound,
        uvm_cycles: uvm_bound,
        straggler_cycles: straggler,
    };
    let makespan = bounds.makespan();
    let outcome = crate::scheduler::ScheduleOutcome {
        makespan,
        total_block_cycles: total_shared,
        utilization: if makespan > 0.0 {
            (throughput_bound.max(dram_bound)) / makespan
        } else {
            0.0
        },
    };
    let latency_us = arch.cycles_to_us(outcome.makespan) + arch.kernel_launch_us;

    // Phase 5: metrics.
    let time_s = arch.cycles_to_us(outcome.makespan).max(1e-9) * 1e-6;
    let dram_total: f64 = profiles.iter().map(|p| mem.dram_bytes(p)).sum();
    let l2_total: f64 = profiles.iter().map(|p| mem.l2_bytes(p)).sum();
    let trans_total: u64 = profiles.iter().map(|p| p.mem_transactions).sum();
    let active_sum: u64 = profiles.iter().map(|p| p.thread_active_sum).sum();
    let useful_sum: u64 = profiles.iter().map(|p| p.thread_useful_sum).sum();
    let slot_sum: u64 = profiles.iter().map(|p| p.thread_slot_sum).sum();
    let flops: u64 = profiles.iter().map(|p| p.flops).sum();

    let memory_throughput_gbps = dram_total / time_s / 1e9;
    let max_bandwidth_pct = 100.0 * memory_throughput_gbps / arch.dram_bw_gbps;
    let l2_throughput_pct = 100.0 * (l2_total / time_s / 1e9) / arch.l2_bw_gbps;
    let l1_throughput_pct =
        100.0 * trans_total as f64 / (outcome.makespan * arch.num_sms as f64 * arch.lsu_per_sm);
    let memory_busy_pct =
        100.0 * mem_bound_cycles / (slots as f64 * outcome.makespan.max(1e-9)) / b_eff.max(1.0)
            * blocks_per_sm as f64;

    let metrics = KernelMetrics {
        memory_throughput_gbps,
        max_bandwidth_pct: max_bandwidth_pct.min(100.0),
        memory_busy_pct: memory_busy_pct.min(100.0),
        l1_throughput_pct: l1_throughput_pct.min(100.0),
        l2_throughput_pct: l2_throughput_pct.min(100.0),
        avg_active_threads_per_warp: if slot_sum == 0 {
            0.0
        } else {
            32.0 * active_sum as f64 / slot_sum as f64
        },
        avg_not_pred_off_threads_per_warp: if slot_sum == 0 {
            0.0
        } else {
            32.0 * useful_sum as f64 / slot_sum as f64
        },
        achieved_warps_per_sm: occ.warps_per_sm,
        dram_bytes: dram_total,
        l2_bytes: l2_total,
        flops,
    };

    Ok(LaunchReport {
        name: kernel.name().to_string(),
        latency_us,
        makespan_cycles: outcome.makespan,
        block_times,
        block_solo_times,
        occupancy: occ,
        utilization: outcome.utilization,
        metrics,
        bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::UniformKernel;
    use crate::occupancy::BlockResources;

    fn memory_bound_kernel(blocks: u32) -> UniformKernel {
        UniformKernel {
            name: "membound".into(),
            blocks,
            res: BlockResources::new(128, 40, 0),
            profile: BlockProfile {
                issue_cycles: 200.0,
                mem_transactions: 2000,
                bytes_accessed: 64_000,
                unique_bytes: 64_000,
                active_warps: 4,
                thread_active_sum: 64_000,
                thread_useful_sum: 64_000,
                thread_slot_sum: 64_000,
                mlp: 2.0,
                ..Default::default()
            },
        }
    }

    fn latency_bound_kernel(blocks: u32) -> UniformKernel {
        UniformKernel {
            name: "latbound".into(),
            blocks,
            res: BlockResources::new(128, 40, 0),
            profile: BlockProfile {
                issue_cycles: 100.0,
                mem_transactions: 400,
                bytes_accessed: 12_800,
                unique_bytes: 128, // high reuse: everything hits in L2
                active_warps: 4,
                thread_active_sum: 12_800,
                thread_useful_sum: 12_800,
                thread_slot_sum: 12_800,
                mlp: 1.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn launch_reports_all_blocks() {
        let k = memory_bound_kernel(500);
        let r = launch(&k, &GpuArch::v100(), &LaunchConfig::default()).unwrap();
        assert_eq!(r.block_times.len(), 500);
        assert!(r.latency_us > GpuArch::v100().kernel_launch_us);
    }

    #[test]
    fn empty_grid_rejected() {
        let k = memory_bound_kernel(0);
        assert!(matches!(
            launch(&k, &GpuArch::v100(), &LaunchConfig::default()),
            Err(LaunchError::EmptyGrid)
        ));
    }

    #[test]
    fn unlaunchable_rejected() {
        let mut k = memory_bound_kernel(10);
        k.res = BlockResources::new(128, 40, 999_999);
        assert!(matches!(
            launch(&k, &GpuArch::v100(), &LaunchConfig::default()),
            Err(LaunchError::Unlaunchable)
        ));
    }

    #[test]
    fn higher_occupancy_helps_latency_bound_kernels() {
        // A latency-bound kernel gains from more resident blocks (more slots
        // hide the same per-block latency).
        let arch = GpuArch::v100();
        let k = latency_bound_kernel(20_000);
        let low = launch(&k, &arch, &LaunchConfig::with_occupancy(1)).unwrap();
        let high = launch(&k, &arch, &LaunchConfig::with_occupancy(8)).unwrap();
        assert!(
            high.latency_us < low.latency_us * 0.5,
            "high occ {} vs low occ {}",
            high.latency_us,
            low.latency_us
        );
    }

    #[test]
    fn bandwidth_bound_kernels_insensitive_to_occupancy() {
        // A DRAM-saturated kernel cannot gain much from residency.
        let arch = GpuArch::v100();
        let mut k = memory_bound_kernel(20_000);
        // Huge unique working set (all DRAM) and enough memory-level
        // parallelism that latency is hidden even at 2 blocks/SM.
        k.profile.unique_bytes = k.profile.bytes_accessed;
        k.profile.mlp = 16.0;
        let low = launch(&k, &arch, &LaunchConfig::with_occupancy(2)).unwrap();
        let high = launch(&k, &arch, &LaunchConfig::with_occupancy(8)).unwrap();
        let ratio = low.latency_us / high.latency_us;
        assert!(ratio < 1.3, "bandwidth-bound ratio {ratio} should be ~1");
    }

    #[test]
    fn forced_low_occupancy_spills_and_slows_register_hungry_kernels() {
        // Figure 12's cliff: a register-hungry schedule under a tight
        // occupancy target spills and gets slower than its natural launch.
        let arch = GpuArch::v100();
        let mut k = latency_bound_kernel(20_000);
        k.res = BlockResources::new(128, 96, 0);
        let natural = launch(&k, &arch, &LaunchConfig::default()).unwrap();
        let forced = launch(&k, &arch, &LaunchConfig::with_occupancy(16)).unwrap();
        // Forcing 16 blocks/SM with 96 regs/thread requires capping to
        // 65536/(16·128) = 32 regs → 64 spilled.
        assert!(forced.metrics.dram_bytes > natural.metrics.dram_bytes);
    }

    #[test]
    fn l2_pressure_slows_reuse_heavy_kernels() {
        let arch = GpuArch::v100();
        let k = latency_bound_kernel(20_000);
        let alone = launch(&k, &arch, &LaunchConfig::default()).unwrap();
        let crowded = launch(
            &k,
            &arch,
            &LaunchConfig {
                extra_l2_pressure: 512 << 20,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(crowded.latency_us > alone.latency_us);
    }

    #[test]
    fn fn_pointer_dispatch_slows_issue_bound_kernels() {
        let arch = GpuArch::v100();
        let mut k = latency_bound_kernel(20_000);
        k.profile.issue_cycles = 40_000.0; // firmly issue-bound
        let ifelse = launch(&k, &arch, &LaunchConfig::default()).unwrap();
        let fnptr = launch(
            &k,
            &arch,
            &LaunchConfig {
                issue_multiplier: 1.45,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(fnptr.latency_us > ifelse.latency_us * 1.2);
    }

    #[test]
    fn metrics_are_bounded() {
        let k = memory_bound_kernel(5000);
        let r = launch(&k, &GpuArch::v100(), &LaunchConfig::default()).unwrap();
        let m = &r.metrics;
        assert!(m.max_bandwidth_pct > 0.0 && m.max_bandwidth_pct <= 100.0);
        assert!(m.l2_throughput_pct >= 0.0 && m.l2_throughput_pct <= 100.0);
        assert!(m.avg_active_threads_per_warp > 0.0 && m.avg_active_threads_per_warp <= 32.0);
        assert!(m.avg_not_pred_off_threads_per_warp <= m.avg_active_threads_per_warp);
    }

    #[test]
    fn block_time_sum_matches_ranges() {
        let k = memory_bound_kernel(100);
        let r = launch(&k, &GpuArch::v100(), &LaunchConfig::default()).unwrap();
        let total: f64 = r.block_times.iter().sum();
        let split = r.block_time_sum(0..40) + r.block_time_sum(40..100);
        assert!((total - split).abs() < 1e-9);
    }

    #[test]
    fn determinism() {
        let k = memory_bound_kernel(1234);
        let arch = GpuArch::a100();
        let a = launch(&k, &arch, &LaunchConfig::default()).unwrap();
        let b = launch(&k, &arch, &LaunchConfig::default()).unwrap();
        assert_eq!(a.latency_us, b.latency_us);
        assert_eq!(a.block_times, b.block_times);
    }

    #[test]
    fn a100_faster_than_v100_for_bandwidth_bound() {
        let k = memory_bound_kernel(20_000);
        let v = launch(&k, &GpuArch::v100(), &LaunchConfig::default()).unwrap();
        let a = launch(&k, &GpuArch::a100(), &LaunchConfig::default()).unwrap();
        assert!(a.latency_us < v.latency_us);
    }
}

#[cfg(test)]
mod bound_tests {
    use super::*;
    use crate::kernel::UniformKernel;
    use crate::occupancy::BlockResources;

    #[test]
    fn breakdown_is_consistent_with_makespan() {
        let k = UniformKernel {
            name: "b".into(),
            blocks: 3000,
            res: BlockResources::new(128, 40, 0),
            profile: BlockProfile {
                issue_cycles: 300.0,
                mem_transactions: 900,
                bytes_accessed: 28_800,
                unique_bytes: 28_800,
                active_warps: 4,
                thread_active_sum: 28_800,
                thread_useful_sum: 28_800,
                thread_slot_sum: 28_800,
                mlp: 4.0,
                ..Default::default()
            },
        };
        let r = launch(&k, &GpuArch::v100(), &LaunchConfig::default()).unwrap();
        assert_eq!(r.bounds.makespan(), r.makespan_cycles);
        assert!(!r.bounds.binding().is_empty());
        // Every component is a genuine lower bound.
        for b in [
            r.bounds.dram_cycles,
            r.bounds.l2_cycles,
            r.bounds.issue_cycles,
            r.bounds.lsu_cycles,
            r.bounds.supply_cycles,
        ] {
            assert!(b <= r.makespan_cycles + 1e-9);
        }
    }

    #[test]
    fn memory_bound_kernel_reports_memory_binding() {
        let k = UniformKernel {
            name: "m".into(),
            blocks: 20_000,
            res: BlockResources::new(128, 40, 0),
            profile: BlockProfile {
                issue_cycles: 10.0,
                mem_transactions: 4000,
                bytes_accessed: 128_000,
                unique_bytes: 128_000,
                active_warps: 4,
                thread_active_sum: 1,
                thread_useful_sum: 1,
                thread_slot_sum: 1,
                mlp: 8.0,
                critical_mem_chain: 100,
                ..Default::default()
            },
        };
        let r = launch(&k, &GpuArch::v100(), &LaunchConfig::default()).unwrap();
        let binding = r.bounds.binding();
        assert!(
            binding == "dram" || binding == "supply" || binding == "slots+tail",
            "unexpected binding {binding}"
        );
        assert_ne!(binding, "issue");
    }
}
