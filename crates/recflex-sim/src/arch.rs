//! GPU architecture descriptors.
//!
//! The datacenter presets ([`GpuArch::v100`], [`GpuArch::a100`]) mirror the
//! testbed of the paper's evaluation (Section VI-A); [`GpuArch::edge`] adds
//! a small T4-class inference part for the heterogeneous fleet pool. All
//! parameters come from public NVIDIA documentation; they feed the occupancy
//! calculator and the timing model and are the only place hardware numbers
//! appear.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
///
/// All throughput-style quantities are normalized to *per SM, per cycle*
/// inside the timing model; this struct keeps the familiar datasheet units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuArch {
    /// Human-readable name, e.g. `"V100"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every NVIDIA GPU to date).
    pub warp_size: u32,
    /// Hardware limit of resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Hardware limit of resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Architectural cap of registers per thread.
    pub max_regs_per_thread: u32,
    /// Register allocation granularity (registers are allocated per warp in
    /// multiples of this many registers).
    pub reg_alloc_granularity: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Shared-memory allocation granularity in bytes.
    pub smem_alloc_granularity: u32,
    /// SM core clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Peak L2 bandwidth in GB/s.
    pub l2_bw_gbps: f64,
    /// Average DRAM access latency in cycles.
    pub dram_latency: f64,
    /// Average L2 hit latency in cycles.
    pub l2_latency: f64,
    /// L2 cache capacity in bytes.
    pub l2_size: u64,
    /// Memory transaction (sector) size in bytes.
    pub sector_bytes: u32,
    /// Warp schedulers per SM (instructions issued per cycle per SM).
    pub warp_schedulers: u32,
    /// Warp-wide load/store instructions retired per cycle per SM.
    pub lsu_per_sm: f64,
    /// Fixed host-side cost of launching one kernel, in microseconds.
    pub kernel_launch_us: f64,
    /// Cost of one `__syncthreads()` barrier in cycles.
    pub barrier_cycles: f64,
    /// Host↔device interconnect bandwidth in GB/s (PCIe/NVLink), the
    /// channel UVM-resident embedding rows travel over.
    pub host_link_gbps: f64,
    /// Average latency of a UVM page access in cycles (page fault +
    /// interconnect round trip amortized over warm pages).
    pub uvm_latency: f64,
}

impl GpuArch {
    /// NVIDIA Tesla V100-SXM2 (Volta, 80 SMs, 900 GB/s HBM2, 6 MiB L2).
    pub fn v100() -> Self {
        GpuArch {
            name: "V100".to_string(),
            num_sms: 80,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            reg_alloc_granularity: 256,
            smem_per_sm: 96 * 1024,
            smem_alloc_granularity: 256,
            clock_ghz: 1.38,
            dram_bw_gbps: 900.0,
            l2_bw_gbps: 2500.0,
            dram_latency: 440.0,
            l2_latency: 200.0,
            l2_size: 6 * 1024 * 1024,
            sector_bytes: 32,
            warp_schedulers: 4,
            lsu_per_sm: 4.0,
            kernel_launch_us: 4.0,
            barrier_cycles: 30.0,
            host_link_gbps: 16.0, // PCIe 3.0 x16
            uvm_latency: 2200.0,
        }
    }

    /// NVIDIA A100-SXM4-40GB (Ampere, 108 SMs, 1555 GB/s HBM2e, 40 MiB L2).
    pub fn a100() -> Self {
        GpuArch {
            name: "A100".to_string(),
            num_sms: 108,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            reg_alloc_granularity: 256,
            smem_per_sm: 164 * 1024,
            smem_alloc_granularity: 128,
            clock_ghz: 1.41,
            dram_bw_gbps: 1555.0,
            l2_bw_gbps: 4500.0,
            dram_latency: 480.0,
            l2_latency: 210.0,
            l2_size: 40 * 1024 * 1024,
            sector_bytes: 32,
            warp_schedulers: 4,
            lsu_per_sm: 4.0,
            kernel_launch_us: 4.0,
            barrier_cycles: 30.0,
            host_link_gbps: 32.0, // PCIe 4.0 x16
            uvm_latency: 2000.0,
        }
    }

    /// A small edge-class inference accelerator (T4-like: 40 SMs,
    /// 320 GB/s GDDR6, 4 MiB L2, PCIe 3.0 x8). The third device class of
    /// the fleet pool: far less bandwidth and cache than the datacenter
    /// parts, so memory-bound profiles (many multi-hot lookups, large
    /// concat widths) lose badly here while small compute-light models
    /// fit fine — exactly the contrast the heterogeneity-aware placer
    /// exploits.
    pub fn edge() -> Self {
        GpuArch {
            name: "Edge".to_string(),
            num_sms: 40,
            warp_size: 32,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 16,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            reg_alloc_granularity: 256,
            smem_per_sm: 64 * 1024,
            smem_alloc_granularity: 256,
            clock_ghz: 1.0,
            dram_bw_gbps: 320.0,
            l2_bw_gbps: 1200.0,
            dram_latency: 400.0,
            l2_latency: 190.0,
            l2_size: 4 * 1024 * 1024,
            sector_bytes: 32,
            warp_schedulers: 4,
            lsu_per_sm: 4.0,
            kernel_launch_us: 6.0,
            barrier_cycles: 30.0,
            host_link_gbps: 8.0, // PCIe 3.0 x8
            uvm_latency: 2600.0,
        }
    }

    /// Peak DRAM bytes transferred per SM per core cycle.
    pub fn dram_bytes_per_sm_cycle(&self) -> f64 {
        self.dram_bw_gbps / (self.clock_ghz * self.num_sms as f64)
    }

    /// Peak L2 bytes served per SM per core cycle.
    pub fn l2_bytes_per_sm_cycle(&self) -> f64 {
        self.l2_bw_gbps / (self.clock_ghz * self.num_sms as f64)
    }

    /// Convert a cycle count into microseconds on this architecture.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }

    /// The occupancy-target candidates (resident blocks per SM) the tuner
    /// enumerates — the `O_1..O_K` of the paper's two-stage procedure. The
    /// paper notes "the count is often less than ten"; these eight levels
    /// cover the achievable range for 64..256-thread blocks.
    pub fn occupancy_levels(&self) -> Vec<u32> {
        [1u32, 2, 3, 4, 6, 8, 12, 16]
            .into_iter()
            .filter(|&b| b <= self.max_blocks_per_sm)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_datasheet_sanity() {
        let g = GpuArch::v100();
        assert_eq!(g.num_sms, 80);
        assert_eq!(g.max_warps_per_sm * g.warp_size, 2048);
        // 900 GB/s over 80 SMs at 1.38 GHz is ~8.15 B/SM/cycle.
        let b = g.dram_bytes_per_sm_cycle();
        assert!((b - 8.15).abs() < 0.05, "got {b}");
    }

    #[test]
    fn a100_has_more_bandwidth_and_l2() {
        let (v, a) = (GpuArch::v100(), GpuArch::a100());
        assert!(a.dram_bw_gbps > v.dram_bw_gbps);
        assert!(a.l2_size > v.l2_size);
        assert!(a.num_sms > v.num_sms);
    }

    #[test]
    fn edge_is_the_small_class() {
        let (e, v) = (GpuArch::edge(), GpuArch::v100());
        assert!(e.dram_bw_gbps < v.dram_bw_gbps);
        assert!(e.num_sms < v.num_sms);
        assert!(e.l2_size < v.l2_size);
        assert!(e.host_link_gbps < v.host_link_gbps);
        // Launch overhead and UVM latency are *worse* on the edge part —
        // it punishes chatty schedules, not just wide ones.
        assert!(e.kernel_launch_us > v.kernel_launch_us);
        assert!(e.uvm_latency > v.uvm_latency);
        // Occupancy enumeration still yields a sane, bounded ladder.
        let levels = e.occupancy_levels();
        assert!(!levels.is_empty());
        assert!(levels.iter().all(|&l| l <= e.max_blocks_per_sm));
    }

    #[test]
    fn cycle_conversion_roundtrip() {
        let g = GpuArch::v100();
        // 1380 cycles at 1.38 GHz is exactly 1 us.
        assert!((g.cycles_to_us(1380.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_levels_bounded_and_sorted() {
        let g = GpuArch::v100();
        let levels = g.occupancy_levels();
        assert!(!levels.is_empty() && levels.len() < 10);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert!(levels.iter().all(|&l| l >= 1 && l <= g.max_blocks_per_sm));
    }
}
