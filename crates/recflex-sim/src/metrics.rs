//! Nsight-Compute-like kernel metrics (paper Table II).
//!
//! The launch pipeline aggregates the analytic counters of all blocks into
//! the same metrics the paper reports with Nsight Compute, so the Table II
//! comparison (RecFlex vs TorchRec memory and thread utilization) can be
//! regenerated from the model.

use serde::{Deserialize, Serialize};

/// Aggregated metrics of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Achieved DRAM throughput in GB/s ("Memory Throughput").
    pub memory_throughput_gbps: f64,
    /// DRAM bytes moved / (peak bandwidth × kernel time), in percent
    /// ("Max Bandwidth (%)").
    pub max_bandwidth_pct: f64,
    /// Fraction of kernel time the memory pipeline is busy, in percent
    /// ("Memory Busy (%)"): max of DRAM and L2 busy fractions scaled by the
    /// LSU issue pressure.
    pub memory_busy_pct: f64,
    /// L1/TEX pipeline throughput as % of peak (approximated by the
    /// warp-transaction issue rate vs the LSU peak).
    pub l1_throughput_pct: f64,
    /// L2 throughput as % of peak L2 bandwidth.
    pub l2_throughput_pct: f64,
    /// Average active threads per warp-instruction ("Avg. Active Threads
    /// Per Warp", 32 = no divergence).
    pub avg_active_threads_per_warp: f64,
    /// Average threads not predicated off per warp-instruction.
    pub avg_not_pred_off_threads_per_warp: f64,
    /// Achieved occupancy: resident warps per SM used by the launch.
    pub achieved_warps_per_sm: u32,
    /// Total DRAM bytes moved.
    pub dram_bytes: f64,
    /// Total bytes served from L2.
    pub l2_bytes: f64,
    /// Total floating-point operations.
    pub flops: u64,
}

impl KernelMetrics {
    /// Render the Table II rows for this launch.
    pub fn table_rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("Memory Throughput (GB/s)", self.memory_throughput_gbps),
            ("Memory Busy (%)", self.memory_busy_pct),
            ("Max Bandwidth (%)", self.max_bandwidth_pct),
            ("L1 Cache Throughput (%)", self.l1_throughput_pct),
            ("L2 Cache Throughput (%)", self.l2_throughput_pct),
            (
                "Avg. Active Threads Per Warp",
                self.avg_active_threads_per_warp,
            ),
            (
                "Avg. Not Predicted Off Threads per Warp",
                self.avg_not_pred_off_threads_per_warp,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_cover_table2() {
        let m = KernelMetrics::default();
        let rows = m.table_rows();
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().any(|(n, _)| n.contains("Memory Throughput")));
        assert!(rows.iter().any(|(n, _)| n.contains("Not Predicted Off")));
    }
}
