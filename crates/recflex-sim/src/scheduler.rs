//! Non-preemptive block scheduling.
//!
//! The GPU work distributor dispatches thread blocks in grid order to SMs;
//! once resident, a block runs to completion and its slot is immediately
//! refilled (paper Figure 5). That is classic list scheduling onto
//! `#SM × blocks_per_SM` identical slots, implemented here with a binary
//! heap of slot free-times. For large grids the makespan converges to
//! `Σ l_b / slots` (the paper's Equation 2); for small grids the tail
//! effect appears naturally.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ordered float wrapper so block end-times can live in a `BinaryHeap`.
/// Block times are finite non-negative model outputs, so total ordering via
/// `total_cmp` is safe.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Outcome of scheduling one grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Wall-clock cycles from first dispatch to last block retirement.
    pub makespan: f64,
    /// Σ of all block times (the numerator of Equation 2).
    pub total_block_cycles: f64,
    /// Average slot utilization in `[0, 1]`: total work / (slots × makespan).
    pub utilization: f64,
}

/// List-schedule `block_times` (cycles) onto `slots` identical execution
/// slots, dispatching in index order, and return the makespan.
///
/// `slots` is `#SM × blocks_per_SM` for a real launch. Panics if `slots`
/// is zero (an unlaunchable kernel must be rejected before scheduling).
pub fn schedule_blocks(block_times: &[f64], slots: u32) -> ScheduleOutcome {
    assert!(slots > 0, "cannot schedule onto zero slots");
    let total: f64 = block_times.iter().sum();
    if block_times.is_empty() {
        return ScheduleOutcome {
            makespan: 0.0,
            total_block_cycles: 0.0,
            utilization: 0.0,
        };
    }

    let slots = slots as usize;
    if block_times.len() <= slots {
        // Everything runs immediately in parallel.
        let makespan = block_times.iter().copied().fold(0.0f64, f64::max);
        let utilization = if makespan > 0.0 {
            total / (slots as f64 * makespan)
        } else {
            0.0
        };
        return ScheduleOutcome {
            makespan,
            total_block_cycles: total,
            utilization,
        };
    }

    // Min-heap of slot free times; dispatch each block to the earliest
    // free slot, in grid order — exactly the hardware's refill policy.
    let mut heap: BinaryHeap<Reverse<Time>> = (0..slots).map(|_| Reverse(Time(0.0))).collect();
    let mut makespan = 0.0f64;
    for &t in block_times {
        let Reverse(Time(free)) = heap.pop().expect("heap sized to slots");
        let end = free + t;
        makespan = makespan.max(end);
        heap.push(Reverse(Time(end)));
    }
    let utilization = if makespan > 0.0 {
        total / (slots as f64 * makespan)
    } else {
        0.0
    };
    ScheduleOutcome {
        makespan,
        total_block_cycles: total,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_blocks_than_slots_is_max() {
        let out = schedule_blocks(&[10.0, 20.0, 5.0], 8);
        assert_eq!(out.makespan, 20.0);
    }

    #[test]
    fn uniform_blocks_divide_evenly() {
        let times = vec![10.0; 100];
        let out = schedule_blocks(&times, 10);
        assert!((out.makespan - 100.0).abs() < 1e-9);
        assert!((out.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_lower_bounds() {
        // makespan ≥ total/slots and ≥ max block time.
        let times: Vec<f64> = (1..=57).map(|i| (i % 13 + 1) as f64).collect();
        let slots = 7;
        let out = schedule_blocks(&times, slots);
        let total: f64 = times.iter().sum();
        let maxb = times.iter().copied().fold(0.0f64, f64::max);
        assert!(out.makespan >= total / slots as f64 - 1e-9);
        assert!(out.makespan >= maxb - 1e-9);
        // Greedy list scheduling is within 2× of the lower bound.
        assert!(out.makespan <= total / slots as f64 + maxb + 1e-9);
    }

    #[test]
    fn equation2_convergence_for_large_grids() {
        // With many equal-ish blocks, makespan ≈ Σ l_b / slots (Eq. 2).
        let times: Vec<f64> = (0..10_000).map(|i| 50.0 + (i % 10) as f64).collect();
        let slots = 160;
        let out = schedule_blocks(&times, slots);
        let eq2 = out.total_block_cycles / slots as f64;
        let rel = (out.makespan - eq2).abs() / eq2;
        assert!(rel < 0.01, "relative gap {rel} too large");
    }

    #[test]
    fn tail_effect_for_small_grids() {
        // 161 equal blocks on 160 slots: one straggler doubles the makespan
        // relative to Eq. 2's prediction — the tail effect.
        let times = vec![100.0; 161];
        let out = schedule_blocks(&times, 160);
        assert!((out.makespan - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_grid() {
        let out = schedule_blocks(&[], 10);
        assert_eq!(out.makespan, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero slots")]
    fn zero_slots_panics() {
        schedule_blocks(&[1.0], 0);
    }

    #[test]
    fn deterministic() {
        let times: Vec<f64> = (0..997).map(|i| ((i * 7919) % 101) as f64 + 1.0).collect();
        let a = schedule_blocks(&times, 13);
        let b = schedule_blocks(&times, 13);
        assert_eq!(a, b);
    }
}
