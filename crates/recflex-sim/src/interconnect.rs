//! Device-to-device interconnect model.
//!
//! A multi-GPU embedding stage ends with a collective: every device holds
//! the pooled outputs of its own features and the concatenated vector must
//! be materialized for the DNN (TorchRec's all-to-all / all-gather
//! exchange). The simulator models the link the way it models DRAM — a
//! fixed software/launch latency plus a bandwidth term — so a sharded
//! latency estimate stays a pure function of bytes moved.

/// A point-to-point or collective interconnect between devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    /// Sustained per-direction link bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Fixed per-collective software + wire latency, µs (kernel launch,
    /// synchronization, first-byte time).
    pub base_latency_us: f64,
}

impl Interconnect {
    /// NVLink-class link (NVLink 2.0 sustained ~120 GB/s per direction).
    pub fn nvlink() -> Self {
        Interconnect {
            bandwidth_gbps: 120.0,
            base_latency_us: 5.0,
        }
    }

    /// PCIe 3.0 x16-class link (~12 GB/s sustained).
    pub fn pcie() -> Self {
        Interconnect {
            bandwidth_gbps: 12.0,
            base_latency_us: 10.0,
        }
    }

    /// An infinitely fast link — gathers cost nothing. Useful for isolating
    /// compute effects in ablations and for single-device parity tests.
    pub fn ideal() -> Self {
        Interconnect {
            bandwidth_gbps: f64::INFINITY,
            base_latency_us: 0.0,
        }
    }

    /// Look up a preset by name (`nvlink`, `pcie`, `ideal`), case
    /// insensitively. `None` for anything else — callers surface the
    /// valid set in their own error message.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "nvlink" => Some(Interconnect::nvlink()),
            "pcie" => Some(Interconnect::pcie()),
            "ideal" => Some(Interconnect::ideal()),
            _ => None,
        }
    }

    /// The same link with its bandwidth cut by `factor` (≥ 1): a
    /// congested or partially-failed fabric. A factor of exactly 1
    /// returns the link unchanged, bit-for-bit (`x / 1.0 == x` in IEEE
    /// arithmetic), so the healthy path never pays for the knob.
    pub fn degrade(&self, factor: f64) -> Self {
        Interconnect {
            bandwidth_gbps: self.bandwidth_gbps / factor.max(1.0),
            base_latency_us: self.base_latency_us,
        }
    }

    /// Time to move `bytes` over the link once, µs.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.base_latency_us + bytes as f64 / (self.bandwidth_gbps * 1e9) * 1e6
    }

    /// Time for an all-gather of `total_bytes` of pooled output spread
    /// across `num_devices`, µs. With one (or zero) devices there is
    /// nothing to exchange and the cost is exactly zero — a 1-shard
    /// deployment must reproduce single-device latencies bit-for-bit.
    ///
    /// Ring all-gather moves `(n-1)/n` of the total payload through every
    /// link in parallel, so the bandwidth term scales with the slice each
    /// device must receive, not with the device count.
    pub fn all_gather_us(&self, total_bytes: u64, num_devices: usize) -> f64 {
        if num_devices <= 1 || total_bytes == 0 {
            return 0.0;
        }
        let n = num_devices as f64;
        let wire_bytes = total_bytes as f64 * (n - 1.0) / n;
        self.base_latency_us + wire_bytes / (self.bandwidth_gbps * 1e9) * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_gather_is_free() {
        let link = Interconnect::nvlink();
        assert_eq!(link.all_gather_us(1 << 20, 1), 0.0);
        assert_eq!(link.all_gather_us(0, 8), 0.0);
    }

    #[test]
    fn gather_cost_grows_with_bytes_and_devices() {
        let link = Interconnect::nvlink();
        let small = link.all_gather_us(1 << 10, 2);
        let big = link.all_gather_us(1 << 24, 2);
        assert!(big > small, "more bytes, more time");
        let two = link.all_gather_us(1 << 24, 2);
        let eight = link.all_gather_us(1 << 24, 8);
        assert!(eight > two, "larger rings move a larger slice share");
    }

    #[test]
    fn slower_link_costs_more() {
        let bytes = 4 << 20;
        assert!(
            Interconnect::pcie().all_gather_us(bytes, 4)
                > Interconnect::nvlink().all_gather_us(bytes, 4)
        );
    }

    #[test]
    fn ideal_link_is_free() {
        assert_eq!(Interconnect::ideal().all_gather_us(1 << 30, 8), 0.0);
        assert_eq!(Interconnect::ideal().transfer_us(1 << 30), 0.0);
    }

    #[test]
    fn presets_resolve_by_name_case_insensitively() {
        assert_eq!(
            Interconnect::by_name("nvlink"),
            Some(Interconnect::nvlink())
        );
        assert_eq!(Interconnect::by_name("PCIe"), Some(Interconnect::pcie()));
        assert_eq!(Interconnect::by_name("IDEAL"), Some(Interconnect::ideal()));
        assert_eq!(Interconnect::by_name("infiniband"), None);
    }

    #[test]
    fn degrade_cuts_bandwidth_and_identity_is_exact() {
        let link = Interconnect::nvlink();
        let cut = link.degrade(4.0);
        assert_eq!(cut.bandwidth_gbps, 30.0);
        assert_eq!(cut.base_latency_us, link.base_latency_us);
        assert!(cut.all_gather_us(4 << 20, 4) > link.all_gather_us(4 << 20, 4));
        // Bit-for-bit identity at factor 1 (and sub-1 factors clamp up).
        assert_eq!(link.degrade(1.0), link);
        assert_eq!(link.degrade(0.5), link);
    }

    #[test]
    fn transfer_includes_base_latency() {
        let link = Interconnect {
            bandwidth_gbps: 100.0,
            base_latency_us: 7.0,
        };
        // 1e8 bytes at 100 GB/s = 1000 µs on the wire.
        assert!((link.transfer_us(100_000_000) - 1007.0).abs() < 1e-9);
    }
}
