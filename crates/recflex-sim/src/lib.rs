//! # recflex-sim — deterministic analytical GPU performance simulator
//!
//! This crate is the hardware substrate of the RecFlex reproduction. The paper
//! evaluates on NVIDIA V100/A100 GPUs; here the same machine model the paper
//! reasons with (Section IV-A, Equation 2) is implemented explicitly:
//!
//! * an **occupancy calculator** identical in structure to the CUDA occupancy
//!   rules (warp, block, register and shared-memory limits per SM),
//! * a **non-preemptive block scheduler**: blocks are dispatched in grid order
//!   to the earliest-free slot among `#SM × blocks_per_SM` slots and run to
//!   completion, which makes the paper's approximation
//!   `L ≈ Σ_b l_b / (#SM · O / W)` emerge naturally for large grids while
//!   still modelling the tail effect for small ones,
//! * a **memory system model**: DRAM bandwidth shared between co-resident
//!   blocks, memory latency hidden proportionally to resident warps and
//!   per-warp memory-level parallelism, and an L2 working-set model that
//!   captures grid-level interference between features,
//! * a **register-spill model**: capping registers below a kernel's natural
//!   demand converts the overflow into extra DRAM traffic (the cliff visible
//!   in the paper's Figure 12),
//! * **Nsight-Compute-like metrics** (memory throughput, % of peak bandwidth,
//!   L2 throughput, average active / not-predicated-off threads per warp) for
//!   reproducing Table II.
//!
//! Everything is cycle-analytic and fully deterministic: the same kernel and
//! architecture always produce the same latency, which makes the tuning
//! experiments reproducible bit-for-bit.

pub mod arch;
pub mod interconnect;
pub mod kernel;
pub mod launch;
pub mod memory;
pub mod metrics;
pub mod occupancy;
pub mod profile;
pub mod scheduler;

pub use arch::GpuArch;
pub use interconnect::Interconnect;
pub use kernel::{ProfileCtx, SimKernel};
pub use launch::{launch, LaunchConfig, LaunchReport};
pub use memory::MemorySystem;
pub use metrics::KernelMetrics;
pub use occupancy::{BlockResources, Occupancy};
pub use profile::BlockProfile;
