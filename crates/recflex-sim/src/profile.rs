//! Per-block demand profiles.
//!
//! A [`BlockProfile`] is the analytic summary of everything one thread block
//! does: instruction issue slots, memory transactions and bytes, divergence
//! counters and barriers. Schedules produce profiles from the CSR workload
//! without touching embedding-table data, so profiling a million-block grid
//! is cheap; the launch pipeline turns profiles into block times.

use serde::{Deserialize, Serialize};

/// Analytic execution demands of a single thread block.
///
/// All counters are *demands*, independent of occupancy and contention; the
/// timing model in [`mod@crate::launch`] converts them into cycles given the
/// launch environment.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockProfile {
    /// Warp-instruction issue slots consumed by the block (sum over warps of
    /// their dynamic instruction counts).
    pub issue_cycles: f64,
    /// Warp-level memory transactions (32-byte sectors requested).
    pub mem_transactions: u64,
    /// Total bytes requested from the memory hierarchy (L2 + DRAM).
    pub bytes_accessed: u64,
    /// First-touch distinct bytes (`≤ bytes_accessed`); the remainder is
    /// reuse that may hit in L2 depending on grid-level cache pressure.
    pub unique_bytes: u64,
    /// Bytes written back (pooled outputs, spill stores).
    pub bytes_written: u64,
    /// Warps in this block that have any work assigned.
    pub active_warps: u32,
    /// Σ over warp-iterations of active threads (numerator of the
    /// "Avg. Active Threads Per Warp" Nsight metric).
    pub thread_active_sum: u64,
    /// Σ over warp-iterations of threads doing *useful*, non-predicated
    /// work (numerator of "Avg. Not Predicted Off Threads per Warp").
    pub thread_useful_sum: u64,
    /// Σ over warp-iterations of the full warp width (denominator of both
    /// thread-utilization metrics: `32 × warp_iterations`).
    pub thread_slot_sum: u64,
    /// `__syncthreads()` barriers executed.
    pub barriers: u32,
    /// Floating-point operations (pooling adds, GEMM FMAs).
    pub flops: u64,
    /// Memory-level parallelism per warp: average outstanding memory
    /// requests one warp sustains (raised by unrolling/vectorization).
    pub mlp: f64,
    /// The block's critical memory chain: the *maximum* over its warps of
    /// dependent memory instructions issued serially. A block finishes no
    /// earlier than its slowest warp, so intra-block imbalance (one heavy
    /// sample in a warp-per-sample mapping) lengthens this chain even when
    /// average traffic is low. Zero means "uniform", in which case the
    /// timing model falls back to `mem_transactions / active_warps`.
    pub critical_mem_chain: u64,
    /// Bytes served from host memory over the interconnect (UVM-resident
    /// table rows that missed the GPU's hot cache). Disjoint from
    /// `bytes_accessed`.
    pub uvm_bytes: u64,
    /// Warp-level transactions against UVM pages.
    pub uvm_transactions: u64,
}

impl BlockProfile {
    /// An empty (idle) block — used for over-allocated static thread
    /// mappings where a block finds no work at runtime.
    pub fn idle() -> Self {
        BlockProfile {
            issue_cycles: 8.0,
            mlp: 1.0,
            active_warps: 0,
            ..Default::default()
        }
    }

    /// Whether this block performs no memory work.
    pub fn is_idle(&self) -> bool {
        self.mem_transactions == 0 && self.flops == 0
    }

    /// Accumulate another profile into this one (used when one physical
    /// block executes several logical blocks' work sequentially, as in the
    /// under-provisioned static thread mapping of the Figure 13 ablation).
    pub fn accumulate(&mut self, other: &BlockProfile) {
        self.issue_cycles += other.issue_cycles;
        self.mem_transactions += other.mem_transactions;
        self.bytes_accessed += other.bytes_accessed;
        self.unique_bytes += other.unique_bytes;
        self.bytes_written += other.bytes_written;
        self.active_warps = self.active_warps.max(other.active_warps);
        self.thread_active_sum += other.thread_active_sum;
        self.thread_useful_sum += other.thread_useful_sum;
        self.thread_slot_sum += other.thread_slot_sum;
        self.barriers += other.barriers;
        self.flops += other.flops;
        // Serial execution of another logical block extends the chain.
        self.critical_mem_chain += other.critical_mem_chain;
        self.uvm_bytes += other.uvm_bytes;
        self.uvm_transactions += other.uvm_transactions;
        // MLP is a rate, keep the work-weighted blend.
        let (a, b) = (self.mem_transactions as f64, other.mem_transactions as f64);
        if a + b > 0.0 {
            self.mlp = (self.mlp * a + other.mlp * b) / (a + b);
        }
    }

    /// Merge a *concurrently executing* sibling into this profile (warps of
    /// one block running different features under warp-granularity
    /// mapping): traffic and issue sum, the latency chain is the slowest
    /// sibling's, and active warps add up.
    pub fn merge_concurrent(&mut self, other: &BlockProfile) {
        self.issue_cycles += other.issue_cycles;
        self.mem_transactions += other.mem_transactions;
        self.bytes_accessed += other.bytes_accessed;
        self.unique_bytes += other.unique_bytes;
        self.bytes_written += other.bytes_written;
        self.active_warps += other.active_warps;
        self.thread_active_sum += other.thread_active_sum;
        self.thread_useful_sum += other.thread_useful_sum;
        self.thread_slot_sum += other.thread_slot_sum;
        self.barriers = self.barriers.max(other.barriers);
        self.flops += other.flops;
        self.critical_mem_chain = self.critical_mem_chain.max(other.critical_mem_chain);
        self.uvm_bytes += other.uvm_bytes;
        self.uvm_transactions += other.uvm_transactions;
        let (a, b) = (self.mem_transactions as f64, other.mem_transactions as f64);
        if a + b > 0.0 {
            self.mlp = (self.mlp * a + other.mlp * b) / (a + b);
        }
    }

    /// Add register-spill traffic: `spilled` registers per thread across
    /// `threads` threads, each cycled `rounds` times through the main loop.
    /// Each spilled register costs one store and one reload of 4 bytes to
    /// local memory (which lives in DRAM), plus the issue slots for them.
    pub fn add_spill(&mut self, spilled: u32, threads: u32, rounds: u64) {
        if spilled == 0 || threads == 0 || rounds == 0 {
            return;
        }
        let accesses = spilled as u64 * rounds; // per thread: store+load pairs
        let warps = threads.div_ceil(32) as u64;
        // Local memory is interleaved so a warp-wide spill access is one
        // coalesced transaction per register.
        self.mem_transactions += 2 * accesses * warps;
        // Spill reloads sit on the dependence chain of every warp.
        self.critical_mem_chain += 2 * accesses;
        let bytes = 2 * accesses * threads as u64 * 4;
        self.bytes_accessed += bytes;
        self.bytes_written += accesses * threads as u64 * 4;
        // Spill slots are unique per thread: all of it is DRAM traffic.
        self.unique_bytes += bytes;
        self.issue_cycles += (2 * accesses * warps) as f64;
    }

    /// Demote `cold_frac` of this block's table traffic to the UVM channel
    /// (host-resident rows that missed the GPU hot cache). Traffic moves,
    /// it is not duplicated.
    pub fn demote_to_uvm(&mut self, cold_frac: f64) {
        let f = cold_frac.clamp(0.0, 1.0);
        if f == 0.0 {
            return;
        }
        let cold_bytes = (self.bytes_accessed as f64 * f) as u64;
        let cold_trans = (self.mem_transactions as f64 * f) as u64;
        self.uvm_bytes += cold_bytes;
        self.uvm_transactions += cold_trans;
        self.bytes_accessed -= cold_bytes.min(self.bytes_accessed);
        self.unique_bytes = self.unique_bytes.min(self.bytes_accessed);
        self.mem_transactions -= cold_trans.min(self.mem_transactions);
    }

    /// Average active threads per warp, the Table II divergence metric.
    pub fn avg_active_threads_per_warp(&self) -> f64 {
        if self.thread_slot_sum == 0 {
            0.0
        } else {
            32.0 * self.thread_active_sum as f64 / self.thread_slot_sum as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BlockProfile {
        BlockProfile {
            issue_cycles: 100.0,
            mem_transactions: 40,
            bytes_accessed: 1280,
            unique_bytes: 640,
            bytes_written: 128,
            active_warps: 4,
            thread_active_sum: 1000,
            thread_useful_sum: 900,
            thread_slot_sum: 1280,
            barriers: 2,
            flops: 512,
            mlp: 2.0,
            critical_mem_chain: 10,
            uvm_bytes: 0,
            uvm_transactions: 0,
        }
    }

    #[test]
    fn idle_block_is_idle() {
        assert!(BlockProfile::idle().is_idle());
        assert!(!sample().is_idle());
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut a = sample();
        a.accumulate(&sample());
        assert_eq!(a.mem_transactions, 80);
        assert_eq!(a.bytes_accessed, 2560);
        assert_eq!(a.barriers, 4);
        assert_eq!(a.active_warps, 4, "active warps is a max, not a sum");
        assert!((a.mlp - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spill_adds_dram_traffic_and_issue() {
        let mut p = sample();
        let before = p;
        p.add_spill(8, 128, 10);
        assert!(p.bytes_accessed > before.bytes_accessed);
        assert!(p.unique_bytes > before.unique_bytes);
        assert!(p.mem_transactions > before.mem_transactions);
        assert!(p.issue_cycles > before.issue_cycles);
        // 8 regs × 10 rounds × 128 threads × 4B × 2 (store+load) = 81920 B.
        assert_eq!(p.bytes_accessed - before.bytes_accessed, 81920);
    }

    #[test]
    fn spill_of_zero_is_noop() {
        let mut p = sample();
        let before = p;
        p.add_spill(0, 128, 10);
        assert_eq!(p, before);
    }

    #[test]
    fn divergence_metric() {
        let p = sample();
        let avg = p.avg_active_threads_per_warp();
        assert!((avg - 32.0 * 1000.0 / 1280.0).abs() < 1e-9);
    }
}
