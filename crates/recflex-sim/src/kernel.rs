//! The simulated-kernel abstraction.
//!
//! Anything that can be launched on the simulator — a single-feature
//! embedding kernel, the heterogeneous fused kernel, a tuner co-execution
//! kernel with padding blocks, a GEMM — implements [`SimKernel`]: it exposes
//! a grid size, a per-block resource footprint and a per-block analytic
//! [`BlockProfile`]. Profiling is pure and side-effect free, so the launch
//! pipeline evaluates blocks in parallel with rayon.

use crate::occupancy::BlockResources;
use crate::profile::BlockProfile;

/// Context handed to kernels when profiling a block.
///
/// `reg_cap` carries the occupancy-control decision: if the launch capped
/// registers below the kernel's natural demand, the kernel must account the
/// resulting spill traffic itself (it knows its loop trip counts).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProfileCtx {
    /// Per-thread register budget enforced by occupancy control, if any.
    pub reg_cap: Option<u32>,
}

/// A kernel that can be launched on the simulated GPU.
///
/// Implementations must be `Sync`: blocks are profiled concurrently.
pub trait SimKernel: Sync {
    /// Kernel name for reports.
    fn name(&self) -> &str;

    /// Number of thread blocks in the grid.
    fn grid_blocks(&self) -> u32;

    /// Per-block resource footprint (natural demand, before occupancy
    /// control is applied by the launch).
    fn resources(&self) -> BlockResources;

    /// Analytic demands of block `block_idx` under `ctx`.
    fn profile_block(&self, block_idx: u32, ctx: &ProfileCtx) -> BlockProfile;
}

/// Blanket impl so `&K` and boxed kernels launch transparently.
impl<K: SimKernel + ?Sized> SimKernel for &K {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn grid_blocks(&self) -> u32 {
        (**self).grid_blocks()
    }
    fn resources(&self) -> BlockResources {
        (**self).resources()
    }
    fn profile_block(&self, block_idx: u32, ctx: &ProfileCtx) -> BlockProfile {
        (**self).profile_block(block_idx, ctx)
    }
}

impl<K: SimKernel + ?Sized> SimKernel for Box<K> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn grid_blocks(&self) -> u32 {
        (**self).grid_blocks()
    }
    fn resources(&self) -> BlockResources {
        (**self).resources()
    }
    fn profile_block(&self, block_idx: u32, ctx: &ProfileCtx) -> BlockProfile {
        (**self).profile_block(block_idx, ctx)
    }
}

/// A trivially uniform kernel for tests and micro-benchmarks: every block
/// has the same profile.
#[derive(Debug, Clone)]
pub struct UniformKernel {
    /// Kernel name.
    pub name: String,
    /// Grid size in blocks.
    pub blocks: u32,
    /// Per-block resources.
    pub res: BlockResources,
    /// The profile every block reports.
    pub profile: BlockProfile,
}

impl SimKernel for UniformKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn grid_blocks(&self) -> u32 {
        self.blocks
    }
    fn resources(&self) -> BlockResources {
        self.res
    }
    fn profile_block(&self, _block_idx: u32, ctx: &ProfileCtx) -> BlockProfile {
        let mut p = self.profile;
        if let Some(cap) = ctx.reg_cap {
            let natural = self.res.regs_per_thread;
            if cap < natural {
                p.add_spill(natural - cap, self.res.threads_per_block, 4);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> UniformKernel {
        UniformKernel {
            name: "uniform".into(),
            blocks: 10,
            res: BlockResources::new(128, 64, 0),
            profile: BlockProfile {
                issue_cycles: 50.0,
                mem_transactions: 16,
                bytes_accessed: 512,
                unique_bytes: 512,
                active_warps: 4,
                thread_active_sum: 128,
                thread_useful_sum: 128,
                thread_slot_sum: 128,
                mlp: 2.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn uniform_kernel_profiles_identically() {
        let k = mk();
        let ctx = ProfileCtx::default();
        let a = k.profile_block(0, &ctx);
        let b = k.profile_block(9, &ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn reg_cap_inflates_traffic() {
        let k = mk();
        let free = k.profile_block(0, &ProfileCtx { reg_cap: None });
        let capped = k.profile_block(0, &ProfileCtx { reg_cap: Some(32) });
        assert!(capped.bytes_accessed > free.bytes_accessed);
    }

    #[test]
    fn trait_objects_launchable() {
        let k = mk();
        let dynk: &dyn SimKernel = &k;
        assert_eq!(dynk.grid_blocks(), 10);
        let boxed: Box<dyn SimKernel> = Box::new(k);
        assert_eq!(boxed.grid_blocks(), 10);
    }
}
