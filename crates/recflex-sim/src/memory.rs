//! Memory-system model: L2 working-set behaviour and average access latency.
//!
//! Embedding lookups are the textbook memory-bound irregular workload: a
//! batch touches a set of *unique* table rows once (compulsory DRAM traffic)
//! and re-touches popular rows many times. Whether the re-touches hit in L2
//! depends on how much distinct data the *whole grid* streams concurrently —
//! this is exactly the grid-level interference the paper's padding blocks
//! simulate during local tuning (Section IV-A2).
//!
//! The model: given the grid-wide unique footprint `U` and the L2 capacity
//! `C`, a re-access hits with probability `min(1, C / U)`. Misses and
//! first-touches go to DRAM. The resulting DRAM-byte counts feed bandwidth
//! sharing and the hit/miss blend feeds the average latency used for
//! latency-bound blocks.

use crate::arch::GpuArch;
use crate::profile::BlockProfile;

/// Grid-level memory behaviour derived from all block profiles of a launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySystem {
    /// Probability that a reuse access hits in L2.
    pub l2_hit_rate: f64,
    /// Average latency of one memory access in cycles (L2/DRAM blend).
    pub avg_latency: f64,
    /// Fraction of requested bytes served by DRAM.
    pub dram_fraction: f64,
}

impl MemorySystem {
    /// Build the model from aggregate traffic plus optional extra working-set
    /// pressure (`extra_unique_bytes`) used by the tuner's padding blocks to
    /// emulate the fused kernel's cache environment.
    pub fn from_traffic(
        arch: &GpuArch,
        total_bytes: u64,
        unique_bytes: u64,
        extra_unique_bytes: u64,
    ) -> Self {
        let unique = unique_bytes.min(total_bytes);
        let reuse = total_bytes - unique;
        let footprint = (unique + extra_unique_bytes).max(1);
        let l2_hit_rate = (arch.l2_size as f64 / footprint as f64).min(1.0);

        let dram_bytes = unique as f64 + reuse as f64 * (1.0 - l2_hit_rate);
        let dram_fraction = if total_bytes == 0 {
            0.0
        } else {
            dram_bytes / total_bytes as f64
        };
        let avg_latency =
            dram_fraction * arch.dram_latency + (1.0 - dram_fraction) * arch.l2_latency;

        MemorySystem {
            l2_hit_rate,
            avg_latency,
            dram_fraction,
        }
    }

    /// DRAM bytes a block with profile `p` actually moves, given this
    /// grid-level hit behaviour.
    pub fn dram_bytes(&self, p: &BlockProfile) -> f64 {
        let reuse = p.bytes_accessed.saturating_sub(p.unique_bytes) as f64;
        p.unique_bytes as f64 + reuse * (1.0 - self.l2_hit_rate) + p.bytes_written as f64
    }

    /// Bytes served from L2 for a block with profile `p`.
    pub fn l2_bytes(&self, p: &BlockProfile) -> f64 {
        let reuse = p.bytes_accessed.saturating_sub(p.unique_bytes) as f64;
        reuse * self.l2_hit_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuArch {
        GpuArch::v100()
    }

    #[test]
    fn small_footprint_all_hits() {
        // 1 MiB unique fits V100's 6 MiB L2 entirely.
        let m = MemorySystem::from_traffic(&v100(), 10 << 20, 1 << 20, 0);
        assert!((m.l2_hit_rate - 1.0).abs() < 1e-12);
        // Only the unique 1/10th goes to DRAM.
        assert!((m.dram_fraction - 0.1).abs() < 1e-9);
    }

    #[test]
    fn huge_footprint_mostly_misses() {
        // 600 MiB unique vs 6 MiB L2 → 1% hit rate.
        let m = MemorySystem::from_traffic(&v100(), 1200 << 20, 600 << 20, 0);
        assert!((m.l2_hit_rate - 0.01).abs() < 1e-3);
        assert!(m.avg_latency > 0.9 * v100().dram_latency);
    }

    #[test]
    fn extra_pressure_lowers_hit_rate() {
        let arch = v100();
        let alone = MemorySystem::from_traffic(&arch, 100 << 20, 10 << 20, 0);
        let crowded = MemorySystem::from_traffic(&arch, 100 << 20, 10 << 20, 200 << 20);
        assert!(crowded.l2_hit_rate < alone.l2_hit_rate);
        assert!(crowded.avg_latency > alone.avg_latency);
    }

    #[test]
    fn block_dram_bytes_include_writes() {
        let m = MemorySystem {
            l2_hit_rate: 1.0,
            avg_latency: 200.0,
            dram_fraction: 0.5,
        };
        let p = BlockProfile {
            bytes_accessed: 1000,
            unique_bytes: 400,
            bytes_written: 100,
            ..Default::default()
        };
        // Perfect hits: DRAM = unique reads + writes.
        assert!((m.dram_bytes(&p) - 500.0).abs() < 1e-12);
        assert!((m.l2_bytes(&p) - 600.0).abs() < 1e-12);
    }

    #[test]
    fn latency_bounded_by_endpoints() {
        let arch = v100();
        for (t, u) in [
            (1u64 << 20, 1u64 << 18),
            (1 << 28, 1 << 27),
            (1 << 31, 1 << 30),
        ] {
            let m = MemorySystem::from_traffic(&arch, t, u, 0);
            assert!(m.avg_latency >= arch.l2_latency - 1e-9);
            assert!(m.avg_latency <= arch.dram_latency + 1e-9);
        }
    }

    #[test]
    fn zero_traffic_is_sane() {
        let m = MemorySystem::from_traffic(&v100(), 0, 0, 0);
        assert_eq!(m.dram_fraction, 0.0);
        assert!(m.avg_latency.is_finite());
    }
}
