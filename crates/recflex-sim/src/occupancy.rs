//! CUDA-style occupancy calculation.
//!
//! Occupancy — the number of blocks (and hence warps) resident on one SM — is
//! the central quantity of RecFlex's tuning problem: it appears in the
//! denominator of the paper's Equation 2 and is the variable the *global*
//! tuning stage optimizes. This module reproduces the CUDA occupancy rules:
//! residency is limited by the warp limit, the block limit, the register file
//! and shared memory, with the documented allocation granularities.

use crate::arch::GpuArch;
use serde::{Deserialize, Serialize};

/// Per-block resource usage of a kernel, the inputs to occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockResources {
    /// Threads per block (a multiple of the warp size in practice).
    pub threads_per_block: u32,
    /// Registers per thread demanded by the compiled code.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block in bytes.
    pub smem_per_block: u32,
}

impl BlockResources {
    /// Convenience constructor.
    pub fn new(threads_per_block: u32, regs_per_thread: u32, smem_per_block: u32) -> Self {
        BlockResources {
            threads_per_block,
            regs_per_thread,
            smem_per_block,
        }
    }

    /// Warps per block, rounded up.
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block.div_ceil(warp_size)
    }

    /// Merge with another resource footprint: the fused kernel's block uses
    /// the maximum of each resource (shared memory is a union, Figure 8 of
    /// the paper; registers are allocated for the worst branch).
    pub fn union(&self, other: &BlockResources) -> BlockResources {
        BlockResources {
            threads_per_block: self.threads_per_block.max(other.threads_per_block),
            regs_per_thread: self.regs_per_thread.max(other.regs_per_thread),
            smem_per_block: self.smem_per_block.max(other.smem_per_block),
        }
    }
}

/// Result of the occupancy calculation for one kernel on one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM. Zero means the kernel cannot launch.
    pub blocks_per_sm: u32,
    /// Resident warps per SM (`blocks_per_sm × warps_per_block`).
    pub warps_per_sm: u32,
    /// Which resource is the binding constraint.
    pub limiter: Limiter,
}

/// The resource that bounds occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Hardware warp residency limit.
    Warps,
    /// Hardware block residency limit.
    Blocks,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
    /// The kernel over-subscribes a single SM and cannot launch.
    Unlaunchable,
}

fn round_up(x: u32, granularity: u32) -> u32 {
    x.div_ceil(granularity) * granularity
}

/// Compute the occupancy of a kernel with resources `res` on `arch`,
/// following the CUDA occupancy calculator rules.
pub fn occupancy(res: &BlockResources, arch: &GpuArch) -> Occupancy {
    let warps = res.warps_per_block(arch.warp_size);
    if warps == 0 {
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            limiter: Limiter::Unlaunchable,
        };
    }

    let by_warps = arch.max_warps_per_sm / warps;
    let by_blocks = arch.max_blocks_per_sm;

    // Registers are allocated per warp with a granularity.
    let regs_per_warp = round_up(
        res.regs_per_thread.max(16) * arch.warp_size,
        arch.reg_alloc_granularity,
    );
    let by_regs = if res.regs_per_thread > arch.max_regs_per_thread {
        0
    } else {
        arch.regs_per_sm / (regs_per_warp * warps)
    };

    let by_smem = if res.smem_per_block == 0 {
        u32::MAX
    } else {
        arch.smem_per_sm / round_up(res.smem_per_block, arch.smem_alloc_granularity)
    };

    let blocks = by_warps.min(by_blocks).min(by_regs).min(by_smem);
    // On ties the hardware-structural limits take precedence in reporting.
    let limiter = if blocks == 0 {
        Limiter::Unlaunchable
    } else if blocks == by_warps {
        Limiter::Warps
    } else if blocks == by_blocks {
        Limiter::Blocks
    } else if blocks == by_regs {
        Limiter::Registers
    } else {
        Limiter::SharedMemory
    };

    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: blocks * warps,
        limiter,
    }
}

/// Occupancy control (paper Section IV-A2): force a kernel's residency to a
/// target `O_k`, the mechanism that decouples every per-feature sub-problem
/// from the other features' schedules.
///
/// * If the natural occupancy is *higher* than the target, shared memory is
///   padded until exactly `target` blocks fit per SM (cheap, no side effect).
/// * If it is *lower*, the per-thread register budget is capped to whatever
///   fits; the returned [`OccupancyControl::reg_cap`] tells the kernel's cost
///   model how many registers were removed so it can account spill traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyControl {
    /// The adjusted resources to launch with.
    pub resources: BlockResources,
    /// Achieved blocks per SM after control.
    pub blocks_per_sm: u32,
    /// If register capping was required: the capped per-thread budget. The
    /// kernel's natural demand minus this cap spills to local (DRAM) memory.
    pub reg_cap: Option<u32>,
    /// Bytes of shared-memory padding added, if any.
    pub smem_pad: u32,
}

/// Apply occupancy control for `target` resident blocks/SM.
///
/// Returns `None` if even one block of this shape cannot be resident (e.g.
/// more threads than warp slots), in which case the schedule is infeasible.
pub fn control_occupancy(
    res: &BlockResources,
    arch: &GpuArch,
    target: u32,
) -> Option<OccupancyControl> {
    let warps = res.warps_per_block(arch.warp_size);
    if warps == 0 || warps > arch.max_warps_per_sm {
        return None;
    }
    // The hardware can never exceed these regardless of resources:
    let hard_cap = (arch.max_warps_per_sm / warps).min(arch.max_blocks_per_sm);
    let target = target.min(hard_cap).max(1);

    let nat = occupancy(res, arch);
    if nat.blocks_per_sm == 0 {
        // Even a single block does not fit (smem too large): infeasible.
        if round_up(res.smem_per_block, arch.smem_alloc_granularity) > arch.smem_per_sm {
            return None;
        }
    }

    let mut adjusted = *res;
    let mut reg_cap = None;
    let mut smem_pad = 0u32;

    if nat.blocks_per_sm > target {
        // Pad shared memory down to exactly `target` blocks/SM.
        let per_block = arch.smem_per_sm / target;
        let padded = per_block - (per_block % arch.smem_alloc_granularity);
        debug_assert!(padded >= res.smem_per_block || occupancy(res, arch).blocks_per_sm <= target);
        if padded > adjusted.smem_per_block {
            smem_pad = padded - adjusted.smem_per_block;
            adjusted.smem_per_block = padded;
        }
    } else if nat.blocks_per_sm < target {
        // Cap registers so `target` blocks fit; spilling is accounted by the
        // kernel cost model via `reg_cap`.
        let regs_per_warp_budget = arch.regs_per_sm / (target * warps);
        let regs_per_warp =
            regs_per_warp_budget - (regs_per_warp_budget % arch.reg_alloc_granularity);
        let cap = (regs_per_warp / arch.warp_size).max(16);
        if cap < res.regs_per_thread {
            reg_cap = Some(cap);
            adjusted.regs_per_thread = cap;
        }
        // Shared memory may also be the limiter; if so the target is simply
        // unreachable and we settle for the smem-bound occupancy.
    }

    let achieved = occupancy(&adjusted, arch).blocks_per_sm;
    if achieved == 0 {
        return None;
    }
    Some(OccupancyControl {
        resources: adjusted,
        blocks_per_sm: achieved.min(target),
        reg_cap,
        smem_pad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuArch {
        GpuArch::v100()
    }

    #[test]
    fn small_kernel_hits_block_or_warp_limit() {
        // 128 threads, 32 regs, no smem: warps limit = 64/4 = 16 blocks.
        let occ = occupancy(&BlockResources::new(128, 32, 0), &v100());
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.warps_per_sm, 64);
        assert_eq!(occ.limiter, Limiter::Warps);
    }

    #[test]
    fn register_bound_kernel() {
        // 256 threads × 128 regs = 32768 regs/block → 2 blocks/SM on V100.
        let occ = occupancy(&BlockResources::new(256, 128, 0), &v100());
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn smem_bound_kernel() {
        // 48 KiB smem → 2 blocks/SM on V100's 96 KiB.
        let occ = occupancy(&BlockResources::new(128, 32, 48 * 1024), &v100());
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn unlaunchable_kernel() {
        let occ = occupancy(&BlockResources::new(128, 32, 200 * 1024), &v100());
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.limiter, Limiter::Unlaunchable);
    }

    #[test]
    fn occupancy_monotone_in_resources() {
        let arch = v100();
        let base = occupancy(&BlockResources::new(128, 32, 1024), &arch).blocks_per_sm;
        for regs in [48, 64, 96, 128, 255] {
            for smem in [2048, 8192, 32768] {
                let o = occupancy(&BlockResources::new(128, regs, smem), &arch).blocks_per_sm;
                assert!(o <= base, "more resources must not raise occupancy");
            }
        }
    }

    #[test]
    fn control_pads_smem_down_to_target() {
        let arch = v100();
        let res = BlockResources::new(128, 32, 256);
        let ctl = control_occupancy(&res, &arch, 4).unwrap();
        assert_eq!(ctl.blocks_per_sm, 4);
        assert!(ctl.smem_pad > 0);
        assert!(ctl.reg_cap.is_none());
        assert_eq!(occupancy(&ctl.resources, &arch).blocks_per_sm, 4);
    }

    #[test]
    fn control_caps_registers_up_to_target() {
        let arch = v100();
        // Naturally 2 blocks/SM (register bound); ask for 8.
        let res = BlockResources::new(256, 128, 0);
        let ctl = control_occupancy(&res, &arch, 8).unwrap();
        assert_eq!(ctl.blocks_per_sm, 8);
        let cap = ctl.reg_cap.expect("register capping expected");
        assert!(cap < 128);
        assert_eq!(occupancy(&ctl.resources, &arch).blocks_per_sm, 8);
    }

    #[test]
    fn control_respects_hardware_cap() {
        let arch = v100();
        // 1024-thread blocks: at most 2 can be resident (64 warps / 32 warps).
        let res = BlockResources::new(1024, 32, 0);
        let ctl = control_occupancy(&res, &arch, 16).unwrap();
        assert_eq!(ctl.blocks_per_sm, 2);
    }

    #[test]
    fn control_noop_when_already_at_target() {
        let arch = v100();
        let res = BlockResources::new(128, 64, 4096);
        let nat = occupancy(&res, &arch).blocks_per_sm;
        let ctl = control_occupancy(&res, &arch, nat).unwrap();
        assert_eq!(ctl.blocks_per_sm, nat);
        assert_eq!(ctl.smem_pad, 0);
        assert!(ctl.reg_cap.is_none());
    }

    #[test]
    fn union_takes_component_maxima() {
        let a = BlockResources::new(128, 40, 1024);
        let b = BlockResources::new(256, 24, 4096);
        let u = a.union(&b);
        assert_eq!(u, BlockResources::new(256, 40, 4096));
    }
}
