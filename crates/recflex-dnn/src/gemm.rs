//! Tiled GEMM cost model for the simulator.
//!
//! `C[M,N] = A[M,K] · B[K,N]` with 64×64 output tiles per block, operands
//! staged through shared memory — the standard dense-layer kernel shape.
//! Weight tiles are reused across the M dimension, so their first touch is
//! the only compulsory DRAM traffic; activations stream once.

use recflex_sim::{BlockProfile, BlockResources, ProfileCtx, SimKernel};

/// Output-tile edge in elements.
const TILE: u32 = 128;

/// A GEMM launch: `[m × k] · [k × n]`.
#[derive(Debug, Clone, Copy)]
pub struct GemmKernel {
    /// Rows of A / C (the batch size).
    pub m: u32,
    /// Inner dimension.
    pub k: u32,
    /// Columns of B / C (output features).
    pub n: u32,
}

impl GemmKernel {
    /// Grid tiling: `ceil(m/TILE) × ceil(n/TILE)` blocks.
    fn tiles(&self) -> (u32, u32) {
        (self.m.div_ceil(TILE), self.n.div_ceil(TILE))
    }
}

impl SimKernel for GemmKernel {
    fn name(&self) -> &str {
        "gemm_tiled"
    }

    fn grid_blocks(&self) -> u32 {
        let (tm, tn) = self.tiles();
        (tm * tn).max(1)
    }

    fn resources(&self) -> BlockResources {
        // 256 threads, each holding a 4×4 accumulator tile, double-buffered
        // 64×16 smem staging for A and B.
        BlockResources::new(256, 18 + 16 + 8, 2 * 2 * (TILE * 16) * 4)
    }

    fn profile_block(&self, block_idx: u32, _ctx: &ProfileCtx) -> BlockProfile {
        let (tm, tn) = self.tiles();
        let ti = block_idx % tm; // row-tile index
        let rows = if (ti + 1) * TILE <= self.m {
            TILE as u64
        } else {
            (self.m - ti * TILE).max(1) as u64
        };
        let cols = TILE as u64;
        let k = self.k as u64;

        let flops = 2 * rows * cols * k;
        // Each block streams its A tile (rows×k) and B tile (k×cols) once
        // through shared memory. A tiles are re-read by every column tile
        // and B tiles by every row tile, so first-touch traffic is the
        // reuse-discounted share — the rest hits in L2.
        let a_bytes = rows * k * 4;
        let b_bytes = k * cols * 4;
        let c_bytes = rows * cols * 4;
        let bytes = a_bytes + b_bytes;
        let unique = a_bytes / tn.max(1) as u64 + b_bytes / tm.max(1) as u64;

        // One warp FFMA instruction covers 32 lanes × 2 FLOP = 64 FLOP.
        let mut p = BlockProfile {
            flops,
            issue_cycles: flops as f64 / 64.0 * 1.05,
            ..Default::default()
        };
        p.mem_transactions = bytes.div_ceil(32) + c_bytes.div_ceil(32);
        p.bytes_accessed = bytes;
        p.unique_bytes = unique.min(bytes);
        p.bytes_written = c_bytes;
        p.active_warps = 8;
        p.thread_active_sum = flops / 2;
        p.thread_useful_sum = flops / 2;
        p.thread_slot_sum = flops / 2;
        p.barriers = k.div_ceil(16) as u32;
        p.mlp = 6.0;
        // Double-buffered staging: two loads per k-stage on the chain.
        p.critical_mem_chain = 2 * k.div_ceil(16);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_sim::{launch, GpuArch, LaunchConfig};

    #[test]
    fn grid_covers_output() {
        let g = GemmKernel {
            m: 512,
            k: 1024,
            n: 256,
        };
        assert_eq!(g.grid_blocks(), 4 * 2);
        let g2 = GemmKernel { m: 1, k: 8, n: 1 };
        assert_eq!(g2.grid_blocks(), 1);
    }

    #[test]
    fn flops_conserved_across_blocks() {
        let g = GemmKernel {
            m: 200,
            k: 300,
            n: 100,
        };
        let ctx = ProfileCtx::default();
        let total: u64 = (0..g.grid_blocks())
            .map(|b| g.profile_block(b, &ctx).flops)
            .sum();
        // Column tiles round up to the tile width, so ≥ the exact 2·m·k·n.
        let exact = 2 * 200u64 * 300 * 100;
        assert!(total >= exact, "{total} < {exact}");
        assert!(total <= exact * 2);
    }

    #[test]
    fn bigger_gemm_takes_longer() {
        let arch = GpuArch::v100();
        let cfg = LaunchConfig::default();
        let small = launch(
            &GemmKernel {
                m: 128,
                k: 256,
                n: 128,
            },
            &arch,
            &cfg,
        )
        .unwrap();
        let big = launch(
            &GemmKernel {
                m: 512,
                k: 4096,
                n: 1024,
            },
            &arch,
            &cfg,
        )
        .unwrap();
        assert!(big.latency_us > small.latency_us);
    }

    #[test]
    fn gemm_metrics_sane() {
        let arch = GpuArch::v100();
        let r = launch(
            &GemmKernel {
                m: 512,
                k: 4096,
                n: 1024,
            },
            &arch,
            &LaunchConfig::default(),
        )
        .unwrap();
        assert!(r.metrics.max_bandwidth_pct <= 100.0);
        assert!(r.metrics.flops > 0);
        // 128×128 tiling keeps the kernel around the roofline ridge, far
        // from the pure-gather behaviour of embedding kernels.
        assert!(r.metrics.avg_active_threads_per_warp > 30.0);
    }
}
