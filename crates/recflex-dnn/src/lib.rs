//! # recflex-dnn — the dense half of the recommendation model
//!
//! The paper's end-to-end evaluation (Figure 10) appends an MLP with hidden
//! sizes 1024/256/128 to the embedding layer. RecFlex does not optimize the
//! DNN — which is exactly why end-to-end speedups (1.85×–7.74×) are smaller
//! than kernel speedups (2.64×–35.4×) — so this crate provides a plain,
//! schedule-independent GEMM + bias + ReLU stack with:
//!
//! * a simulator cost model ([`Mlp::latency_us`]) used by the Figure 10
//!   harness: identical for every backend, it dilutes the embedding-stage
//!   speedup exactly as on real hardware;
//! * functional execution ([`Mlp::forward`]) with hash-derived weights for
//!   correctness tests on small models.

pub mod gemm;
pub mod mlp;

pub use gemm::GemmKernel;
pub use mlp::{Linear, Mlp};
