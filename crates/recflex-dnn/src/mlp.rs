//! Dense layers and the paper's evaluation MLP.

use rayon::prelude::*;
use recflex_sim::{launch, GpuArch, LaunchConfig, LaunchReport};

use crate::gemm::GemmKernel;

/// One dense layer `y = relu?(x·W + b)` with hash-derived weights.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input features.
    pub in_dim: u32,
    /// Output features.
    pub out_dim: u32,
    /// Apply ReLU after the affine transform.
    pub relu: bool,
    seed: u64,
}

impl Linear {
    /// Create a layer with weights derived from `seed`.
    pub fn new(in_dim: u32, out_dim: u32, relu: bool, seed: u64) -> Self {
        Linear {
            in_dim,
            out_dim,
            relu,
            seed,
        }
    }

    /// Deterministic weight `(i, j)` in `(-s, s)` with `s = 1/√in_dim`.
    pub fn weight(&self, i: u32, j: u32) -> f32 {
        let mut x = self.seed ^ ((i as u64) << 32) ^ j as u64;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = ((x >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
        u / (self.in_dim as f32).sqrt()
    }

    /// Deterministic bias `j`.
    pub fn bias(&self, j: u32) -> f32 {
        self.weight(u32::MAX, j) * 0.1
    }

    /// Functional forward: `x` is `batch × in_dim` row-major; returns
    /// `batch × out_dim`. Parallel over samples.
    pub fn forward(&self, x: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(x.len(), batch * self.in_dim as usize);
        let mut y = vec![0.0f32; batch * self.out_dim as usize];
        y.par_chunks_mut(self.out_dim as usize)
            .zip(x.par_chunks(self.in_dim as usize))
            .for_each(|(yr, xr)| {
                for j in 0..self.out_dim {
                    let mut acc = self.bias(j);
                    for (i, &xi) in xr.iter().enumerate() {
                        acc += xi * self.weight(i as u32, j);
                    }
                    yr[j as usize] = if self.relu { acc.max(0.0) } else { acc };
                }
            });
        y
    }

    /// Simulated latency of this layer for `batch` samples.
    pub fn latency_us(&self, batch: u32, arch: &GpuArch) -> f64 {
        let g = GemmKernel {
            m: batch,
            k: self.in_dim,
            n: self.out_dim,
        };
        launch(&g, arch, &LaunchConfig::default())
            .map(|r: LaunchReport| r.latency_us)
            .unwrap_or(arch.kernel_launch_us)
    }
}

/// The evaluation MLP: hidden layers 1024 → 256 → 128 → a scalar
/// prediction (paper Section VI-C).
#[derive(Debug, Clone)]
pub struct Mlp {
    /// The stacked layers.
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// The paper's configuration on top of a `concat_dim`-wide embedding.
    pub fn paper_config(concat_dim: u32) -> Self {
        Mlp {
            layers: vec![
                Linear::new(concat_dim, 1024, true, 101),
                Linear::new(1024, 256, true, 102),
                Linear::new(256, 128, true, 103),
                Linear::new(128, 1, false, 104),
            ],
        }
    }

    /// Custom stack (hidden dims with ReLU, then a linear scalar head).
    pub fn with_hidden(concat_dim: u32, hidden: &[u32]) -> Self {
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = concat_dim;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(Linear::new(prev, h, true, 101 + i as u64));
            prev = h;
        }
        layers.push(Linear::new(prev, 1, false, 200));
        Mlp { layers }
    }

    /// Functional forward pass; `x` is `batch × in_dim` row-major.
    pub fn forward(&self, x: &[f32], batch: usize) -> Vec<f32> {
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur, batch);
        }
        cur
    }

    /// Simulated latency of the whole stack, plus one elementwise concat
    /// kernel moving the embedding outputs into the GEMM layout.
    pub fn latency_us(&self, batch: u32, arch: &GpuArch) -> f64 {
        let concat_bytes = 2.0 * batch as f64 * self.layers[0].in_dim as f64 * 4.0;
        let concat_us = concat_bytes / (arch.dram_bw_gbps * 1e3) + arch.kernel_launch_us;
        concat_us
            + self
                .layers
                .iter()
                .map(|l| l.latency_us(batch, arch))
                .sum::<f64>()
    }

    /// Input width.
    pub fn in_dim(&self) -> u32 {
        self.layers[0].in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::paper_config(64);
        let x = vec![0.1f32; 8 * 64];
        let y = mlp.forward(&x, 8);
        assert_eq!(y.len(), 8);
    }

    #[test]
    fn relu_clamps_hidden_layers() {
        let l = Linear::new(16, 8, true, 7);
        let x = vec![-10.0f32; 16];
        let y = l.forward(&x, 1);
        assert!(y.iter().all(|&v| v >= 0.0));
        let l2 = Linear::new(16, 8, false, 7);
        let y2 = l2.forward(&x, 1);
        assert!(
            y2.iter().any(|&v| v < 0.0),
            "linear head must pass negatives"
        );
    }

    #[test]
    fn forward_deterministic_and_input_sensitive() {
        let mlp = Mlp::paper_config(32);
        let x1 = vec![0.5f32; 4 * 32];
        let mut x2 = x1.clone();
        x2[0] = -0.5;
        assert_eq!(mlp.forward(&x1, 4), mlp.forward(&x1, 4));
        assert_ne!(mlp.forward(&x1, 4)[0], mlp.forward(&x2, 4)[0]);
    }

    #[test]
    fn paper_config_shapes() {
        let mlp = Mlp::paper_config(3000);
        let dims: Vec<(u32, u32)> = mlp.layers.iter().map(|l| (l.in_dim, l.out_dim)).collect();
        assert_eq!(dims, vec![(3000, 1024), (1024, 256), (256, 128), (128, 1)]);
    }

    #[test]
    fn latency_grows_with_batch_and_width() {
        let arch = recflex_sim::GpuArch::v100();
        let small = Mlp::paper_config(512).latency_us(64, &arch);
        let big = Mlp::paper_config(8192).latency_us(512, &arch);
        assert!(big > small);
        assert!(small > 0.0);
    }

    #[test]
    fn custom_hidden_stack() {
        let mlp = Mlp::with_hidden(100, &[50, 20]);
        assert_eq!(mlp.layers.len(), 3);
        assert_eq!(mlp.layers.last().unwrap().out_dim, 1);
        let y = mlp.forward(&vec![0.2; 3 * 100], 3);
        assert_eq!(y.len(), 3);
    }
}
