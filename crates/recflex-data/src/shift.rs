//! Distribution shift, for the periodic-retuning experiment.
//!
//! "Recent works point out that the input data of a recommendation model
//! follow the same distribution in a certain time period", and RecFlex
//! re-tunes periodically (e.g. every few days) to track the drift (paper
//! Section IV-A3). This module derives a *shifted* version of a model —
//! pooling factors scaled, coverage shuffled toward different features —
//! the synthetic stand-in for a few days of traffic drift.

use crate::distribution::PoolingDist;
use crate::feature::ModelConfig;

/// Produce a drifted model: multi-hot pooling intensities scale by
/// `pf_scale` (e.g. 2.0 = users interact twice as much) and coverages move
/// `coverage_shift` toward/away from presence.
pub fn shift_distribution(model: &ModelConfig, pf_scale: f64, coverage_shift: f64) -> ModelConfig {
    let features = model
        .features
        .iter()
        .map(|f| {
            let mut f = f.clone();
            f.pooling = scale_pooling(&f.pooling, pf_scale);
            if !f.pooling.is_one_hot() {
                f.coverage = (f.coverage + coverage_shift).clamp(0.05, 1.0);
            }
            f
        })
        .collect();
    ModelConfig {
        name: format!("{}-shifted", model.name),
        features,
    }
}

fn scale_pooling(p: &PoolingDist, s: f64) -> PoolingDist {
    let scale_u = |x: u32| ((x as f64 * s).round() as u32).max(1);
    match *p {
        PoolingDist::OneHot => PoolingDist::OneHot,
        PoolingDist::Fixed(k) => PoolingDist::Fixed(scale_u(k)),
        PoolingDist::Normal { mean, std, max } => PoolingDist::Normal {
            mean: (mean * s).max(1.0),
            std: (std * s).max(0.5),
            max: scale_u(max),
        },
        PoolingDist::PowerLaw { alpha, max } => PoolingDist::PowerLaw {
            alpha,
            max: scale_u(max),
        },
        PoolingDist::Uniform { lo, hi } => PoolingDist::Uniform {
            lo: scale_u(lo),
            hi: scale_u(hi),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPreset;

    #[test]
    fn one_hot_features_unchanged() {
        let m = ModelPreset::A.scaled(0.02);
        let shifted = shift_distribution(&m, 2.0, -0.2);
        for (a, b) in m.features.iter().zip(&shifted.features) {
            if a.pooling.is_one_hot() {
                assert_eq!(a.pooling, b.pooling);
                assert_eq!(a.coverage, b.coverage);
            }
        }
    }

    #[test]
    fn pf_scale_raises_means() {
        let m = ModelPreset::C.scaled(0.02);
        let shifted = shift_distribution(&m, 2.0, 0.0);
        let before: f64 = m.features.iter().map(|f| f.pooling.mean()).sum();
        let after: f64 = shifted.features.iter().map(|f| f.pooling.mean()).sum();
        assert!(after > before * 1.5, "{after} vs {before}");
    }

    #[test]
    fn coverage_stays_in_bounds() {
        let m = ModelPreset::A.scaled(0.02);
        for shift in [-1.0, -0.3, 0.3, 1.0] {
            let s = shift_distribution(&m, 1.0, shift);
            assert!(s
                .features
                .iter()
                .all(|f| (0.05..=1.0).contains(&f.coverage)));
        }
    }

    #[test]
    fn shape_is_preserved() {
        let m = ModelPreset::B.scaled(0.01);
        let s = shift_distribution(&m, 3.0, 0.1);
        assert_eq!(s.features.len(), m.features.len());
        for (a, b) in m.features.iter().zip(&s.features) {
            assert_eq!(a.emb_dim, b.emb_dim);
            assert_eq!(a.table_rows, b.table_rows);
        }
    }
}
