//! Datasets: collections of historical batches.
//!
//! RecFlex tunes on "the recent distribution of historical inputs" and
//! serves fresh batches from the same distribution (paper Section IV-A3,
//! Equation 5). A [`Dataset`] holds a seeded set of batches; disjoint seed
//! ranges give the tuning/evaluation split.

use crate::batch::Batch;
use crate::feature::ModelConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A set of batches drawn from one model's input distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    batches: Vec<Batch>,
    seed: u64,
}

impl Dataset {
    /// Synthesize `n_batches` batches of `batch_size` samples for `model`.
    pub fn synthesize(model: &ModelConfig, n_batches: usize, batch_size: u32, seed: u64) -> Self {
        let batches: Vec<Batch> = (0..n_batches)
            .into_par_iter()
            .map(|i| Batch::generate(model, batch_size, seed.wrapping_add(i as u64 * 1_000_003)))
            .collect();
        Dataset { batches, seed }
    }

    /// Synthesize batches whose sizes vary over `sizes` round-robin —
    /// models the varying request sizes of online serving.
    pub fn synthesize_varied(model: &ModelConfig, sizes: &[u32], seed: u64) -> Self {
        let batches: Vec<Batch> = sizes
            .par_iter()
            .enumerate()
            .map(|(i, &bs)| Batch::generate(model, bs, seed.wrapping_add(i as u64 * 1_000_003)))
            .collect();
        Dataset { batches, seed }
    }

    /// Wrap existing batches into a dataset (projections, replays).
    pub fn from_batches(batches: Vec<Batch>) -> Self {
        Dataset { batches, seed: 0 }
    }

    /// The batches.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// A fresh evaluation dataset from the same distribution but disjoint
    /// randomness (the paper tunes on historical data, then measures on
    /// newly sampled batches).
    pub fn evaluation_split(&self, model: &ModelConfig, n_batches: usize, batch_size: u32) -> Self {
        Dataset::synthesize(
            model,
            n_batches,
            batch_size,
            self.seed ^ 0xDEAD_BEEF_CAFE_F00D,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPreset;

    #[test]
    fn synthesis_is_deterministic() {
        let m = ModelPreset::A.scaled(0.01);
        let a = Dataset::synthesize(&m, 3, 32, 7);
        let b = Dataset::synthesize(&m, 3, 32, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn batches_differ_within_dataset() {
        let m = ModelPreset::A.scaled(0.01);
        let d = Dataset::synthesize(&m, 2, 32, 7);
        assert_ne!(d.batches()[0], d.batches()[1]);
    }

    #[test]
    fn all_batches_valid() {
        let m = ModelPreset::C.scaled(0.01);
        let d = Dataset::synthesize(&m, 4, 48, 21);
        for b in d.batches() {
            b.validate(&m).unwrap();
        }
    }

    #[test]
    fn varied_sizes() {
        let m = ModelPreset::B.scaled(0.005);
        let d = Dataset::synthesize_varied(&m, &[16, 64, 256], 3);
        let sizes: Vec<u32> = d.batches().iter().map(|b| b.batch_size).collect();
        assert_eq!(sizes, vec![16, 64, 256]);
    }

    #[test]
    fn evaluation_split_is_disjoint_randomness() {
        let m = ModelPreset::A.scaled(0.01);
        let tune = Dataset::synthesize(&m, 2, 32, 7);
        let eval = tune.evaluation_split(&m, 2, 32);
        assert_ne!(tune.batches()[0], eval.batches()[0]);
    }
}
