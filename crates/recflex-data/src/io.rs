//! Dataset and model-config (de)serialization.
//!
//! The paper's artifact ships a `data_synthesis` script whose outputs
//! (per-feature distribution configs + generated lookup indices) are read
//! by every experiment. This module is the equivalent: model configs and
//! datasets round-trip through JSON files, so experiments can be replayed
//! against identical inputs and configurations can be hand-edited.

use crate::batch::Batch;
use crate::dataset::Dataset;
use crate::feature::ModelConfig;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Everything one experiment needs to replay: the model and its batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetFile {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The model configuration.
    pub model: ModelConfig,
    /// The generated batches.
    pub batches: Vec<Batch>,
}

/// Current file-format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io: {e}"),
            IoError::Format(m) => write!(f, "format: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Save a model + dataset to a JSON file.
pub fn save_dataset(path: &Path, model: &ModelConfig, dataset: &Dataset) -> Result<(), IoError> {
    let file = DatasetFile {
        version: FORMAT_VERSION,
        model: model.clone(),
        batches: dataset.batches().to_vec(),
    };
    let json = serde_json::to_string(&file).map_err(|e| IoError::Format(e.to_string()))?;
    fs::write(path, json)?;
    Ok(())
}

/// Load a model + dataset from a JSON file, validating every batch
/// against the model before returning.
pub fn load_dataset(path: &Path) -> Result<(ModelConfig, Dataset), IoError> {
    let json = fs::read_to_string(path)?;
    let file: DatasetFile =
        serde_json::from_str(&json).map_err(|e| IoError::Format(e.to_string()))?;
    if file.version != FORMAT_VERSION {
        return Err(IoError::Format(format!(
            "unsupported version {}",
            file.version
        )));
    }
    for (i, b) in file.batches.iter().enumerate() {
        b.validate(&file.model)
            .map_err(|e| IoError::Format(format!("batch {i}: {e}")))?;
    }
    Ok((file.model, Dataset::from_batches(file.batches)))
}

/// Save just a model configuration (the hand-editable experiment input).
pub fn save_model(path: &Path, model: &ModelConfig) -> Result<(), IoError> {
    let json = serde_json::to_string_pretty(model).map_err(|e| IoError::Format(e.to_string()))?;
    fs::write(path, json)?;
    Ok(())
}

/// Load a model configuration.
pub fn load_model(path: &Path) -> Result<ModelConfig, IoError> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| IoError::Format(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPreset;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("recflex_io_{name}_{}", std::process::id()))
    }

    /// Structural equality with float tolerance (JSON text round-trips
    /// floats to the last ulp or two, which is irrelevant semantically).
    fn assert_models_equivalent(a: &ModelConfig, b: &ModelConfig) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.features.len(), b.features.len());
        for (x, y) in a.features.iter().zip(&b.features) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.table_rows, y.table_rows);
            assert_eq!(x.emb_dim, y.emb_dim);
            assert!((x.coverage - y.coverage).abs() < 1e-9);
            assert!((x.row_skew - y.row_skew).abs() < 1e-9);
        }
    }

    #[test]
    fn dataset_roundtrip() {
        let m = ModelPreset::A.scaled(0.005);
        let ds = Dataset::synthesize(&m, 2, 24, 7);
        let path = tmp("roundtrip.json");
        save_dataset(&path, &m, &ds).unwrap();
        let (m2, ds2) = load_dataset(&path).unwrap();
        assert_models_equivalent(&m, &m2);
        // The CSR data is integral and must round-trip exactly.
        assert_eq!(ds.batches(), ds2.batches());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn model_roundtrip() {
        let m = ModelPreset::D.scaled(0.01);
        let path = tmp("model.json");
        save_model(&path, &m).unwrap();
        let m2 = load_model(&path).unwrap();
        assert_models_equivalent(&m, &m2);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn load_rejects_corrupt_batches() {
        let m = ModelPreset::A.scaled(0.005);
        let ds = Dataset::synthesize(&m, 1, 8, 3);
        let mut file = DatasetFile {
            version: FORMAT_VERSION,
            model: m,
            batches: ds.batches().to_vec(),
        };
        file.batches[0].features[0].indices[0] = u32::MAX; // out of range
        let path = tmp("corrupt.json");
        fs::write(&path, serde_json::to_string(&file).unwrap()).unwrap();
        assert!(matches!(load_dataset(&path), Err(IoError::Format(_))));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn load_rejects_wrong_version() {
        let m = ModelPreset::A.scaled(0.005);
        let file = DatasetFile {
            version: 99,
            model: m,
            batches: vec![],
        };
        let path = tmp("version.json");
        fs::write(&path, serde_json::to_string(&file).unwrap()).unwrap();
        assert!(matches!(load_dataset(&path), Err(IoError::Format(_))));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_dataset(Path::new("/nonexistent/recflex.json")),
            Err(IoError::Io(_))
        ));
    }
}
