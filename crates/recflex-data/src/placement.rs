//! Feature-to-device placement for model-parallel sharding.
//!
//! When embedding tables exceed one GPU's memory, the paper places tables
//! on multiple GPUs "through heuristics" and optimizes each GPU's share
//! independently (Section VII). The placement itself is a pure partition
//! of the model's feature list, so it lives here in the data layer where
//! both the offline engine (`recflex-core::sharding`) and the online
//! serving tier (`recflex-serve::sharded`) can reach it.
//!
//! Three policies, from naive to informed:
//!
//! * [`Placement::round_robin`] — feature `f` goes to device `f mod N`;
//!   ignores weight entirely (the strawman baseline),
//! * [`Placement::balance`] — greedy longest-processing-time over each
//!   feature's *expected traffic* (expected lookups/sample × row bytes),
//! * [`Placement::balance_by_cost`] — the same LPT greedy over arbitrary
//!   caller-supplied per-feature costs, e.g. tuned per-feature latency
//!   estimates. Traffic is a proxy; measured device time is the quantity
//!   the slowest shard actually gates on.

use serde::{Deserialize, Serialize};

use crate::batch::Batch;
use crate::feature::{FeatureSpec, ModelConfig};

/// Assignment of model features to devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// `feature_idx → device` in model order.
    pub device_of: Vec<usize>,
    /// Number of devices.
    pub num_devices: usize,
}

impl Placement {
    /// Naive striping: feature `f` lands on device `f mod num_devices`.
    pub fn round_robin(model: &ModelConfig, num_devices: usize) -> Self {
        assert!(num_devices >= 1);
        Placement {
            device_of: (0..model.features.len()).map(|f| f % num_devices).collect(),
            num_devices,
        }
    }

    /// Greedy LPT placement: features sorted by expected per-batch bytes,
    /// each assigned to the currently lightest device.
    pub fn balance(model: &ModelConfig, num_devices: usize) -> Self {
        let weight = |f: &FeatureSpec| f.expected_lookups_per_sample() * f.row_bytes() as f64;
        let costs: Vec<f64> = model.features.iter().map(weight).collect();
        Self::balance_by_cost(num_devices, &costs)
    }

    /// Greedy LPT placement over explicit per-feature costs (any
    /// nonnegative unit — bytes, µs of tuned latency, …). Costs are
    /// clamped to a small positive floor so zero-cost features still
    /// spread across devices instead of piling onto one.
    pub fn balance_by_cost(num_devices: usize, costs: &[f64]) -> Self {
        assert!(num_devices >= 1);
        let mut order: Vec<usize> = (0..costs.len()).collect();
        // Sort by descending cost; ties broken by feature index so the
        // placement is a pure function of its inputs.
        order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
        let mut load = vec![0.0f64; num_devices];
        let mut device_of = vec![0usize; costs.len()];
        for f in order {
            let dev = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("num_devices >= 1");
            device_of[f] = dev;
            load[dev] += costs[f].max(1.0);
        }
        Placement {
            device_of,
            num_devices,
        }
    }

    /// Feature indices on one device, in model order.
    pub fn features_on(&self, device: usize) -> Vec<usize> {
        self.device_of
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == device)
            .map(|(f, _)| f)
            .collect()
    }

    /// The sub-model a device serves: `model`'s features on `device`, in
    /// model order, named `{model}@shard{device}`. A single-device
    /// placement keeps the parent name so its tables (seeded from the
    /// model name) stay identical to the unsharded deployment.
    pub fn sub_model(&self, model: &ModelConfig, device: usize) -> ModelConfig {
        let name = if self.num_devices == 1 {
            model.name.clone()
        } else {
            format!("{}@shard{device}", model.name)
        };
        ModelConfig {
            name,
            features: self
                .features_on(device)
                .iter()
                .map(|&f| model.features[f].clone())
                .collect(),
        }
    }

    /// Project a batch onto one device's features (same sample axis,
    /// device-local feature order).
    pub fn project_batch(&self, batch: &Batch, device: usize) -> Batch {
        Batch {
            batch_size: batch.batch_size,
            features: self
                .features_on(device)
                .iter()
                .map(|&f| batch.features[f].clone())
                .collect(),
        }
    }

    /// Load imbalance: max device weight / mean device weight under the
    /// given per-feature weights.
    pub fn imbalance(&self, weights: &[f64]) -> f64 {
        let mut load = vec![0.0f64; self.num_devices];
        for (f, &d) in self.device_of.iter().enumerate() {
            load[d] += weights[f];
        }
        let max = load.iter().copied().fold(0.0f64, f64::max);
        let mean = load.iter().sum::<f64>() / self.num_devices as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Assignment of whole *models* to device classes — the fleet-level
/// analogue of [`Placement`]. Where `Placement` splits one model's
/// features across homogeneous shards, `FleetAssignment` decides which
/// device *class* (V100-pool, A100-pool, edge-pool, …) each model's
/// sharded runtime runs on, subject to per-class device capacity.
///
/// Three strategies mirror the single-model policies:
///
/// * [`FleetAssignment::round_robin`] — capacity-aware striping, blind to
///   cost (the strawman the experiment binary gates against),
/// * [`FleetAssignment::homogeneous`] — everything on one class (the
///   "just buy more of the same GPU" baseline),
/// * [`FleetAssignment::cheapest_fit`] — heterogeneity-aware: each model
///   goes to the class where its *measured tuned-schedule cost* is lowest
///   (Hercules-style), processed in descending regret order so the models
///   with the most to lose from a wrong class pick first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAssignment {
    /// `model_idx → device class` in fleet order.
    pub class_of: Vec<usize>,
    /// Number of device classes in the pool.
    pub num_classes: usize,
}

impl FleetAssignment {
    /// Capacity-aware striping: model `m` tries class `m mod C`, then
    /// cycles forward to the next class with room. If no class has room
    /// for the model's demand, it lands on its home stripe anyway (the
    /// pool is oversubscribed; someone has to absorb it).
    pub fn round_robin(demand: &[usize], capacity: &[usize]) -> Self {
        let num_classes = capacity.len();
        assert!(num_classes >= 1);
        let mut free: Vec<isize> = capacity.iter().map(|&c| c as isize).collect();
        let mut class_of = Vec::with_capacity(demand.len());
        for (m, &d) in demand.iter().enumerate() {
            let home = m % num_classes;
            let chosen = (0..num_classes)
                .map(|k| (home + k) % num_classes)
                .find(|&c| free[c] >= d as isize)
                .unwrap_or(home);
            free[chosen] -= d as isize;
            class_of.push(chosen);
        }
        FleetAssignment {
            class_of,
            num_classes,
        }
    }

    /// Everything on one class — the homogeneous-pool baseline.
    pub fn homogeneous(num_models: usize, class: usize, num_classes: usize) -> Self {
        assert!(class < num_classes);
        FleetAssignment {
            class_of: vec![class; num_models],
            num_classes,
        }
    }

    /// Heterogeneity-aware placement over a measured cost matrix:
    /// `costs[m][c]` is model `m`'s per-sample cost on class `c` (tuned
    /// schedule, measured — not a proxy). Models are processed in
    /// descending *regret* (second-cheapest minus cheapest class, ties by
    /// model index), so the model that loses the most from missing its
    /// best class claims capacity first. Each model takes the cheapest
    /// class with `demand[m]` devices still free; if none has room it
    /// takes its cheapest class regardless (documented oversubscription —
    /// capacity then gates throughput, not placement).
    pub fn cheapest_fit(costs: &[Vec<f64>], demand: &[usize], capacity: &[usize]) -> Self {
        let num_classes = capacity.len();
        assert!(num_classes >= 1);
        assert_eq!(costs.len(), demand.len());
        assert!(costs.iter().all(|row| row.len() == num_classes));
        // Per-model class preference, ascending cost, ties by class index.
        let prefs: Vec<Vec<usize>> = costs
            .iter()
            .map(|row| {
                let mut order: Vec<usize> = (0..num_classes).collect();
                order.sort_by(|&a, &b| row[a].total_cmp(&row[b]).then(a.cmp(&b)));
                order
            })
            .collect();
        let regret = |m: usize| -> f64 {
            if num_classes < 2 {
                return 0.0;
            }
            costs[m][prefs[m][1]] - costs[m][prefs[m][0]]
        };
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by(|&a, &b| regret(b).total_cmp(&regret(a)).then(a.cmp(&b)));
        let mut free: Vec<isize> = capacity.iter().map(|&c| c as isize).collect();
        let mut class_of = vec![0usize; costs.len()];
        for m in order {
            let chosen = prefs[m]
                .iter()
                .copied()
                .find(|&c| free[c] >= demand[m] as isize)
                .unwrap_or(prefs[m][0]);
            free[chosen] -= demand[m] as isize;
            class_of[m] = chosen;
        }
        FleetAssignment {
            class_of,
            num_classes,
        }
    }

    /// Re-place one drained model against *residual* capacity: the
    /// elasticity move [`cheapest_fit`](Self::cheapest_fit) solves at
    /// fleet-build time, re-solved mid-run for a single member. `costs`
    /// is the model's per-sample cost row across classes, `residual`
    /// the free devices per class right now, `banned` the classes the
    /// controller refuses (the member's failing current class, classes
    /// inside an outage window). Returns the cheapest admissible class
    /// (ties toward the lower class index), or `None` when no class can
    /// absorb `demand` — unlike `cheapest_fit` there is *no*
    /// oversubscription fallback: a migration that cannot land whole is
    /// aborted, not forced.
    pub fn rehome(
        costs: &[f64],
        demand: usize,
        residual: &[isize],
        banned: &[bool],
    ) -> Option<usize> {
        assert_eq!(costs.len(), residual.len());
        assert_eq!(costs.len(), banned.len());
        (0..costs.len())
            .filter(|&c| !banned[c] && residual[c] >= demand as isize)
            .min_by(|&a, &b| costs[a].total_cmp(&costs[b]).then(a.cmp(&b)))
    }

    /// Model indices assigned to one class, in fleet order.
    pub fn models_on(&self, class: usize) -> Vec<usize> {
        self.class_of
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == class)
            .map(|(m, _)| m)
            .collect()
    }

    /// Devices consumed per class under the given per-model demand.
    pub fn devices_used(&self, demand: &[usize]) -> Vec<usize> {
        let mut used = vec![0usize; self.num_classes];
        for (m, &c) in self.class_of.iter().enumerate() {
            used[c] += demand[m];
        }
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPreset;
    use proptest::prelude::*;

    #[test]
    fn round_robin_stripes() {
        let m = ModelPreset::A.scaled(0.01);
        let p = Placement::round_robin(&m, 3);
        for (f, &d) in p.device_of.iter().enumerate() {
            assert_eq!(d, f % 3);
        }
    }

    #[test]
    fn balance_by_cost_puts_heavy_features_apart() {
        let costs = [100.0, 90.0, 1.0, 1.0];
        let p = Placement::balance_by_cost(2, &costs);
        assert_ne!(
            p.device_of[0], p.device_of[1],
            "the two heavy features must land on different devices"
        );
        assert!(
            p.imbalance(&costs) < 1.2,
            "imbalance {}",
            p.imbalance(&costs)
        );
    }

    #[test]
    fn balance_is_deterministic_under_ties() {
        let costs = [5.0; 8];
        let a = Placement::balance_by_cost(4, &costs);
        let b = Placement::balance_by_cost(4, &costs);
        assert_eq!(a, b);
    }

    #[test]
    fn single_device_sub_model_keeps_parent_name() {
        let m = ModelPreset::A.scaled(0.01);
        let p = Placement::balance(&m, 1);
        let sub = p.sub_model(&m, 0);
        assert_eq!(sub.name, m.name);
        assert_eq!(sub.features, m.features);
        let p4 = Placement::balance(&m, 4);
        assert!(p4.sub_model(&m, 2).name.ends_with("@shard2"));
    }

    #[test]
    fn project_batch_keeps_sample_axis() {
        let m = ModelPreset::A.scaled(0.01);
        let p = Placement::balance(&m, 3);
        let b = Batch::generate(&m, 16, 7);
        for d in 0..3 {
            let sub = p.project_batch(&b, d);
            assert_eq!(sub.batch_size, 16);
            assert_eq!(sub.features.len(), p.features_on(d).len());
        }
    }

    proptest! {
        /// Every policy yields an exhaustive, disjoint partition: each
        /// feature appears on exactly one device and device ids are in
        /// range, for arbitrary feature/device counts.
        #[test]
        fn partitions_are_exhaustive_and_disjoint(
            num_features in 0usize..64,
            num_devices in 1usize..9,
            seed in 0u64..1000,
        ) {
            let costs: Vec<f64> = (0..num_features)
                .map(|f| ((seed.wrapping_mul(0x9E37_79B9).wrapping_add(f as u64)) % 997) as f64)
                .collect();
            for p in [
                Placement::balance_by_cost(num_devices, &costs),
                {
                    // round_robin needs a model; synthesize device_of directly.
                    Placement {
                        device_of: (0..num_features).map(|f| f % num_devices).collect(),
                        num_devices,
                    }
                },
            ] {
                prop_assert_eq!(p.device_of.len(), num_features);
                prop_assert!(p.device_of.iter().all(|&d| d < num_devices));
                // Exhaustive + disjoint: the per-device feature lists tile
                // 0..num_features exactly once, in order.
                let mut seen = vec![0u32; num_features];
                for d in 0..num_devices {
                    for f in p.features_on(d) {
                        seen[f] += 1;
                    }
                }
                prop_assert!(seen.iter().all(|&c| c == 1));
            }
        }

        /// LPT never does worse than the trivial bound: max load <= total.
        #[test]
        fn lpt_imbalance_is_bounded(
            num_features in 1usize..40,
            num_devices in 1usize..6,
            seed in 0u64..1000,
        ) {
            let costs: Vec<f64> = (0..num_features)
                .map(|f| ((seed.wrapping_mul(0x517C_C1B7).wrapping_add(f as u64 * 31)) % 1000) as f64)
                .collect();
            let p = Placement::balance_by_cost(num_devices, &costs);
            let imb = p.imbalance(&costs);
            prop_assert!(imb >= 1.0 - 1e-9);
            prop_assert!(imb <= num_devices as f64 + 1e-9);
        }
    }

    #[test]
    fn cheapest_fit_sends_each_model_to_its_best_class() {
        // Two models, two classes, ample capacity: each gets its argmin.
        let costs = vec![vec![1.0, 5.0], vec![8.0, 2.0]];
        let a = FleetAssignment::cheapest_fit(&costs, &[1, 1], &[4, 4]);
        assert_eq!(a.class_of, vec![0, 1]);
        assert_eq!(a.devices_used(&[1, 1]), vec![1, 1]);
    }

    #[test]
    fn cheapest_fit_high_regret_model_claims_capacity_first() {
        // Class 0 has room for one device. Model 1 barely cares
        // (regret 0.1) while model 0 loses 10.0 off its best class — so
        // model 0 must get the contended slot even though model 1 has the
        // lower index.
        let costs = vec![vec![1.0, 11.0], vec![1.0, 1.1]];
        let a = FleetAssignment::cheapest_fit(&costs, &[1, 1], &[1, 4]);
        assert_eq!(a.class_of[0], 0);
        assert_eq!(a.class_of[1], 1);
    }

    #[test]
    fn cheapest_fit_overflows_to_cheapest_when_nothing_fits() {
        // Demand 3 exceeds every class's capacity: the model still lands
        // on its cheapest class rather than panicking.
        let costs = vec![vec![4.0, 2.0]];
        let a = FleetAssignment::cheapest_fit(&costs, &[3], &[1, 1]);
        assert_eq!(a.class_of, vec![1]);
    }

    #[test]
    fn rehome_picks_cheapest_admissible_class() {
        let costs = vec![4.0, 1.0, 2.0];
        // Cheapest class 1 is banned (say, it is the failing class);
        // class 2 is next-cheapest with room.
        assert_eq!(
            FleetAssignment::rehome(&costs, 2, &[3, 3, 3], &[false, true, false]),
            Some(2)
        );
        // With nothing banned the global argmin wins.
        assert_eq!(
            FleetAssignment::rehome(&costs, 2, &[3, 3, 3], &[false; 3]),
            Some(1)
        );
        // Cost ties break toward the lower class index.
        assert_eq!(
            FleetAssignment::rehome(&[1.0, 1.0], 1, &[2, 2], &[false, false]),
            Some(0)
        );
    }

    #[test]
    fn rehome_refuses_to_oversubscribe() {
        // Unlike cheapest_fit there is no overflow fallback: demand 2
        // against residuals [1, 0] must abort the migration.
        assert_eq!(
            FleetAssignment::rehome(&[1.0, 2.0], 2, &[1, 0], &[false, false]),
            None
        );
        // All classes banned likewise aborts.
        assert_eq!(
            FleetAssignment::rehome(&[1.0, 2.0], 1, &[4, 4], &[true, true]),
            None
        );
    }

    #[test]
    fn fleet_round_robin_stripes_and_respects_capacity() {
        // Four 1-device models over three classes with capacity [1,1,4]:
        // model 0 → 0, model 1 → 1, model 2 → 2, model 3 wants 0 (full)
        // and cycles forward to 1 (full) then 2.
        let a = FleetAssignment::round_robin(&[1, 1, 1, 1], &[1, 1, 4]);
        assert_eq!(a.class_of, vec![0, 1, 2, 2]);
        assert_eq!(a.models_on(2), vec![2, 3]);
    }

    #[test]
    fn homogeneous_puts_everything_on_one_class() {
        let a = FleetAssignment::homogeneous(5, 1, 3);
        assert!(a.class_of.iter().all(|&c| c == 1));
        assert_eq!(a.devices_used(&[1, 2, 1, 1, 2]), vec![0, 7, 0]);
    }

    proptest! {
        /// All three fleet strategies produce in-range classes, cover
        /// every model exactly once, and are deterministic.
        #[test]
        fn fleet_assignments_are_valid_and_deterministic(
            num_models in 1usize..10,
            num_classes in 1usize..5,
            seed in 0u64..500,
        ) {
            let costs: Vec<Vec<f64>> = (0..num_models)
                .map(|m| (0..num_classes)
                    .map(|c| ((seed
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add((m * 7 + c * 13) as u64)) % 997 + 1) as f64)
                    .collect())
                .collect();
            let demand = vec![1usize; num_models];
            let capacity = vec![num_models; num_classes];
            for a in [
                FleetAssignment::cheapest_fit(&costs, &demand, &capacity),
                FleetAssignment::round_robin(&demand, &capacity),
                FleetAssignment::homogeneous(num_models, 0, num_classes),
            ] {
                prop_assert_eq!(a.class_of.len(), num_models);
                prop_assert!(a.class_of.iter().all(|&c| c < num_classes));
                let mut seen = vec![0u32; num_models];
                for c in 0..num_classes {
                    for m in a.models_on(c) {
                        seen[m] += 1;
                    }
                }
                prop_assert!(seen.iter().all(|&n| n == 1));
                prop_assert_eq!(
                    a.devices_used(&demand).iter().sum::<usize>(),
                    num_models
                );
            }
            let a1 = FleetAssignment::cheapest_fit(&costs, &demand, &capacity);
            let a2 = FleetAssignment::cheapest_fit(&costs, &demand, &capacity);
            prop_assert_eq!(a1, a2);
        }
    }
}
