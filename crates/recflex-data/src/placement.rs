//! Feature-to-device placement for model-parallel sharding.
//!
//! When embedding tables exceed one GPU's memory, the paper places tables
//! on multiple GPUs "through heuristics" and optimizes each GPU's share
//! independently (Section VII). The placement itself is a pure partition
//! of the model's feature list, so it lives here in the data layer where
//! both the offline engine (`recflex-core::sharding`) and the online
//! serving tier (`recflex-serve::sharded`) can reach it.
//!
//! Three policies, from naive to informed:
//!
//! * [`Placement::round_robin`] — feature `f` goes to device `f mod N`;
//!   ignores weight entirely (the strawman baseline),
//! * [`Placement::balance`] — greedy longest-processing-time over each
//!   feature's *expected traffic* (expected lookups/sample × row bytes),
//! * [`Placement::balance_by_cost`] — the same LPT greedy over arbitrary
//!   caller-supplied per-feature costs, e.g. tuned per-feature latency
//!   estimates. Traffic is a proxy; measured device time is the quantity
//!   the slowest shard actually gates on.

use serde::{Deserialize, Serialize};

use crate::batch::Batch;
use crate::feature::{FeatureSpec, ModelConfig};

/// Assignment of model features to devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// `feature_idx → device` in model order.
    pub device_of: Vec<usize>,
    /// Number of devices.
    pub num_devices: usize,
}

impl Placement {
    /// Naive striping: feature `f` lands on device `f mod num_devices`.
    pub fn round_robin(model: &ModelConfig, num_devices: usize) -> Self {
        assert!(num_devices >= 1);
        Placement {
            device_of: (0..model.features.len()).map(|f| f % num_devices).collect(),
            num_devices,
        }
    }

    /// Greedy LPT placement: features sorted by expected per-batch bytes,
    /// each assigned to the currently lightest device.
    pub fn balance(model: &ModelConfig, num_devices: usize) -> Self {
        let weight = |f: &FeatureSpec| f.expected_lookups_per_sample() * f.row_bytes() as f64;
        let costs: Vec<f64> = model.features.iter().map(weight).collect();
        Self::balance_by_cost(num_devices, &costs)
    }

    /// Greedy LPT placement over explicit per-feature costs (any
    /// nonnegative unit — bytes, µs of tuned latency, …). Costs are
    /// clamped to a small positive floor so zero-cost features still
    /// spread across devices instead of piling onto one.
    pub fn balance_by_cost(num_devices: usize, costs: &[f64]) -> Self {
        assert!(num_devices >= 1);
        let mut order: Vec<usize> = (0..costs.len()).collect();
        // Sort by descending cost; ties broken by feature index so the
        // placement is a pure function of its inputs.
        order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
        let mut load = vec![0.0f64; num_devices];
        let mut device_of = vec![0usize; costs.len()];
        for f in order {
            let dev = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("num_devices >= 1");
            device_of[f] = dev;
            load[dev] += costs[f].max(1.0);
        }
        Placement {
            device_of,
            num_devices,
        }
    }

    /// Feature indices on one device, in model order.
    pub fn features_on(&self, device: usize) -> Vec<usize> {
        self.device_of
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == device)
            .map(|(f, _)| f)
            .collect()
    }

    /// The sub-model a device serves: `model`'s features on `device`, in
    /// model order, named `{model}@shard{device}`. A single-device
    /// placement keeps the parent name so its tables (seeded from the
    /// model name) stay identical to the unsharded deployment.
    pub fn sub_model(&self, model: &ModelConfig, device: usize) -> ModelConfig {
        let name = if self.num_devices == 1 {
            model.name.clone()
        } else {
            format!("{}@shard{device}", model.name)
        };
        ModelConfig {
            name,
            features: self
                .features_on(device)
                .iter()
                .map(|&f| model.features[f].clone())
                .collect(),
        }
    }

    /// Project a batch onto one device's features (same sample axis,
    /// device-local feature order).
    pub fn project_batch(&self, batch: &Batch, device: usize) -> Batch {
        Batch {
            batch_size: batch.batch_size,
            features: self
                .features_on(device)
                .iter()
                .map(|&f| batch.features[f].clone())
                .collect(),
        }
    }

    /// Load imbalance: max device weight / mean device weight under the
    /// given per-feature weights.
    pub fn imbalance(&self, weights: &[f64]) -> f64 {
        let mut load = vec![0.0f64; self.num_devices];
        for (f, &d) in self.device_of.iter().enumerate() {
            load[d] += weights[f];
        }
        let max = load.iter().copied().fold(0.0f64, f64::max);
        let mean = load.iter().sum::<f64>() / self.num_devices as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPreset;
    use proptest::prelude::*;

    #[test]
    fn round_robin_stripes() {
        let m = ModelPreset::A.scaled(0.01);
        let p = Placement::round_robin(&m, 3);
        for (f, &d) in p.device_of.iter().enumerate() {
            assert_eq!(d, f % 3);
        }
    }

    #[test]
    fn balance_by_cost_puts_heavy_features_apart() {
        let costs = [100.0, 90.0, 1.0, 1.0];
        let p = Placement::balance_by_cost(2, &costs);
        assert_ne!(
            p.device_of[0], p.device_of[1],
            "the two heavy features must land on different devices"
        );
        assert!(
            p.imbalance(&costs) < 1.2,
            "imbalance {}",
            p.imbalance(&costs)
        );
    }

    #[test]
    fn balance_is_deterministic_under_ties() {
        let costs = [5.0; 8];
        let a = Placement::balance_by_cost(4, &costs);
        let b = Placement::balance_by_cost(4, &costs);
        assert_eq!(a, b);
    }

    #[test]
    fn single_device_sub_model_keeps_parent_name() {
        let m = ModelPreset::A.scaled(0.01);
        let p = Placement::balance(&m, 1);
        let sub = p.sub_model(&m, 0);
        assert_eq!(sub.name, m.name);
        assert_eq!(sub.features, m.features);
        let p4 = Placement::balance(&m, 4);
        assert!(p4.sub_model(&m, 2).name.ends_with("@shard2"));
    }

    #[test]
    fn project_batch_keeps_sample_axis() {
        let m = ModelPreset::A.scaled(0.01);
        let p = Placement::balance(&m, 3);
        let b = Batch::generate(&m, 16, 7);
        for d in 0..3 {
            let sub = p.project_batch(&b, d);
            assert_eq!(sub.batch_size, 16);
            assert_eq!(sub.features.len(), p.features_on(d).len());
        }
    }

    proptest! {
        /// Every policy yields an exhaustive, disjoint partition: each
        /// feature appears on exactly one device and device ids are in
        /// range, for arbitrary feature/device counts.
        #[test]
        fn partitions_are_exhaustive_and_disjoint(
            num_features in 0usize..64,
            num_devices in 1usize..9,
            seed in 0u64..1000,
        ) {
            let costs: Vec<f64> = (0..num_features)
                .map(|f| ((seed.wrapping_mul(0x9E37_79B9).wrapping_add(f as u64)) % 997) as f64)
                .collect();
            for p in [
                Placement::balance_by_cost(num_devices, &costs),
                {
                    // round_robin needs a model; synthesize device_of directly.
                    Placement {
                        device_of: (0..num_features).map(|f| f % num_devices).collect(),
                        num_devices,
                    }
                },
            ] {
                prop_assert_eq!(p.device_of.len(), num_features);
                prop_assert!(p.device_of.iter().all(|&d| d < num_devices));
                // Exhaustive + disjoint: the per-device feature lists tile
                // 0..num_features exactly once, in order.
                let mut seen = vec![0u32; num_features];
                for d in 0..num_devices {
                    for f in p.features_on(d) {
                        seen[f] += 1;
                    }
                }
                prop_assert!(seen.iter().all(|&c| c == 1));
            }
        }

        /// LPT never does worse than the trivial bound: max load <= total.
        #[test]
        fn lpt_imbalance_is_bounded(
            num_features in 1usize..40,
            num_devices in 1usize..6,
            seed in 0u64..1000,
        ) {
            let costs: Vec<f64> = (0..num_features)
                .map(|f| ((seed.wrapping_mul(0x517C_C1B7).wrapping_add(f as u64 * 31)) % 1000) as f64)
                .collect();
            let p = Placement::balance_by_cost(num_devices, &costs);
            let imb = p.imbalance(&costs);
            prop_assert!(imb >= 1.0 - 1e-9);
            prop_assert!(imb <= num_devices as f64 + 1e-9);
        }
    }
}
