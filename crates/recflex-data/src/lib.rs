//! # recflex-data — features, distributions and synthetic datasets
//!
//! The paper evaluates on datasets synthesized from observations of
//! production recommendation models, because public datasets "are too simple
//! to be representative … and exhibit low feature heterogeneity"
//! (Section VI-A). This crate reproduces that data layer:
//!
//! * [`FeatureSpec`] — one feature field: embedding-table shape, embedding
//!   dimension, pooling-factor distribution, coverage (presence probability)
//!   and row-popularity skew,
//! * [`PoolingDist`] — the distributions from the paper's generator: fixed,
//!   truncated normal (e.g. `N(50, 10²)` with 0.3 coverage, Figure 3) and
//!   power law,
//! * [`Batch`] — CSR-encoded lookup indices per feature (offsets + indices),
//!   exactly the layout the host-side workload analysis consumes,
//! * [`ModelConfig`] / [`ModelPreset`] — models A–E of Table I plus the
//!   10 000-feature scalability set and a 26-feature MLPerf-like
//!   low-heterogeneity set,
//! * [`Dataset`] — a set of historical batches for tuning plus fresh
//!   batches for evaluation.
//!
//! Everything is seeded and deterministic.

pub mod batch;
pub mod dataset;
pub mod distribution;
pub mod feature;
pub mod io;
pub mod models;
pub mod pipeline;
pub mod placement;
pub mod shift;

pub use batch::{Batch, FeatureBatch, SplitError};
pub use dataset::Dataset;
pub use distribution::PoolingDist;
pub use feature::{FeatureSpec, ModelConfig};
pub use io::{load_dataset, load_model, save_dataset, save_model};
pub use models::ModelPreset;
pub use pipeline::{BreakerStateStat, PipelineReport, StageStats};
pub use placement::{FleetAssignment, Placement};
pub use shift::shift_distribution;
