//! Pooling-factor distributions.
//!
//! The pooling factor — how many embedding rows one sample looks up for one
//! feature — is the primary axis of workload heterogeneity in the paper
//! (Figure 2b). The generator supports the distribution families the paper's
//! data-synthesis script exposes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of per-sample pooling factors for one feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PoolingDist {
    /// One-hot feature: always exactly one lookup (user ID, item ID, …).
    OneHot,
    /// Fixed multi-hot pooling factor, e.g. the paper's feature 1 in
    /// Figure 3 with a constant 50.
    Fixed(u32),
    /// Truncated normal `N(mean, std²)` clamped to `[1, max]`, the paper's
    /// canonical multi-hot distribution (`N(50, 10²)` in Figure 3).
    Normal {
        /// Distribution mean.
        mean: f64,
        /// Distribution standard deviation.
        std: f64,
        /// Upper truncation bound.
        max: u32,
    },
    /// Discrete power law on `[1, max]` with exponent `alpha > 0`: heavier
    /// `alpha` concentrates mass near 1 with a long tail, which models the
    /// "standard deviation up to hundreds" behaviour in Section II-C.
    PowerLaw {
        /// Tail exponent; larger is heavier-headed.
        alpha: f64,
        /// Upper bound of the support.
        max: u32,
    },
    /// Uniform integer in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound (≥ 1).
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
}

impl PoolingDist {
    /// Draw one pooling factor (always ≥ 1; absence is modelled separately
    /// by the feature's coverage).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        match *self {
            PoolingDist::OneHot => 1,
            PoolingDist::Fixed(k) => k.max(1),
            PoolingDist::Normal { mean, std, max } => {
                // Box–Muller using two uniforms; deterministic under a
                // seeded RNG and good enough for workload synthesis.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = mean + std * z;
                (v.round().max(1.0) as u32).min(max.max(1))
            }
            PoolingDist::PowerLaw { alpha, max } => {
                // Inverse-CDF sampling of p(k) ∝ k^-alpha on [1, max].
                let max = max.max(1) as f64;
                let u: f64 = rng.gen_range(0.0..1.0);
                let k = if (alpha - 1.0).abs() < 1e-9 {
                    max.powf(u)
                } else {
                    let a = 1.0 - alpha;
                    ((max.powf(a) - 1.0) * u + 1.0).powf(1.0 / a)
                };
                (k.floor().max(1.0) as u32).min(max as u32)
            }
            PoolingDist::Uniform { lo, hi } => {
                let lo = lo.max(1);
                let hi = hi.max(lo);
                rng.gen_range(lo..=hi)
            }
        }
    }

    /// Expected pooling factor, used by static thread mapping (the
    /// `StaticAverage` strategy of the Figure 13 ablation) and by sizing
    /// heuristics.
    pub fn mean(&self) -> f64 {
        match *self {
            PoolingDist::OneHot => 1.0,
            PoolingDist::Fixed(k) => k.max(1) as f64,
            PoolingDist::Normal { mean, max, .. } => mean.clamp(1.0, max.max(1) as f64),
            PoolingDist::PowerLaw { alpha, max } => {
                // E[k] = ∫₁^m k·k^{-α} dk / ∫₁^m k^{-α} dk for the
                // truncated continuous power law; both integrals have a
                // logarithmic special case (α = 2 and α = 1 respectively).
                fn power_integral(p: f64, m: f64) -> f64 {
                    if (p + 1.0).abs() < 1e-7 {
                        m.ln()
                    } else {
                        (m.powf(p + 1.0) - 1.0) / (p + 1.0)
                    }
                }
                let m = max.max(1) as f64;
                if m <= 1.0 {
                    1.0
                } else {
                    power_integral(1.0 - alpha, m) / power_integral(-alpha, m)
                }
            }
            PoolingDist::Uniform { lo, hi } => (lo.max(1) + hi.max(lo)) as f64 / 2.0,
        }
    }

    /// Upper bound of the support, used by the `StaticMax` mapping strategy.
    pub fn max(&self) -> u32 {
        match *self {
            PoolingDist::OneHot => 1,
            PoolingDist::Fixed(k) => k.max(1),
            PoolingDist::Normal { max, .. } => max.max(1),
            PoolingDist::PowerLaw { max, .. } => max.max(1),
            PoolingDist::Uniform { lo, hi } => hi.max(lo.max(1)),
        }
    }

    /// Whether this is a one-hot (single-lookup) feature.
    pub fn is_one_hot(&self) -> bool {
        matches!(self, PoolingDist::OneHot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn one_hot_is_always_one() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(PoolingDist::OneHot.sample(&mut r), 1);
        }
    }

    #[test]
    fn fixed_is_constant() {
        let mut r = rng();
        let d = PoolingDist::Fixed(50);
        assert!((0..100).all(|_| d.sample(&mut r) == 50));
        assert_eq!(d.mean(), 50.0);
        assert_eq!(d.max(), 50);
    }

    #[test]
    fn normal_concentrates_near_mean() {
        let mut r = rng();
        let d = PoolingDist::Normal {
            mean: 50.0,
            std: 10.0,
            max: 500,
        };
        let n = 20_000;
        let samples: Vec<u32> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "empirical mean {mean}");
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(
            (var.sqrt() - 10.0).abs() < 1.0,
            "empirical std {}",
            var.sqrt()
        );
        assert!(samples.iter().all(|&x| (1..=500).contains(&x)));
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let mut r = rng();
        let d = PoolingDist::PowerLaw {
            alpha: 1.5,
            max: 1000,
        };
        let n = 50_000;
        let samples: Vec<u32> = (0..n).map(|_| d.sample(&mut r)).collect();
        let ones = samples.iter().filter(|&&x| x <= 2).count();
        let big = samples.iter().filter(|&&x| x > 100).count();
        assert!(ones > n / 3, "mass near 1: {ones}/{n}");
        assert!(big > 0, "tail must be populated");
        assert!(samples.iter().all(|&x| (1..=1000).contains(&x)));
    }

    #[test]
    fn uniform_in_bounds_and_mean() {
        let mut r = rng();
        let d = PoolingDist::Uniform { lo: 10, hi: 20 };
        assert!((0..1000).all(|_| (10..=20).contains(&d.sample(&mut r))));
        assert_eq!(d.mean(), 15.0);
    }

    #[test]
    fn samples_never_below_one() {
        let mut r = rng();
        for d in [
            PoolingDist::Normal {
                mean: 1.0,
                std: 30.0,
                max: 100,
            },
            PoolingDist::PowerLaw {
                alpha: 3.0,
                max: 10,
            },
            PoolingDist::Fixed(0),
            PoolingDist::Uniform { lo: 0, hi: 0 },
        ] {
            for _ in 0..500 {
                assert!(d.sample(&mut r) >= 1);
            }
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let d = PoolingDist::Normal {
            mean: 80.0,
            std: 25.0,
            max: 400,
        };
        let a: Vec<u32> = {
            let mut r = rng();
            (0..64).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u32> = {
            let mut r = rng();
            (0..64).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_mean_near_special_alphas() {
        // The truncated-power-law mean has removable singularities at
        // alpha = 1 and alpha = 2; the formula must be continuous there.
        for max in [50u32, 500] {
            for center in [1.0f64, 2.0] {
                let below = PoolingDist::PowerLaw {
                    alpha: center - 1e-6,
                    max,
                }
                .mean();
                let at = PoolingDist::PowerLaw { alpha: center, max }.mean();
                let above = PoolingDist::PowerLaw {
                    alpha: center + 1e-6,
                    max,
                }
                .mean();
                assert!(below.is_finite() && at.is_finite() && above.is_finite());
                assert!(
                    (below - above).abs() / at < 0.01,
                    "discontinuity at alpha={center}, max={max}: {below} vs {above}"
                );
            }
        }
    }

    #[test]
    fn power_law_empirical_mean_tracks_formula() {
        let mut rng = StdRng::seed_from_u64(3);
        for alpha in [1.2f64, 1.8, 2.4] {
            let d = PoolingDist::PowerLaw { alpha, max: 300 };
            let n = 60_000;
            let emp: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
            let model = d.mean();
            let rel = (emp - model).abs() / model;
            assert!(
                rel < 0.15,
                "alpha {alpha}: empirical {emp} vs formula {model}"
            );
        }
    }

    #[test]
    fn normal_with_tiny_max_clamps() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = PoolingDist::Normal {
            mean: 100.0,
            std: 50.0,
            max: 3,
        };
        for _ in 0..200 {
            let v = d.sample(&mut rng);
            assert!((1..=3).contains(&v));
        }
        assert!(d.mean() <= 3.0);
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = PoolingDist::Uniform { lo: 5, hi: 5 };
        assert!((0..50).all(|_| d.sample(&mut rng) == 5));
        let swapped = PoolingDist::Uniform { lo: 9, hi: 2 };
        assert!(
            (0..50).all(|_| swapped.sample(&mut rng) == 9),
            "hi < lo clamps to lo"
        );
    }
}
