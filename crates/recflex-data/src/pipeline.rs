//! Plain per-stage statistics for multi-stage serving pipelines.
//!
//! The serving crate's `recflex_serve::pipeline` runtime produces a
//! [`PipelineReport`] summarizing one end-to-end run of a
//! retrieval → (filtering) → ranking cascade: per-stage SLO-budget
//! attainment, fallback/degradation counts, retry amplification and
//! circuit-breaker state transitions, plus the pipeline-level
//! availability and tail latency. The types live here — not in the
//! serving crate — so benches, trajectory baselines (`BENCH_*.json`)
//! and external tooling can consume the numbers without depending on
//! the simulator; everything is plain data and serializes with the
//! same key names (`availability`, `p99_us`, …) the `bench_check`
//! regression gate tracks.

use serde::{Deserialize, Serialize};

/// Circuit-breaker state, mirrored as plain data (the live state
/// machine lives in the serving crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerStateStat {
    /// Traffic flows; failure pressure is below the trip threshold.
    Closed,
    /// Tripped: the stage is skipped and served by its fallback.
    Open,
    /// Cooldown elapsed: one probe execution decides reopen-or-close.
    HalfOpen,
}

impl BreakerStateStat {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BreakerStateStat::Closed => "closed",
            BreakerStateStat::Open => "open",
            BreakerStateStat::HalfOpen => "half-open",
        }
    }
}

/// One stage's aggregate statistics over a pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage label (`retrieval`, `filtering`, `ranking`, …).
    pub name: String,
    /// Chunks admitted into the stage (first attempts actually served —
    /// fallback-skipped chunks are not admitted).
    pub admitted: u64,
    /// Chunks the stage executed, including retries. The retry-storm
    /// gate bounds `executions / admitted`.
    pub executions: u64,
    /// Retry executions granted (naive: every failure until the attempt
    /// cap; budgeted: only while the token bucket has budget).
    pub retries: u64,
    /// Retries the token bucket refused (budgeted policy only).
    pub retries_denied: u64,
    /// Chunks answered by the stage's fallback (ranking →
    /// retrieval-order scores, filtering → skipped) instead of a shed.
    pub fallbacks: u64,
    /// Chunks that finished past the stage's deadline-budget share.
    pub late: u64,
    /// Chunks shed inside the stage (admission or fault).
    pub faulted: u64,
    /// Fraction of chunks that consumed no more than the stage's
    /// budget share (per surviving chunk; 1.0 for an idle stage).
    pub attainment: f64,
    /// Closed → Open transitions over the run.
    pub breaker_trips: u64,
    /// Breaker state when the run ended.
    pub breaker_final: BreakerStateStat,
}

impl StageStats {
    /// An empty accumulator for one named stage.
    pub fn named(name: impl Into<String>) -> Self {
        StageStats {
            name: name.into(),
            admitted: 0,
            executions: 0,
            retries: 0,
            retries_denied: 0,
            fallbacks: 0,
            late: 0,
            faulted: 0,
            attainment: 1.0,
            breaker_trips: 0,
            breaker_final: BreakerStateStat::Closed,
        }
    }
}

/// End-to-end statistics of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// The end-to-end SLO every answer is measured against, µs.
    pub slo_us: f64,
    /// Requests offered to the pipeline.
    pub offered: u64,
    /// Requests that produced an answer (full-quality or degraded).
    pub answered: u64,
    /// Answers that landed within the end-to-end SLO.
    pub answered_in_slo: u64,
    /// Answers carrying at least one degraded-stage bit.
    pub degraded_answers: u64,
    /// `answered_in_slo / offered` — degraded answers count, late and
    /// shed ones do not.
    pub availability: f64,
    /// Median end-to-end latency over answered requests, µs.
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency over answered requests, µs.
    pub p99_us: f64,
    /// Last completion instant, µs.
    pub makespan_us: f64,
    /// Sum of [`StageStats::executions`] over all stages.
    pub total_executions: u64,
    /// Sum of [`StageStats::admitted`] over all stages.
    pub total_admitted: u64,
    /// `total_executions / total_admitted` — 1.0 means zero retry
    /// amplification; the budgeted-policy gate caps this at 1.2.
    pub amplification: f64,
    /// Per-stage statistics, in pipeline order.
    pub stages: Vec<StageStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_labels_are_stable() {
        assert_eq!(BreakerStateStat::Closed.label(), "closed");
        assert_eq!(BreakerStateStat::Open.label(), "open");
        assert_eq!(BreakerStateStat::HalfOpen.label(), "half-open");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = PipelineReport {
            slo_us: 8_000.0,
            offered: 64,
            answered: 60,
            answered_in_slo: 58,
            degraded_answers: 5,
            availability: 58.0 / 64.0,
            p50_us: 900.0,
            p99_us: 4_100.0,
            makespan_us: 20_000.0,
            total_executions: 130,
            total_admitted: 124,
            amplification: 130.0 / 124.0,
            stages: vec![
                StageStats::named("retrieval"),
                StageStats {
                    breaker_trips: 1,
                    breaker_final: BreakerStateStat::Open,
                    fallbacks: 12,
                    ..StageStats::named("ranking")
                },
            ],
        };
        let text = serde_json::to_string(&report).expect("serialize");
        let back: PipelineReport = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, report);
    }
}
