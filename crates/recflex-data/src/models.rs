//! Model presets: Table I of the paper plus the extra evaluation sets.
//!
//! | Model | # Features | # One-hot | # Multi-hot | Emb. Dim. |
//! |-------|-----------|-----------|-------------|-----------|
//! | A     | 1000      | 500       | 500         | 4–128     |
//! | B     | 1200      | 1000      | 200         | 4–128     |
//! | C     | 800       | 0         | 800         | 4–128     |
//! | D     | 1000      | 500       | 500         | 8         |
//! | E     | 1000      | 500       | 500         | 32        |
//!
//! plus `Scale10k` (10 000 features, Section VI-B scalability) and
//! `MLPerfLike` (26 homogeneous multi-hot features, the low-heterogeneity
//! MLPerf/criteo-style set on which RecFlex ties TorchRec).
//!
//! The presets are generated from a fixed internal seed so every run of the
//! reproduction sees the identical models.

use crate::distribution::PoolingDist;
use crate::feature::{FeatureSpec, ModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The evaluation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// 1000 features, 500 one-hot / 500 multi-hot, dims 4–128.
    A,
    /// 1200 features, 1000 one-hot / 200 multi-hot, dims 4–128.
    B,
    /// 800 features, all multi-hot, dims 4–128.
    C,
    /// 1000 features, 500/500, uniform dim 8 (HugeCTR-compatible).
    D,
    /// 1000 features, 500/500, uniform dim 32 (HugeCTR-compatible).
    E,
    /// 10 000 features for the scalability experiment.
    Scale10k,
    /// 26 homogeneous multi-hot features (MLPerf DLRM-style).
    MLPerfLike,
}

impl ModelPreset {
    /// All Table I models, in paper order.
    pub const TABLE1: [ModelPreset; 5] = [
        ModelPreset::A,
        ModelPreset::B,
        ModelPreset::C,
        ModelPreset::D,
        ModelPreset::E,
    ];

    /// Preset name as printed in tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelPreset::A => "A",
            ModelPreset::B => "B",
            ModelPreset::C => "C",
            ModelPreset::D => "D",
            ModelPreset::E => "E",
            ModelPreset::Scale10k => "Scale10k",
            ModelPreset::MLPerfLike => "MLPerfLike",
        }
    }

    /// Build the full-size model.
    pub fn build(&self) -> ModelConfig {
        self.scaled(1.0)
    }

    /// Build a model with `frac` of the preset's feature count (≥ 4
    /// features), preserving the one-hot/multi-hot mix and dim spread.
    /// Tests and examples use small fractions so functional execution
    /// stays fast.
    pub fn scaled(&self, frac: f64) -> ModelConfig {
        let (one_hot, multi_hot, dims): (usize, usize, &[u32]) = match self {
            ModelPreset::A => (500, 500, &[4, 8, 16, 32, 64, 128]),
            ModelPreset::B => (1000, 200, &[4, 8, 16, 32, 64, 128]),
            ModelPreset::C => (0, 800, &[4, 8, 16, 32, 64, 128]),
            ModelPreset::D => (500, 500, &[8]),
            ModelPreset::E => (500, 500, &[32]),
            ModelPreset::Scale10k => (5000, 5000, &[4, 8, 16, 32, 64, 128]),
            ModelPreset::MLPerfLike => (0, 26, &[128]),
        };
        let scale = frac.clamp(0.0, 1.0);
        let n_one = ((one_hot as f64 * scale).round() as usize).min(one_hot);
        let mut n_multi = ((multi_hot as f64 * scale).round() as usize).min(multi_hot);
        if n_one + n_multi < 4 {
            n_multi = (4 - n_one).min(multi_hot.max(4));
        }

        // Fixed seed per preset: the models are part of the benchmark
        // definition, not of any experiment's randomness.
        let mut rng = StdRng::seed_from_u64(0x5EC_F1EC ^ (*self as u64));
        let mut features = Vec::with_capacity(n_one + n_multi);
        for i in 0..n_one {
            features.push(Self::one_hot_feature(i, dims, &mut rng));
        }
        for i in 0..n_multi {
            features.push(self.multi_hot_feature(n_one + i, dims, &mut rng));
        }
        ModelConfig {
            name: self.name().to_string(),
            features,
        }
    }

    fn one_hot_feature(idx: usize, dims: &[u32], rng: &mut StdRng) -> FeatureSpec {
        // One-hot fields are ID-like: large tables, skewed popularity.
        let emb_dim = dims[rng.gen_range(0..dims.len())];
        let table_rows = *[20_000u32, 100_000, 500_000][..]
            .get(rng.gen_range(0..3usize))
            .unwrap();
        FeatureSpec {
            name: format!("f{idx:05}"),
            table_rows,
            emb_dim,
            pooling: PoolingDist::OneHot,
            coverage: 1.0,
            row_skew: rng.gen_range(0.5..2.0),
        }
    }

    fn multi_hot_feature(&self, idx: usize, dims: &[u32], rng: &mut StdRng) -> FeatureSpec {
        let emb_dim = dims[rng.gen_range(0..dims.len())];
        if matches!(self, ModelPreset::MLPerfLike) {
            // Homogeneous: identical distribution across all 26 fields.
            return FeatureSpec {
                name: format!("f{idx:05}"),
                table_rows: 40_000,
                emb_dim,
                pooling: PoolingDist::Fixed(20),
                coverage: 1.0,
                row_skew: 1.0,
            };
        }
        // Heterogeneous multi-hot: wide spread of pooling behaviour, the
        // phenomenon of paper Figure 2(b).
        let pooling = match rng.gen_range(0..4) {
            0 => PoolingDist::Fixed(rng.gen_range(5..=80)),
            1 => {
                let mean = rng.gen_range(10.0..200.0);
                PoolingDist::Normal {
                    mean,
                    std: mean / 4.0,
                    max: (mean * 4.0) as u32,
                }
            }
            2 => PoolingDist::PowerLaw {
                alpha: rng.gen_range(1.1..2.0),
                max: rng.gen_range(100..800),
            },
            _ => PoolingDist::Uniform {
                lo: 1,
                hi: rng.gen_range(20..150),
            },
        };
        let table_rows = *[2_000u32, 20_000, 100_000][..]
            .get(rng.gen_range(0..3usize))
            .unwrap();
        FeatureSpec {
            name: format!("f{idx:05}"),
            table_rows,
            emb_dim,
            pooling,
            coverage: if rng.gen_bool(0.5) {
                1.0
            } else {
                rng.gen_range(0.3..1.0)
            },
            row_skew: rng.gen_range(0.0..1.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_statistics_match_paper() {
        let a = ModelPreset::A.build();
        assert_eq!(a.num_features(), 1000);
        assert_eq!(a.num_one_hot(), 500);
        assert_eq!(a.num_multi_hot(), 500);
        let (lo, hi) = a.dim_range();
        assert_eq!((lo, hi), (4, 128));

        let b = ModelPreset::B.build();
        assert_eq!(
            (b.num_features(), b.num_one_hot(), b.num_multi_hot()),
            (1200, 1000, 200)
        );

        let c = ModelPreset::C.build();
        assert_eq!((c.num_features(), c.num_one_hot()), (800, 0));

        let d = ModelPreset::D.build();
        assert_eq!(d.uniform_dim(), Some(8));
        assert_eq!((d.num_one_hot(), d.num_multi_hot()), (500, 500));

        let e = ModelPreset::E.build();
        assert_eq!(e.uniform_dim(), Some(32));
    }

    #[test]
    fn scale10k_and_mlperf() {
        // Scale10k is big; just check the scaled variant's mix.
        let s = ModelPreset::Scale10k.scaled(0.01);
        assert_eq!(s.num_features(), 100);
        let m = ModelPreset::MLPerfLike.build();
        assert_eq!(m.num_features(), 26);
        assert_eq!(m.uniform_dim(), Some(128));
    }

    #[test]
    fn presets_are_reproducible() {
        assert_eq!(ModelPreset::A.build(), ModelPreset::A.build());
        assert_eq!(ModelPreset::C.scaled(0.1), ModelPreset::C.scaled(0.1));
    }

    #[test]
    fn scaling_preserves_mix() {
        let a = ModelPreset::A.scaled(0.05);
        assert_eq!(a.num_features(), 50);
        assert_eq!(a.num_one_hot(), 25);
    }

    #[test]
    fn scaling_floors_at_four_features() {
        let tiny = ModelPreset::C.scaled(0.0001);
        assert!(tiny.num_features() >= 4);
    }

    #[test]
    fn heterogeneity_present_in_a_absent_in_mlperf() {
        let a = ModelPreset::A.scaled(0.1);
        let dims: std::collections::BTreeSet<u32> = a.features.iter().map(|f| f.emb_dim).collect();
        assert!(
            dims.len() >= 4,
            "model A must be heterogeneous, dims {dims:?}"
        );
        let m = ModelPreset::MLPerfLike.build();
        let mdims: std::collections::BTreeSet<u32> = m.features.iter().map(|f| f.emb_dim).collect();
        assert_eq!(mdims.len(), 1);
    }
}
