//! CSR-encoded input batches.
//!
//! A batch carries, per feature, the classic ragged layout of embedding
//! inputs: `offsets[s]..offsets[s+1]` are the positions in `indices` holding
//! sample `s`'s lookup IDs. This is the structure the host-side workload
//! analysis (paper Section IV-B) scans to build the runtime thread mapping.

use crate::feature::{FeatureSpec, ModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Lookup indices of one feature for one batch, in CSR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureBatch {
    /// `batch_size + 1` monotone offsets into `indices`.
    pub offsets: Vec<u32>,
    /// Concatenated lookup row IDs.
    pub indices: Vec<u32>,
}

impl FeatureBatch {
    /// An empty CSR for `batch_size` samples (feature absent everywhere).
    pub fn empty(batch_size: u32) -> Self {
        FeatureBatch {
            offsets: vec![0; batch_size as usize + 1],
            indices: Vec::new(),
        }
    }

    /// Number of samples.
    pub fn batch_size(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Total lookups across the batch.
    pub fn total_lookups(&self) -> u32 {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Pooling factor of sample `s`.
    pub fn pooling_factor(&self, s: u32) -> u32 {
        self.offsets[s as usize + 1] - self.offsets[s as usize]
    }

    /// Lookup IDs of sample `s`.
    pub fn sample_indices(&self, s: u32) -> &[u32] {
        let lo = self.offsets[s as usize] as usize;
        let hi = self.offsets[s as usize + 1] as usize;
        &self.indices[lo..hi]
    }

    /// Maximum pooling factor in the batch.
    pub fn max_pooling_factor(&self) -> u32 {
        (0..self.batch_size())
            .map(|s| self.pooling_factor(s))
            .max()
            .unwrap_or(0)
    }

    /// Count of distinct rows touched (sort-based, exact).
    pub fn unique_rows(&self) -> u32 {
        if self.indices.is_empty() {
            return 0;
        }
        let mut v = self.indices.clone();
        v.sort_unstable();
        v.dedup();
        v.len() as u32
    }

    /// Validate CSR invariants against a table size; used by tests and the
    /// debug asserts of the kernels.
    pub fn validate(&self, table_rows: u32) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets empty".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        if !self.offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets not monotone".into());
        }
        if *self.offsets.last().unwrap() as usize != self.indices.len() {
            return Err("last offset must equal indices length".into());
        }
        if let Some(&bad) = self.indices.iter().find(|&&i| i >= table_rows) {
            return Err(format!("index {bad} out of table range {table_rows}"));
        }
        Ok(())
    }

    /// The sub-CSR of samples `start..end`, offsets rebased to 0.
    pub fn slice(&self, start: u32, end: u32) -> FeatureBatch {
        let lo = self.offsets[start as usize];
        let hi = self.offsets[end as usize];
        let offsets = self.offsets[start as usize..=end as usize]
            .iter()
            .map(|&o| o - lo)
            .collect();
        let indices = self.indices[lo as usize..hi as usize].to_vec();
        FeatureBatch { offsets, indices }
    }

    /// Generate a CSR for `spec` with `batch_size` samples from `seed`.
    pub fn generate(spec: &FeatureSpec, batch_size: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(batch_size as usize + 1);
        let mut indices = Vec::new();
        offsets.push(0u32);
        for _ in 0..batch_size {
            let present = spec.coverage >= 1.0 || rng.gen_range(0.0..1.0) < spec.coverage;
            if present {
                let pf = spec.pooling.sample(&mut rng);
                for _ in 0..pf {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    let row = (spec.table_rows as f64 * u.powf(1.0 + spec.row_skew)) as u32;
                    indices.push(row.min(spec.table_rows - 1));
                }
            }
            offsets.push(indices.len() as u32);
        }
        FeatureBatch { offsets, indices }
    }
}

/// Why a [`Batch::split`] request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitError {
    /// A chunk capacity of zero can never make progress.
    ZeroCap,
}

impl std::fmt::Display for SplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitError::ZeroCap => write!(f, "split capacity must be at least 1"),
        }
    }
}

impl std::error::Error for SplitError {}

/// One inference request: a CSR per feature, all with the same batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// Samples in the request.
    pub batch_size: u32,
    /// Per-feature CSR inputs, in model feature order.
    pub features: Vec<FeatureBatch>,
}

impl Batch {
    /// Synthesize one batch for `model` (parallel across features,
    /// deterministic: each feature derives its own seed).
    pub fn generate(model: &ModelConfig, batch_size: u32, seed: u64) -> Self {
        let features: Vec<FeatureBatch> = model
            .features
            .par_iter()
            .enumerate()
            .map(|(i, spec)| {
                let fseed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64)
                    .rotate_left(17);
                FeatureBatch::generate(spec, batch_size, fseed)
            })
            .collect();
        Batch {
            batch_size,
            features,
        }
    }

    /// Total lookups across all features.
    pub fn total_lookups(&self) -> u64 {
        self.features.iter().map(|f| f.total_lookups() as u64).sum()
    }

    /// Split into chunks of at most `cap` samples, preserving sample order
    /// and CSR validity — the industrial batch-splitting practice of the
    /// paper's Section VI-D. The exact inverse is [`Batch::merge`]. An
    /// empty batch yields no chunks.
    ///
    /// Returns [`SplitError::ZeroCap`] instead of panicking on `cap == 0`,
    /// so a mis-configured server rejects the configuration rather than
    /// crashing its request loop.
    pub fn split(&self, cap: u32) -> Result<Vec<Batch>, SplitError> {
        if cap == 0 {
            return Err(SplitError::ZeroCap);
        }
        let n = self.batch_size;
        let mut out = Vec::with_capacity(n.div_ceil(cap) as usize);
        let mut start = 0u32;
        while start < n {
            let end = (start + cap).min(n);
            let features = self
                .features
                .iter()
                .map(|fb| fb.slice(start, end))
                .collect();
            out.push(Batch {
                batch_size: end - start,
                features,
            });
            start = end;
        }
        Ok(out)
    }

    /// Concatenate chunks back into one batch — the exact inverse of
    /// [`Batch::split`]: `Batch::merge(&b.split(cap)?) == b` for any `b`
    /// and `cap ≥ 1`, with CSR offsets and indices preserved exactly.
    /// This is what a dynamic batcher uses to coalesce small co-queued
    /// requests into one fused launch.
    ///
    /// Merging zero parts yields the empty zero-feature batch.
    ///
    /// # Panics
    /// If the parts disagree on feature count (they come from different
    /// models — never a recoverable condition for a batcher).
    pub fn merge(parts: &[Batch]) -> Batch {
        let Some(first) = parts.first() else {
            return Batch {
                batch_size: 0,
                features: Vec::new(),
            };
        };
        let n_features = first.features.len();
        assert!(
            parts.iter().all(|p| p.features.len() == n_features),
            "Batch::merge: feature-count mismatch across parts"
        );
        let batch_size = parts.iter().map(|p| p.batch_size).sum();
        let features = (0..n_features)
            .map(|f| {
                let mut offsets = Vec::with_capacity(batch_size as usize + 1);
                let mut indices = Vec::new();
                offsets.push(0u32);
                for part in parts {
                    let fb = &part.features[f];
                    let base = indices.len() as u32;
                    // Skip each part's leading 0; rebase the rest.
                    offsets.extend(fb.offsets[1..].iter().map(|&o| base + o));
                    indices.extend_from_slice(&fb.indices);
                }
                FeatureBatch { offsets, indices }
            })
            .collect();
        Batch {
            batch_size,
            features,
        }
    }

    /// Validate every feature CSR against the model.
    pub fn validate(&self, model: &ModelConfig) -> Result<(), String> {
        if self.features.len() != model.features.len() {
            return Err("feature count mismatch".into());
        }
        for (i, (fb, spec)) in self.features.iter().zip(&model.features).enumerate() {
            if fb.batch_size() != self.batch_size {
                return Err(format!("feature {i} batch size mismatch"));
            }
            fb.validate(spec.table_rows)
                .map_err(|e| format!("feature {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::PoolingDist;

    fn spec(pooling: PoolingDist, coverage: f64) -> FeatureSpec {
        FeatureSpec {
            name: "t".into(),
            table_rows: 1000,
            emb_dim: 16,
            pooling,
            coverage,
            row_skew: 0.0,
        }
    }

    #[test]
    fn csr_invariants_hold() {
        let s = spec(
            PoolingDist::Normal {
                mean: 20.0,
                std: 5.0,
                max: 100,
            },
            0.7,
        );
        let fb = FeatureBatch::generate(&s, 256, 99);
        fb.validate(1000).unwrap();
        assert_eq!(fb.batch_size(), 256);
    }

    #[test]
    fn one_hot_full_coverage_has_one_per_sample() {
        let s = spec(PoolingDist::OneHot, 1.0);
        let fb = FeatureBatch::generate(&s, 128, 3);
        assert_eq!(fb.total_lookups(), 128);
        assert!((0..128).all(|i| fb.pooling_factor(i) == 1));
    }

    #[test]
    fn coverage_leaves_samples_empty() {
        let s = spec(PoolingDist::Fixed(10), 0.3);
        let fb = FeatureBatch::generate(&s, 2000, 5);
        let present = (0..2000).filter(|&i| fb.pooling_factor(i) > 0).count();
        assert!((400..800).contains(&present), "≈30% of 2000, got {present}");
        assert!((0..2000).all(|i| fb.pooling_factor(i) == 0 || fb.pooling_factor(i) == 10));
    }

    #[test]
    fn row_skew_concentrates_lookups() {
        let uniform = FeatureBatch::generate(&spec(PoolingDist::Fixed(50), 1.0), 256, 11);
        let mut skewed_spec = spec(PoolingDist::Fixed(50), 1.0);
        skewed_spec.row_skew = 3.0;
        let skewed = FeatureBatch::generate(&skewed_spec, 256, 11);
        assert!(skewed.unique_rows() < uniform.unique_rows());
    }

    #[test]
    fn batch_generation_deterministic_and_valid() {
        let model = ModelConfig {
            name: "m".into(),
            features: vec![
                spec(PoolingDist::OneHot, 1.0),
                spec(PoolingDist::Fixed(7), 0.5),
                spec(
                    PoolingDist::PowerLaw {
                        alpha: 1.2,
                        max: 200,
                    },
                    0.9,
                ),
            ],
        };
        let a = Batch::generate(&model, 64, 42);
        let b = Batch::generate(&model, 64, 42);
        assert_eq!(a, b);
        a.validate(&model).unwrap();
        let c = Batch::generate(&model, 64, 43);
        assert_ne!(a, c, "different seeds give different batches");
    }

    #[test]
    fn validate_catches_corruption() {
        let s = spec(PoolingDist::Fixed(3), 1.0);
        let mut fb = FeatureBatch::generate(&s, 8, 1);
        fb.indices[0] = 5000; // out of range
        assert!(fb.validate(1000).is_err());
        let mut fb2 = FeatureBatch::generate(&s, 8, 1);
        fb2.offsets[3] = fb2.offsets[4] + 1; // non-monotone
        assert!(fb2.validate(1000).is_err());
    }

    #[test]
    fn sample_indices_slices_match_offsets() {
        let s = spec(PoolingDist::Uniform { lo: 1, hi: 5 }, 1.0);
        let fb = FeatureBatch::generate(&s, 32, 9);
        let mut total = 0;
        for i in 0..32 {
            total += fb.sample_indices(i).len();
        }
        assert_eq!(total as u32, fb.total_lookups());
    }

    #[test]
    fn split_zero_cap_is_an_error_not_a_panic() {
        let s = spec(PoolingDist::Fixed(3), 1.0);
        let model = ModelConfig {
            name: "m".into(),
            features: vec![s],
        };
        let b = Batch::generate(&model, 16, 1);
        assert_eq!(b.split(0), Err(SplitError::ZeroCap));
        assert_eq!(b.split(1).unwrap().len(), 16);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let merged = Batch::merge(&[]);
        assert_eq!(merged.batch_size, 0);
        assert!(merged.features.is_empty());
    }

    #[test]
    fn merge_concatenates_distinct_batches() {
        // Merging *different* requests (the dynamic-batcher case), not just
        // re-joining a split: per-sample semantics must be preserved.
        let model = ModelConfig {
            name: "m".into(),
            features: vec![
                spec(PoolingDist::OneHot, 1.0),
                spec(
                    PoolingDist::PowerLaw {
                        alpha: 1.3,
                        max: 60,
                    },
                    0.8,
                ),
            ],
        };
        let a = Batch::generate(&model, 13, 5);
        let b = Batch::generate(&model, 29, 6);
        let merged = Batch::merge(&[a.clone(), b.clone()]);
        assert_eq!(merged.batch_size, 42);
        merged.validate(&model).unwrap();
        for f in 0..2 {
            for s in 0..13 {
                assert_eq!(
                    merged.features[f].sample_indices(s),
                    a.features[f].sample_indices(s)
                );
            }
            for s in 0..29 {
                assert_eq!(
                    merged.features[f].sample_indices(13 + s),
                    b.features[f].sample_indices(s)
                );
            }
        }
    }
}

#[cfg(test)]
mod split_merge_props {
    use super::*;
    use crate::distribution::PoolingDist;
    use proptest::prelude::*;

    /// A small model whose feature mix varies with the seed, so the
    /// property sweep covers one-hot, fixed, normal and power-law CSR
    /// shapes as well as partial coverage (empty lookup segments).
    fn arb_model(seed: u64) -> ModelConfig {
        let pools = [
            PoolingDist::OneHot,
            PoolingDist::Fixed(1 + (seed % 7) as u32),
            PoolingDist::Normal {
                mean: 8.0,
                std: 4.0,
                max: 40,
            },
            PoolingDist::PowerLaw {
                alpha: 1.4,
                max: 50,
            },
        ];
        let features = (0..1 + (seed % 3) as usize)
            .map(|i| FeatureSpec {
                name: format!("f{i}"),
                table_rows: 500,
                emb_dim: 8,
                pooling: pools[(seed as usize + i) % pools.len()],
                coverage: if (seed + i as u64).is_multiple_of(2) {
                    1.0
                } else {
                    0.6
                },
                row_skew: 0.0,
            })
            .collect();
        ModelConfig {
            name: "prop".into(),
            features,
        }
    }

    proptest! {
        #[test]
        fn merge_is_the_exact_inverse_of_split(
            seed in 0u64..10_000,
            batch_size in 1u32..200,
            cap in 1u32..300,
        ) {
            let model = arb_model(seed);
            let batch = Batch::generate(&model, batch_size, seed);
            let chunks = batch.split(cap).unwrap();
            prop_assert!(chunks.iter().all(|c| c.batch_size <= cap));
            prop_assert_eq!(
                chunks.iter().map(|c| c.batch_size).sum::<u32>(),
                batch_size
            );
            // Offsets and indices must round-trip bit-exactly.
            prop_assert_eq!(Batch::merge(&chunks), batch);
        }

        #[test]
        fn split_chunks_are_valid_csr(
            seed in 0u64..1_000,
            batch_size in 1u32..120,
            cap in 1u32..50,
        ) {
            let model = arb_model(seed);
            let batch = Batch::generate(&model, batch_size, seed);
            for chunk in batch.split(cap).unwrap() {
                prop_assert!(chunk.validate(&model).is_ok());
            }
        }
    }
}
