//! Feature-field and model specifications.

use crate::distribution::PoolingDist;
use serde::{Deserialize, Serialize};

/// Specification of one feature field (the paper's "feature"): its embedding
/// table shape and its input-workload statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Feature name, e.g. `"f0042"`.
    pub name: String,
    /// Rows in the embedding table.
    pub table_rows: u32,
    /// Embedding dimension (row vector length); 4–128 in Table I.
    pub emb_dim: u32,
    /// Per-sample pooling-factor distribution.
    pub pooling: PoolingDist,
    /// Probability that the feature is present in a sample ("coverage" in
    /// the paper, 0.3 for Figure 3's feature 0). Absent samples contribute
    /// an empty lookup segment (pooled output = 0).
    pub coverage: f64,
    /// Row-popularity skew in `[0, ∞)`: 0 draws lookup rows uniformly;
    /// larger values concentrate lookups on few hot rows (drawn as
    /// `rows · u^(1+skew)`), which raises L2 reuse exactly like production
    /// hot-embedding behaviour.
    pub row_skew: f64,
}

impl FeatureSpec {
    /// Bytes of one embedding row (f32 elements).
    pub fn row_bytes(&self) -> u64 {
        self.emb_dim as u64 * 4
    }

    /// Expected lookups for one sample (coverage × mean pooling factor).
    pub fn expected_lookups_per_sample(&self) -> f64 {
        self.coverage * self.pooling.mean()
    }
}

/// A recommendation model: an ordered list of feature fields. The order is
/// the concatenation order of the embedding outputs fed to the DNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name, e.g. `"A"`.
    pub name: String,
    /// Feature fields in concatenation order.
    pub features: Vec<FeatureSpec>,
}

impl ModelConfig {
    /// Number of feature fields.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Σ of embedding dimensions — the width of the concatenated embedding
    /// vector entering the DNN.
    pub fn concat_dim(&self) -> u32 {
        self.features.iter().map(|f| f.emb_dim).sum()
    }

    /// Count of one-hot features (Table I's "# One-hot").
    pub fn num_one_hot(&self) -> usize {
        self.features
            .iter()
            .filter(|f| f.pooling.is_one_hot())
            .count()
    }

    /// Count of multi-hot features (Table I's "# Multi-hot").
    pub fn num_multi_hot(&self) -> usize {
        self.num_features() - self.num_one_hot()
    }

    /// `(min, max)` embedding dimension across features.
    pub fn dim_range(&self) -> (u32, u32) {
        let min = self.features.iter().map(|f| f.emb_dim).min().unwrap_or(0);
        let max = self.features.iter().map(|f| f.emb_dim).max().unwrap_or(0);
        (min, max)
    }

    /// Whether all features share one embedding dimension (the HugeCTR
    /// requirement; true for models D and E).
    pub fn uniform_dim(&self) -> Option<u32> {
        let (lo, hi) = self.dim_range();
        (lo == hi && lo > 0).then_some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(dim: u32, pooling: PoolingDist) -> FeatureSpec {
        FeatureSpec {
            name: format!("f{dim}"),
            table_rows: 1000,
            emb_dim: dim,
            pooling,
            coverage: 1.0,
            row_skew: 0.0,
        }
    }

    #[test]
    fn concat_dim_sums() {
        let m = ModelConfig {
            name: "t".into(),
            features: vec![
                feat(4, PoolingDist::OneHot),
                feat(32, PoolingDist::Fixed(10)),
            ],
        };
        assert_eq!(m.concat_dim(), 36);
        assert_eq!(m.num_one_hot(), 1);
        assert_eq!(m.num_multi_hot(), 1);
        assert_eq!(m.dim_range(), (4, 32));
        assert_eq!(m.uniform_dim(), None);
    }

    #[test]
    fn uniform_dim_detected() {
        let m = ModelConfig {
            name: "t".into(),
            features: vec![feat(8, PoolingDist::OneHot), feat(8, PoolingDist::Fixed(3))],
        };
        assert_eq!(m.uniform_dim(), Some(8));
    }

    #[test]
    fn expected_lookups_blends_coverage() {
        let mut f = feat(16, PoolingDist::Fixed(50));
        f.coverage = 0.3;
        assert!((f.expected_lookups_per_sample() - 15.0).abs() < 1e-12);
    }
}
