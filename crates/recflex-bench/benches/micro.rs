//! Criterion micro-benchmarks for the overhead claims of Section VI-E:
//!
//! * `thread_map/runtime_build` — the host-side workload analysis + task
//!   map construction that the paper measures at < 0.1 % of data-loading
//!   time;
//! * `tuning/local_stage_one_feature` — the unit cost behind the
//!   `O(F·K + K)` tuning complexity argument;
//! * simulator primitives (occupancy calculation, block scheduling,
//!   fused-kernel launch) that bound how fast experiments replay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use recflex_compiler::{FusedKernelObject, FusedSpec, TaskMap};
use recflex_data::{Batch, Dataset, ModelPreset};
use recflex_embedding::{analyze_batch, TableSet};
use recflex_schedules::enumerate_candidates;
use recflex_sim::{launch, occupancy, BlockResources, GpuArch};
use recflex_tuner::{local, TunerConfig, TuningContext};

fn bench_occupancy(c: &mut Criterion) {
    let arch = GpuArch::v100();
    c.bench_function("sim/occupancy_calc", |b| {
        b.iter(|| {
            let res = BlockResources::new(black_box(128), black_box(64), black_box(8192));
            black_box(occupancy::occupancy(&res, &arch))
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let times: Vec<f64> = (0..10_000).map(|i| 50.0 + (i % 17) as f64).collect();
    c.bench_function("sim/schedule_10k_blocks", |b| {
        b.iter(|| {
            black_box(recflex_sim::scheduler::schedule_blocks(
                black_box(&times),
                640,
            ))
        })
    });
}

fn bench_workload_analysis(c: &mut Criterion) {
    let m = ModelPreset::A.scaled(0.1);
    let batch = Batch::generate(&m, 256, 7);
    c.bench_function("host/workload_analysis_100f_256b", |b| {
        b.iter(|| black_box(analyze_batch(&m, &batch)))
    });
}

fn bench_thread_map(c: &mut Criterion) {
    let m = ModelPreset::A.scaled(0.1);
    let batch = Batch::generate(&m, 256, 7);
    let workloads = analyze_batch(&m, &batch);
    let schedules: Vec<_> = m
        .features
        .iter()
        .enumerate()
        .map(|(i, f)| enumerate_candidates(i, f).unwrap().candidates[0])
        .collect();
    c.bench_function("host/thread_map_runtime_build", |b| {
        b.iter(|| black_box(TaskMap::runtime(&schedules, &workloads)))
    });
}

fn bench_fused_launch(c: &mut Criterion) {
    let m = ModelPreset::A.scaled(0.1);
    let tables = TableSet::for_model(&m);
    let batch = Batch::generate(&m, 256, 7);
    let schedules: Vec<_> = m
        .features
        .iter()
        .enumerate()
        .map(|(i, f)| enumerate_candidates(i, f).unwrap().candidates[0])
        .collect();
    let obj = FusedKernelObject::compile(FusedSpec::new(schedules));
    let arch = GpuArch::v100();
    let mut g = c.benchmark_group("sim");
    g.sample_size(20);
    g.bench_function("fused_launch_100f_256b", |b| {
        b.iter(|| {
            let bound = obj.bind(&m, &tables, &batch);
            black_box(
                launch(&bound, &arch, &obj.launch_config())
                    .unwrap()
                    .latency_us,
            )
        })
    });
    g.finish();
}

fn bench_local_stage(c: &mut Criterion) {
    let m = ModelPreset::A.scaled(0.02);
    let ds = Dataset::synthesize(&m, 2, 128, 3);
    let arch = GpuArch::v100();
    let cfg = TunerConfig::fast();
    let mut g = c.benchmark_group("tuning");
    g.sample_size(10);
    g.bench_function("local_stage_20f", |b| {
        b.iter_batched(
            || TuningContext::new(&m, &ds, &arch, &cfg),
            |ctx| black_box(local::tune_local_stage(&ctx, 4, &cfg)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_cache_plan(c: &mut Criterion) {
    let m = ModelPreset::A.scaled(0.05);
    let ds = Dataset::synthesize(&m, 2, 128, 3);
    let budget = recflex_embedding::CachePlan::full_model_bytes(&m) / 20;
    c.bench_function("host/cache_plan_50f", |b| {
        b.iter(|| black_box(recflex_embedding::CachePlan::plan(&m, ds.batches(), budget)))
    });
}

fn bench_batch_split(c: &mut Criterion) {
    let m = ModelPreset::A.scaled(0.05);
    let batch = Batch::generate(&m, 2560, 7);
    c.bench_function("host/split_2560_at_512", |b| {
        b.iter(|| black_box(recflex_core::serving::split_batch(&batch, 512)))
    });
}

fn bench_functional_exec(c: &mut Criterion) {
    let m = ModelPreset::A.scaled(0.05);
    let tables = TableSet::for_model(&m);
    let batch = Batch::generate(&m, 128, 9);
    c.bench_function("exec/reference_pooling_50f_128b", |b| {
        b.iter(|| {
            black_box(recflex_embedding::reference_model_output(
                &m, &tables, &batch,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_occupancy,
    bench_scheduler,
    bench_workload_analysis,
    bench_thread_map,
    bench_fused_launch,
    bench_local_stage,
    bench_cache_plan,
    bench_batch_split,
    bench_functional_exec
);
criterion_main!(benches);
