//! Multi-GPU sharding (paper Section VII "Larger model sizes"): balance
//! the embedding tables over several simulated GPUs, tune RecFlex per
//! shard, and measure the scaling of the embedding stage.

use recflex_bench::Scale;
use recflex_core::ShardedEngine;
use recflex_data::{Batch, Dataset, ModelPreset};
use recflex_sim::GpuArch;

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let history = Dataset::synthesize(&model, 3, scale.batch_size, 5);
    let batch = Batch::generate(&model, scale.batch_size, 77);

    println!(
        "== multi-GPU sharding, model A ({} features) ==",
        model.num_features()
    );
    println!("{:>8} {:>14} {:>10}", "devices", "latency (us)", "speedup");
    let mut base = None;
    for devices in [1usize, 2, 4, 8] {
        let sharded = ShardedEngine::tune(&model, &history, &arch, &scale.tuner, devices);
        let (_, latency) = sharded.run(&batch).unwrap();
        let baseline = *base.get_or_insert(latency);
        println!("{devices:>8} {latency:>14.1} {:>9.2}x", baseline / latency);
    }
    println!(
        "\n(the paper composes RecFlex with table placement for models beyond one GPU's memory)"
    );
}
