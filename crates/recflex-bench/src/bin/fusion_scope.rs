//! Fusion-scope experiment (paper Section VII, "Larger fusion scopes"):
//! preprocess operators (hash + clamp per feature) run either as a
//! separate elementwise kernel producing an intermediate index tensor, or
//! inlined into the fused embedding kernel.
//!
//! Fusing removes one kernel launch and the intermediate tensor's
//! round trip through DRAM, at the price of extra issue slots inside the
//! embedding schedules — the intra-/inter-feature interference trade-off
//! the paper flags as future work.

use recflex_bench::Scale;
use recflex_data::{Batch, ModelPreset};
use recflex_embedding::{analyze_batch, PreprocessPipeline};
use recflex_sim::{
    launch, BlockProfile, BlockResources, GpuArch, LaunchConfig, ProfileCtx, SimKernel,
};

/// The separate elementwise preprocess kernel: streams every lookup ID
/// through the op chain and writes the transformed tensor back.
struct PreprocessKernel<'a> {
    batch: &'a Batch,
    pipeline: &'a PreprocessPipeline,
    ids_per_block: u64,
    total_ids: u64,
}

impl SimKernel for PreprocessKernel<'_> {
    fn name(&self) -> &str {
        "preprocess_elementwise"
    }
    fn grid_blocks(&self) -> u32 {
        (self.total_ids.div_ceil(self.ids_per_block)).max(1) as u32
    }
    fn resources(&self) -> BlockResources {
        BlockResources::new(256, 24, 0)
    }
    fn profile_block(&self, block_idx: u32, _ctx: &ProfileCtx) -> BlockProfile {
        let lo = block_idx as u64 * self.ids_per_block;
        let n = self.ids_per_block.min(self.total_ids.saturating_sub(lo));
        // Average op cost over features, weighted by their lookup counts.
        let avg_cost: f64 = {
            let mut cost = 0.0;
            let mut total = 0.0;
            for (f, fb) in self.batch.features.iter().enumerate() {
                let l = fb.total_lookups() as f64;
                cost += l * self.pipeline.fused_issue_cost(f);
                total += l;
            }
            if total > 0.0 {
                cost / total
            } else {
                0.0
            }
        };
        let bytes = n * 8; // read raw id + write cooked id
        let mut p = BlockProfile {
            issue_cycles: n as f64 / 32.0 * (2.0 + avg_cost) + 20.0,
            mem_transactions: bytes.div_ceil(32) + 2,
            bytes_accessed: n * 4 + 64,
            unique_bytes: n * 4 + 64,
            bytes_written: n * 4,
            active_warps: 8,
            thread_active_sum: n,
            thread_useful_sum: n,
            thread_slot_sum: n.next_multiple_of(32),
            mlp: 6.0,
            critical_mem_chain: (n / (8 * 32)).max(1) + 2,
            ..Default::default()
        };
        p.flops = n;
        p
    }
}

/// The fused embedding kernel with preprocess inlined: wraps the bound
/// kernel and adds the op chain's issue slots per lookup.
struct FusedWithPreprocess<'a, K: SimKernel> {
    inner: &'a K,
    extra_issue_per_block: f64,
}

impl<K: SimKernel> SimKernel for FusedWithPreprocess<'_, K> {
    fn name(&self) -> &str {
        "recflex_fused_with_preprocess"
    }
    fn grid_blocks(&self) -> u32 {
        self.inner.grid_blocks()
    }
    fn resources(&self) -> BlockResources {
        self.inner.resources()
    }
    fn profile_block(&self, block_idx: u32, ctx: &ProfileCtx) -> BlockProfile {
        let mut p = self.inner.profile_block(block_idx, ctx);
        p.issue_cycles += self.extra_issue_per_block;
        p
    }
}

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let history = recflex_data::Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let engine = recflex_core::RecFlexEngine::tune(&model, &history, &arch, &scale.tuner);
    let pipeline = PreprocessPipeline::standard(&model);
    let batch = Batch::generate(&model, scale.batch_size, 42);
    let cooked = pipeline.apply(&batch);

    // Unfused: preprocess kernel + embedding kernel on the cooked tensor.
    let total_ids = batch.total_lookups();
    let pre = PreprocessKernel {
        batch: &batch,
        pipeline: &pipeline,
        ids_per_block: 4096,
        total_ids,
    };
    let pre_report = launch(&pre, &arch, &LaunchConfig::default()).unwrap();
    let emb_bound = engine.object.bind(&model, &engine.tables, &cooked);
    let emb_report = launch(&emb_bound, &arch, &engine.object.launch_config()).unwrap();
    let unfused = pre_report.latency_us + emb_report.latency_us;

    // Fused: ops inlined into the embedding schedules (issue cost per
    // lookup, amortized per block via the average lookups per block).
    let workloads = analyze_batch(&model, &cooked);
    let total_blocks: u64 = engine
        .object
        .spec
        .schedules
        .iter()
        .zip(&workloads)
        .map(|(s, w)| s.required_blocks(w) as u64)
        .sum();
    let avg_cost: f64 = (0..model.features.len())
        .map(|f| workloads[f].total_lookups as f64 * pipeline.fused_issue_cost(f))
        .sum::<f64>()
        / total_blocks.max(1) as f64
        / 32.0; // warp-level issue
    let fused_kernel = FusedWithPreprocess {
        inner: &emb_bound,
        extra_issue_per_block: avg_cost,
    };
    let fused = launch(&fused_kernel, &arch, &engine.object.launch_config())
        .unwrap()
        .latency_us;

    println!(
        "== fusion scope: preprocess ops ({} ops) + embedding (model A) ==",
        pipeline.total_ops()
    );
    println!("unfused (2 kernels, intermediate tensor): {unfused:>10.1} us");
    println!("  - preprocess kernel : {:>10.1} us", pre_report.latency_us);
    println!("  - embedding kernel  : {:>10.1} us", emb_report.latency_us);
    println!("fused (ops inlined in schedules)        : {fused:>10.1} us");
    println!("fusion speedup: {:.2}x", unfused / fused);
    println!("\n(the paper leaves larger fusion scopes as future work because the");
    println!(" extra in-kernel work also perturbs the schedule-tuning problem)");
}
