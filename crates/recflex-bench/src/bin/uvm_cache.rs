//! UVM hot-embedding cache sweep (paper Section VII "Larger model sizes"):
//! host-resident tables with a GPU hot-row cache, latency as a function of
//! the device-cache budget.
//!
//! The interesting regime: skewed production traffic lets a small cache
//! absorb most lookups, so latency falls steeply long before the full
//! table footprint fits — the premise of the AdaEmbed/Fleche line of work
//! the paper composes with.

use recflex_bench::Scale;
use recflex_data::ModelPreset;
use recflex_embedding::CachePlan;
use recflex_sim::{launch, GpuArch};

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let mut model = scale.model(ModelPreset::A);
    // Production popularity skew is what makes hot caching viable.
    for f in &mut model.features {
        f.row_skew = f.row_skew.max(1.5);
    }
    let fixture_history = recflex_data::Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let engine = recflex_core::RecFlexEngine::tune(&model, &fixture_history, &arch, &scale.tuner);
    let batch = recflex_data::Batch::generate(&model, scale.batch_size, 99);

    let full_bytes = CachePlan::full_model_bytes(&model);
    println!(
        "== UVM hot-embedding cache sweep (model A, {} MiB total tables) ==",
        full_bytes >> 20
    );
    println!(
        "{:>12} {:>10} {:>14} {:>12}",
        "cache", "hit rate", "latency (us)", "binding"
    );

    // Device-resident baseline (no UVM at all).
    let bound = engine.object.bind(&model, &engine.tables, &batch);
    let device = launch(&bound, &arch, &engine.object.launch_config()).unwrap();
    println!(
        "{:>12} {:>10} {:>14.1} {:>12}",
        "all-device",
        "1.00",
        device.latency_us,
        device.bounds.binding()
    );

    for pct in [50u64, 20, 10, 5, 1, 0] {
        let budget = full_bytes * pct / 100;
        let plan = CachePlan::plan(&model, fixture_history.batches(), budget);
        let bound = engine
            .object
            .bind_uvm(&model, &engine.tables, &batch, &plan);
        let report = launch(&bound, &arch, &engine.object.launch_config()).unwrap();
        println!(
            "{:>11}% {:>10.2} {:>14.1} {:>12}",
            pct,
            plan.hit_rate(&batch),
            report.latency_us,
            report.bounds.binding()
        );
    }
    println!("\n(skew lets a small device cache absorb most traffic; the cold tail");
    println!(" crosses the host link and becomes the binding constraint)");
}
