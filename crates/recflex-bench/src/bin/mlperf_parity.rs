//! Section VI-B MLPerf experiment: on the 26-feature, low-heterogeneity
//! MLPerf/criteo-style dataset, RecFlex has nothing to exploit and should
//! land at ≈ parity with TorchRec (paper: "nearly the same kernel
//! performance").

use recflex_baselines::{Backend, TorchRecBackend};
use recflex_bench::{print_normalized, Fixture, Row, Scale};
use recflex_data::ModelPreset;
use recflex_sim::GpuArch;

fn main() {
    let mut scale = Scale::from_env();
    scale.model_frac = 1.0; // 26 features is already laptop-size
    let arch = GpuArch::v100();
    let fixture = Fixture::prepare(ModelPreset::MLPerfLike, &arch, &scale);
    println!(
        "== MLPerf-like dataset: {} homogeneous multi-hot features ==",
        fixture.model.num_features()
    );
    let engine = fixture.tune_recflex(&scale);
    let torchrec = TorchRecBackend::compile(&fixture.model);

    let ours = fixture.total_latency(&engine).unwrap();
    let theirs = fixture.total_latency(&torchrec).unwrap();
    print_normalized(
        "MLPerf-like kernel latency",
        &[
            Row {
                name: "RecFlex".into(),
                latency_us: ours,
            },
            Row {
                name: torchrec.name().to_string(),
                latency_us: theirs,
            },
        ],
    );
    let ratio = theirs / ours;
    println!("\nRecFlex vs TorchRec: {ratio:.2}x  (paper: ~1.0x — low heterogeneity, no edge)");
}
