//! Figure 2: the motivating observation — embedding dimensions and input
//! workloads vary significantly among features.
//!
//! (a) the embedding-dimension distribution of a model, "from single digits
//! to hundreds"; (b) the pooling factors of four features across 50
//! samples. Regenerated from model A's synthetic production-style data.

use recflex_bench::Scale;
use recflex_data::{Batch, ModelPreset};
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    let model = scale.model(ModelPreset::A);

    // (a) embedding-dimension histogram.
    let mut dims: BTreeMap<u32, usize> = BTreeMap::new();
    for f in &model.features {
        *dims.entry(f.emb_dim).or_default() += 1;
    }
    println!("== Fig.2(a): embedding dimension distribution (model A) ==");
    let max = dims.values().copied().max().unwrap_or(1);
    for (dim, count) in &dims {
        let bar = "#".repeat(count * 40 / max);
        println!("dim {dim:>4}: {count:>4} {bar}");
    }

    // (b) pooling factors of four multi-hot features over 50 samples.
    let batch = Batch::generate(&model, 50, 0xF162);
    let multi: Vec<usize> = model
        .features
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.pooling.is_one_hot())
        .map(|(i, _)| i)
        .take(4)
        .collect();
    println!("\n== Fig.2(b): pooling factors of four features, 50 samples ==");
    print!("{:>7}", "sample");
    for &f in &multi {
        print!(" {:>9}", format!("feat{f}"));
    }
    println!();
    for s in 0..50u32 {
        print!("{s:>7}");
        for &f in &multi {
            print!(" {:>9}", batch.features[f].pooling_factor(s));
        }
        println!();
    }

    // Summary statistics: the heterogeneity in one line each.
    println!("\nper-feature pooling statistics over the batch:");
    for &f in &multi {
        let fb = &batch.features[f];
        let pfs: Vec<u32> = (0..50).map(|s| fb.pooling_factor(s)).collect();
        let mean = pfs.iter().sum::<u32>() as f64 / 50.0;
        let var = pfs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / 50.0;
        println!(
            "  feat{f}: mean {mean:.1}, std {:.1}, max {}  ({:?})",
            var.sqrt(),
            pfs.iter().max().unwrap(),
            model.features[f].pooling
        );
    }
    println!("\n(paper: dims range single digits to hundreds; pooling-factor std can");
    println!(" reach hundreds — the heterogeneity RecFlex exploits)");
}
