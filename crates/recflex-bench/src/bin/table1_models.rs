//! Table I: basic statistics of the evaluated models and datasets.

use recflex_bench::Scale;
use recflex_data::ModelPreset;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Table I: evaluated models (scale = {}) ==",
        scale.model_frac
    );
    println!(
        "{:<8} {:>10} {:>10} {:>11} {:>10}",
        "Model", "# Features", "# One-hot", "# Multi-hot", "Emb. Dim."
    );
    for preset in ModelPreset::TABLE1 {
        let m = scale.model(preset);
        let (lo, hi) = m.dim_range();
        let dims = if lo == hi {
            format!("{lo}")
        } else {
            format!("{lo}-{hi}")
        };
        println!(
            "{:<8} {:>10} {:>10} {:>11} {:>10}",
            m.name,
            m.num_features(),
            m.num_one_hot(),
            m.num_multi_hot(),
            dims
        );
    }
    println!("\nPaper reference (full scale): A 1000/500/500 4-128, B 1200/1000/200 4-128,");
    println!("C 800/0/800 4-128, D 1000/500/500 dim 8, E 1000/500/500 dim 32.");
}
