//! Figure 9: embedding-kernel performance of RecFlex vs TensorFlow, RECom,
//! HugeCTR and TorchRec on V100 and A100.
//!
//! Prints one normalized-performance table per (architecture, model) — the
//! bars of Figures 9(a)/9(b) — and the pooled average speedups the paper
//! headline cites (35.40×/11.31×/20.77×/2.64×).

use recflex_bench::{both_archs, print_average_speedups, print_normalized, Fixture, Row, Scale};
use recflex_data::ModelPreset;
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    let mut pools: BTreeMap<String, Vec<f64>> = BTreeMap::new();

    for arch in both_archs() {
        println!("\n#### {} ####", arch.name);
        for preset in ModelPreset::TABLE1 {
            let fixture = Fixture::prepare(preset, &arch, &scale);
            let engine = fixture.tune_recflex(&scale);

            let mut rows = Vec::new();
            let ours = fixture
                .total_latency(&engine)
                .expect("RecFlex always supports the model");
            rows.push(Row {
                name: "RecFlex".into(),
                latency_us: ours,
            });
            for b in fixture.baselines() {
                if let Some(lat) = fixture.total_latency(b.as_ref()) {
                    pools
                        .entry(b.name().to_string())
                        .or_default()
                        .push(lat / ours);
                    rows.push(Row {
                        name: b.name().to_string(),
                        latency_us: lat,
                    });
                }
            }
            print_normalized(
                &format!(
                    "Fig.9 {} / model {} (batch {})",
                    arch.name,
                    preset.name(),
                    scale.batch_size
                ),
                &rows,
            );
        }
    }

    let pooled: Vec<(String, Vec<f64>)> = pools.into_iter().collect();
    print_average_speedups("RecFlex (kernel)", &pooled);
    println!("\nPaper reference: 35.40x over TensorFlow, 11.31x over RECom,");
    println!("20.77x over HugeCTR, 2.64x over TorchRec (two-platform averages).");
}
