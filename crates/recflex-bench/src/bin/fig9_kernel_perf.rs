//! Figure 9: embedding-kernel performance of RecFlex vs TensorFlow, RECom,
//! HugeCTR and TorchRec on V100 and A100.
//!
//! Prints one normalized-performance table per (architecture, model) — the
//! bars of Figures 9(a)/9(b) — and the pooled average speedups the paper
//! headline cites (35.40×/11.31×/20.77×/2.64×).
//!
//! `--json <path>` writes every table plus the pooled speedups as a JSON
//! report for CI artifact upload. `--check` arms the perf gate: the fused
//! RecFlex kernel must be at least as fast as the *slowest* baseline on
//! every (architecture, model) cell — a deliberately loose floor that
//! still catches a regression that wrecks the fused schedule, while
//! staying meaningful at CI smoke scale.

use std::process::ExitCode;

use recflex_bench::{
    both_archs, geomean, print_average_speedups, print_normalized, CliOpts, Fixture, Row, Scale,
};
use recflex_data::ModelPreset;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct KernelCell {
    arch: String,
    model: String,
    batch_size: u32,
    /// `(system, total latency over the eval set in µs)` rows,
    /// RecFlex first.
    rows: Vec<(String, f64)>,
}

#[derive(Serialize)]
struct KernelReport {
    cells: Vec<KernelCell>,
    /// Geometric-mean speedup of RecFlex over each baseline, pooled
    /// across every cell the baseline supports.
    average_speedups: Vec<(String, f64)>,
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let mut pools: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut cells = Vec::new();

    for arch in both_archs() {
        println!("\n#### {} ####", arch.name);
        for preset in ModelPreset::TABLE1 {
            let fixture = Fixture::prepare(preset, &arch, &scale);
            let engine = fixture.tune_recflex(&scale);

            let mut rows = Vec::new();
            let ours = fixture
                .total_latency(&engine)
                .expect("RecFlex always supports the model");
            rows.push(Row {
                name: "RecFlex".into(),
                latency_us: ours,
            });
            for b in fixture.baselines() {
                if let Some(lat) = fixture.total_latency(b.as_ref()) {
                    pools
                        .entry(b.name().to_string())
                        .or_default()
                        .push(lat / ours);
                    rows.push(Row {
                        name: b.name().to_string(),
                        latency_us: lat,
                    });
                }
            }
            print_normalized(
                &format!(
                    "Fig.9 {} / model {} (batch {})",
                    arch.name,
                    preset.name(),
                    scale.batch_size
                ),
                &rows,
            );
            cells.push(KernelCell {
                arch: arch.name.to_string(),
                model: preset.name().to_string(),
                batch_size: scale.batch_size,
                rows: rows.into_iter().map(|r| (r.name, r.latency_us)).collect(),
            });
        }
    }

    let pooled: Vec<(String, Vec<f64>)> = pools.into_iter().collect();
    print_average_speedups("RecFlex (kernel)", &pooled);
    println!("\nPaper reference: 35.40x over TensorFlow, 11.31x over RECom,");
    println!("20.77x over HugeCTR, 2.64x over TorchRec (two-platform averages).");

    let report = KernelReport {
        cells,
        average_speedups: pooled
            .iter()
            .map(|(name, ratios)| (name.clone(), geomean(ratios)))
            .collect(),
    };
    opts.write_json(&report);

    if opts.check && !perf_gate_holds(&report) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI perf gate: in every cell, the fused kernel must not be slower
/// than the slowest baseline that supports the model.
fn perf_gate_holds(report: &KernelReport) -> bool {
    let mut ok = true;
    for cell in &report.cells {
        let ours = cell.rows[0].1;
        let slowest = cell
            .rows
            .iter()
            .skip(1)
            .map(|(_, lat)| *lat)
            .fold(0.0f64, f64::max);
        if ours > slowest {
            eprintln!(
                "check FAILED: RecFlex {ours:.1} us slower than every baseline \
                 (slowest {slowest:.1} us) on {} / model {}",
                cell.arch, cell.model
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "check passed: fused kernel at or below the slowest baseline on \
             all {} cells",
            report.cells.len()
        );
    }
    ok
}
