//! Periodic re-tuning under distribution shift (paper Section IV-A3):
//! schedules are "generally optimal in each period" and re-tuned every few
//! days. This experiment drifts the input distribution (pooling intensity
//! doubles, coverage shifts) and compares serving the drifted traffic with
//! the *stale* schedules vs after re-tuning.

use recflex_baselines::Backend;
use recflex_bench::Scale;
use recflex_core::RecFlexEngine;
use recflex_data::{shift_distribution, Dataset, ModelPreset};
use recflex_embedding::TableSet;
use recflex_sim::GpuArch;

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);

    // Period 1: tune on the original distribution.
    let week1 = Dataset::synthesize(&model, 3, scale.batch_size, 0x11);
    let mut engine = RecFlexEngine::tune(&model, &week1, &arch, &scale.tuner);

    // Period 2: the traffic drifts. The *model shape* (tables, dims) is
    // unchanged — only the workload statistics move — so the stale fused
    // kernel still runs, just with schedules tuned for the wrong workload.
    let drifted_model = shift_distribution(&model, 6.0, 0.3);
    let drifted_traffic =
        Dataset::synthesize(&drifted_model, scale.eval_batches, scale.batch_size, 0x22);
    let tables = TableSet::for_model(&model);

    let serve = |engine: &RecFlexEngine| -> f64 {
        drifted_traffic
            .batches()
            .iter()
            .map(|b| {
                Backend::run(engine, &model, &tables, b, &arch)
                    .unwrap()
                    .latency_us
            })
            .sum()
    };

    let stale = serve(&engine);

    // Re-tune on a sample of the drifted traffic (the periodic job).
    let retune_data = Dataset::synthesize(&drifted_model, 3, scale.batch_size, 0x33);
    engine.retune(&retune_data, &scale.tuner);
    let fresh = serve(&engine);

    println!("== periodic re-tuning under distribution shift (model A, V100) ==");
    println!("stale schedules (tuned on week-1 traffic): {stale:>12.1} us");
    println!("re-tuned schedules (week-2 traffic)      : {fresh:>12.1} us");
    println!("re-tuning recovers: {:.2}x", stale / fresh);
    println!("\n(the paper re-tunes every few days to track drift, Section IV-A3)");
}
