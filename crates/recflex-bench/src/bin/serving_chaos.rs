//! Chaos harness for the sharded serving tier: fault scenarios × response
//! policies, with the availability gates CI enforces.
//!
//! Serves the same seeded long-tail Poisson stream through the resilient
//! sharded tier under a grid of deterministic fault scenarios (shard
//! crash, shard stall, slowdown + link degradation, a seeded mixed storm,
//! and the fault-free control) crossed with two response policies:
//!
//! * `none` — no replication, no hedging, no ladder. A crashed lane
//!   freezes with its queue intact (restart-from-checkpoint) and the tier
//!   sheds under the resulting backlog.
//! * `mitigated` — full replication, chunk deadlines with hedged
//!   re-execution, crash failover, and the degradation ladder (drop the
//!   hedge first, then serve crashed-shard chunks with zero-pooled
//!   features instead of shedding).
//!
//! Every cell reports availability, fault-vs-admission shed rates, the
//! degraded-answer rate, tail latency, hedge fires/wins, failovers and
//! per-shard downtime. Everything is seeded: two runs print identical
//! numbers, and the CI `chaos-replay` job asserts it by diffing `--json`
//! outputs.
//!
//! `--check` enforces the two robustness gates:
//!
//! 1. **No-fault identity** — with the default `ResilienceConfig` the
//!    fault machinery must cost nothing: the no-fault × `none` cell's
//!    records must be byte-identical (as JSON) to a plain
//!    `ShardedServeRuntime::build` tier serving the same stream.
//! 2. **Crash availability** — under the scripted shard crash, the
//!    mitigated tier must hold availability ≥ 95% while the unmitigated
//!    tier lands strictly lower.

use std::process::ExitCode;

use recflex_bench::{CliOpts, Scale};
use recflex_core::{feature_cost_estimates, RecFlexEngine};
use recflex_data::{Dataset, ModelPreset, Placement};
use recflex_serve::{
    BatchPolicy, Fault, FaultKind, FaultPlan, FaultSpec, LadderConfig, PressureSignal,
    ReplicationPolicy, Request, ResilienceConfig, ServeConfig, ShardedServeRuntime, ShedReason,
    WorkloadSpec,
};
use recflex_sim::GpuArch;
use serde::Serialize;

const SHARDS: usize = 2;
/// Mean Poisson inter-arrival gap, µs.
const GAP_US: f64 = 200.0;
/// SLO deadline as a multiple of the mean gap.
const SLO_GAPS: f64 = 40.0;
/// The availability floor the mitigated tier must hold under the
/// scripted crash (the `--check` gate).
const AVAILABILITY_FLOOR: f64 = 0.95;

#[derive(Serialize)]
struct ChaosRow {
    scenario: String,
    policy: String,
    availability: f64,
    shed_admission: f64,
    shed_fault: f64,
    degraded_rate: f64,
    p50_latency_us: f64,
    p99_latency_us: f64,
    hedge_fires: u64,
    hedge_wins: u64,
    failovers: u64,
    downtime_us: f64,
    makespan_us: f64,
}

#[derive(Serialize)]
struct ChaosReport {
    model: String,
    num_features: usize,
    shards: usize,
    requests: usize,
    gap_us: f64,
    slo_deadline_us: f64,
    interconnect: String,
    /// Gate 1: the no-fault × `none` cell reproduced the plain tier's
    /// records byte-for-byte.
    no_fault_identity: bool,
    rows: Vec<ChaosRow>,
}

/// The fault scenarios under test. The crash window sits mid-stream —
/// `span` is the last arrival timestamp — so both the healthy lead-in and
/// the post-recovery drain appear in every report.
fn scenarios(span: f64, shards: usize) -> Vec<(String, FaultPlan)> {
    let start = 0.15 * span;
    let end = 0.65 * span;
    vec![
        ("none".to_string(), FaultPlan::none()),
        (
            "crash".to_string(),
            FaultPlan::scripted(vec![Fault {
                start_us: start,
                end_us: end,
                kind: FaultKind::Crash { shard: 0 },
            }]),
        ),
        (
            "stall".to_string(),
            FaultPlan::scripted(vec![Fault {
                start_us: start,
                end_us: end,
                kind: FaultKind::Stall { shard: 0 },
            }]),
        ),
        (
            "slow+link".to_string(),
            FaultPlan::scripted(vec![
                Fault {
                    start_us: start,
                    end_us: end,
                    kind: FaultKind::Slowdown {
                        shard: 0,
                        rate: 0.25,
                    },
                },
                Fault {
                    start_us: start,
                    end_us: end,
                    kind: FaultKind::LinkDegrade { factor: 8.0 },
                },
            ]),
        ),
        (
            "mixed-storm".to_string(),
            FaultSpec::mixed(0.2 * span, 0.1 * span).plan(shards, span, 0xC4A05),
        ),
    ]
}

fn policy(name: &str, plan: FaultPlan, slo_deadline_us: f64) -> ResilienceConfig {
    match name {
        "none" => ResilienceConfig {
            plan,
            chunk_deadline_us: None,
            replication: ReplicationPolicy::None,
            ladder: None,
            replica_reads: false,
        },
        "mitigated" => ResilienceConfig {
            plan,
            chunk_deadline_us: Some(slo_deadline_us / 4.0),
            replication: ReplicationPolicy::Full,
            ladder: Some(LadderConfig {
                drop_hedge_backlog_us: slo_deadline_us / 2.0,
                partial_backlog_us: 0.75 * slo_deadline_us,
                pressure: PressureSignal::Instantaneous,
            }),
            replica_reads: false,
        },
        other => unreachable!("unknown policy {other}"),
    }
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let history = Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let costs = feature_cost_estimates(&model, &history, &arch);
    let slo_deadline_us = SLO_GAPS * GAP_US;
    let config = ServeConfig {
        streams: 4,
        policy: BatchPolicy::Split { cap: 256 },
        slo_deadline_us: Some(slo_deadline_us),
        closed_loop: false,
        hot_shard_cap: None,
    };
    let n_requests = (scale.eval_batches * 16).clamp(24, 96);
    let stream: Vec<Request> = WorkloadSpec::long_tail(GAP_US).stream(&model, n_requests, 42);
    let span = stream.last().map(|r| r.arrival_us).unwrap_or(0.0);

    // One tier per policy, reused across scenarios (the fault plan is the
    // only thing that changes, so lanes compile once). The plain tier is
    // the gate-1 reference: the pre-fault code path.
    let make_backend =
        |sub_model: &recflex_data::ModelConfig| -> Box<dyn recflex_baselines::Backend> {
            let sub_history = Dataset::synthesize(sub_model, 3, scale.batch_size, 7);
            Box::new(RecFlexEngine::tune(
                sub_model,
                &sub_history,
                &arch,
                &scale.tuner,
            ))
        };
    let placement = || Placement::balance_by_cost(SHARDS, &costs);
    let plain = ShardedServeRuntime::build(
        &model,
        &arch,
        placement(),
        config,
        scale.interconnect.clone(),
        make_backend,
    );
    let mut bare = ShardedServeRuntime::build_resilient(
        &model,
        &arch,
        placement(),
        config,
        scale.interconnect.clone(),
        policy("none", FaultPlan::none(), slo_deadline_us),
        &costs,
        make_backend,
    );
    let mut armed = ShardedServeRuntime::build_resilient(
        &model,
        &arch,
        placement(),
        config,
        scale.interconnect.clone(),
        policy("mitigated", FaultPlan::none(), slo_deadline_us),
        &costs,
        make_backend,
    );

    println!(
        "== serving chaos: model {} ({} features), {SHARDS} shards, {n_requests} requests \
         @ {GAP_US} us mean gap, SLO {slo_deadline_us} us, {} gather ==",
        model.name,
        model.features.len(),
        scale.interconnect_name
    );
    println!(
        "{:<12} {:<10} {:>6} {:>9} {:>9} {:>9} {:>11} {:>7} {:>6} {:>9} {:>12}",
        "scenario",
        "policy",
        "avail",
        "shed adm",
        "shed flt",
        "degraded",
        "p99 (us)",
        "hedges",
        "wins",
        "failover",
        "downtime"
    );

    let plain_records =
        serde_json::to_string(&plain.serve(&stream).expect("chaos config is valid").records)
            .expect("serialize records");
    let mut no_fault_identity = false;
    let mut rows = Vec::new();
    for (scenario, plan) in scenarios(span, SHARDS) {
        for pname in ["none", "mitigated"] {
            let tier: &mut ShardedServeRuntime<'_> = if pname == "none" {
                &mut bare
            } else {
                &mut armed
            };
            tier.resilience = policy(pname, plan.clone(), slo_deadline_us);
            let report = tier.serve(&stream).expect("chaos config is valid");
            if scenario == "none" && pname == "none" {
                let cell = serde_json::to_string(&report.records).expect("serialize records");
                no_fault_identity = cell == plain_records;
            }
            let row = ChaosRow {
                scenario: scenario.clone(),
                policy: pname.to_string(),
                availability: report.availability(),
                shed_admission: report.shed_rate_for(ShedReason::Admission),
                shed_fault: report.shed_rate_for(ShedReason::Fault),
                degraded_rate: report.degraded_rate(),
                p50_latency_us: report.percentile_us(0.5),
                p99_latency_us: report.percentile_us(0.99),
                hedge_fires: report.hedge_fires,
                hedge_wins: report.hedge_wins,
                failovers: report.failovers,
                downtime_us: report.per_shard.iter().map(|s| s.downtime_us).sum(),
                makespan_us: report.makespan_us,
            };
            println!(
                "{:<12} {:<10} {:>6.3} {:>9.3} {:>9.3} {:>9.3} {:>11.1} {:>7} {:>6} {:>9} {:>12.1}",
                row.scenario,
                row.policy,
                row.availability,
                row.shed_admission,
                row.shed_fault,
                row.degraded_rate,
                row.p99_latency_us,
                row.hedge_fires,
                row.hedge_wins,
                row.failovers,
                row.downtime_us
            );
            rows.push(row);
        }
    }
    println!(
        "(availability counts degraded answers; `shed flt` is capacity lost to \
         faults, `shed adm` is plain overload)"
    );

    let report = ChaosReport {
        model: model.name.clone(),
        num_features: model.features.len(),
        shards: SHARDS,
        requests: n_requests,
        gap_us: GAP_US,
        slo_deadline_us,
        interconnect: scale.interconnect_name.clone(),
        no_fault_identity,
        rows,
    };
    opts.write_json(&report);

    if opts.check && !gates_hold(&report) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI robustness gates (see module docs).
fn gates_hold(report: &ChaosReport) -> bool {
    if !report.no_fault_identity {
        eprintln!(
            "check FAILED: the no-fault resilient path diverged from the plain \
             serving tier — the fault machinery is not free"
        );
        return false;
    }
    let avail = |scenario: &str, policy: &str| {
        report
            .rows
            .iter()
            .find(|r| r.scenario == scenario && r.policy == policy)
            .map(|r| r.availability)
            .expect("sweep covers the gated cell")
    };
    let mitigated = avail("crash", "mitigated");
    let bare = avail("crash", "none");
    if mitigated < AVAILABILITY_FLOOR {
        eprintln!(
            "check FAILED: mitigated availability {mitigated:.3} under the scripted \
             crash is below the {AVAILABILITY_FLOOR} floor"
        );
        return false;
    }
    if bare >= mitigated {
        eprintln!(
            "check FAILED: unmitigated availability {bare:.3} is not strictly below \
             the mitigated tier's {mitigated:.3} — the crash scenario has no teeth"
        );
        return false;
    }
    println!(
        "check passed: no-fault path identical to the plain tier; crash availability \
         {mitigated:.3} (mitigated) >= {AVAILABILITY_FLOOR} > {bare:.3} (unmitigated)"
    );
    true
}
