//! Fleet experiment: heterogeneity-aware multi-model serving over a pool
//! of simulated devices.
//!
//! Serves the full model portfolio — the Table-1 models A–E, the
//! MLPerf-like small config and the 10k-feature scale test — concurrently
//! over a heterogeneous device pool (V100-class, A100-class and a small
//! edge-class arch), each model backed by its own sharded serving tier
//! with per-arch tuned RecFlex engines. Traffic is a deterministic
//! multi-scenario workload: seeded diurnal curves with staggered phases,
//! a flash crowd on one scenario, and per-scenario Poisson arrival mixes
//! merged into one fleet trace.
//!
//! Three placement strategies compete at the same aggregate device
//! budget:
//!
//! * `hetero` — cost-aware placement ([`FleetAssignment::cheapest_fit`]):
//!   each model goes to the class where its tuned schedule profile is
//!   measured cheapest (Hercules-style), highest-regret models first.
//! * `round_robin` — capacity-aware striping, blind to costs.
//! * `homogeneous` — the same budget spent on one uniform V100 pool.
//!
//! Every member applies a DeepRecSys-style per-query admission gate
//! (predicted device time vs the model's SLO) and an SLO-aware shed at
//! arrival; the fleet report rolls up per-model SLO attainment into the
//! fleet-wide number the strategies are graded on.
//!
//! Everything is seeded: two runs print identical numbers, and the CI
//! `fleet-replay` job asserts it by diffing `--json` outputs. `--check`
//! enforces the acceptance gates:
//!
//! 1. **Placement wins** — `hetero` fleet-wide SLO attainment is strictly
//!    higher than both `round_robin` and `homogeneous`.
//! 2. **Degenerate identity** — a 1-model, 1-class fleet with no gate and
//!    no deadline reproduces the underlying `ShardedServeRuntime` report
//!    byte-for-byte (as JSON).

use std::process::ExitCode;

use recflex_baselines::TorchRecBackend;
use recflex_bench::{CliOpts, Scale};
use recflex_core::RecFlexEngine;
use recflex_data::{Batch, Dataset, FleetAssignment, ModelConfig, ModelPreset, Placement};
use recflex_serve::{
    BatchPolicy, ClassFaultKind, ClassFaultWindow, DeviceClass, DiurnalCurve, ElasticityConfig,
    FlashCrowd, FleetBrownoutConfig, FleetChaosConfig, FleetFaultSpec, FleetMember, FleetReport,
    FleetRuntime, HealthPolicy, PressureSignal, QueryGate, ScenarioSpec, ServeConfig,
    ShardedServeRuntime, TrafficShape, WorkloadSpec,
};
use recflex_sim::GpuArch;
use serde::Serialize;

/// Root seed for the fleet workload.
const SEED: u64 = 42;
/// Offered load on each model's anchor class (fraction of one device's
/// throughput at the mean batch size).
const TARGET_UTIL_HEAVY: f64 = 0.5;
/// Edge-anchored (light) models run cooler — the edge class is capacity,
/// not speed.
const TARGET_UTIL_LIGHT: f64 = 0.4;
/// SLO deadline as a multiple of the model's mean request cost on its
/// anchor class.
const SLO_FACTOR: f64 = 8.0;
/// Diurnal peak-to-trough swing (DeepRecSys reports ~2× over a day).
const DIURNAL_SWING: f64 = 2.0;
/// Flash-crowd rate multiplier on the crowded scenario.
const CROWD_MULT: f64 = 2.0;

#[derive(Serialize)]
struct ModelRow {
    model: String,
    class: String,
    shards: usize,
    offered: u64,
    gate_shed: u64,
    slo_attainment: f64,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct ClassRow {
    class: String,
    devices: usize,
    utilization: f64,
}

#[derive(Serialize)]
struct StrategyRow {
    strategy: String,
    slo_attainment: f64,
    makespan_us: f64,
    models: Vec<ModelRow>,
    classes: Vec<ClassRow>,
}

/// Chaos-scenario trajectory metrics: a compact two-member fleet under a
/// mid-run V100-class outage with drain-and-migrate and the brownout
/// ladder enabled. `bench_check` tracks both leaves higher-better; the
/// full acceptance gates live in the `serving_fleet_chaos` experiment.
#[derive(Serialize)]
struct ChaosSummary {
    availability: f64,
    slo_attainment: f64,
    migrations_completed: u32,
}

#[derive(Serialize)]
struct FleetBenchReport {
    scenarios: Vec<String>,
    requests_per_scenario: usize,
    device_budget: usize,
    /// Per (model, class) mean request cost, µs — the measured matrix the
    /// hetero placement runs on.
    cost_matrix_us: Vec<Vec<f64>>,
    class_names: Vec<String>,
    /// Gate 2: the degenerate 1-model/1-class fleet reproduced the plain
    /// sharded tier byte-for-byte.
    degenerate_identity: bool,
    chaos: ChaosSummary,
    rows: Vec<StrategyRow>,
}

/// One scenario's static description, before costs are known.
struct Portfolio {
    names: Vec<String>,
    models: Vec<ModelConfig>,
    /// Devices (shards) each model's tier spans, any class.
    demand: Vec<usize>,
}

fn portfolio(scale: &Scale) -> Portfolio {
    // Scale10k leads so round-robin striping stays within capacity; it
    // runs at half the harness fraction like the `scale_10k` experiment.
    let presets = [
        (ModelPreset::Scale10k, 0.5, 2usize),
        (ModelPreset::A, 1.0, 1),
        (ModelPreset::B, 1.0, 1),
        (ModelPreset::C, 1.0, 1),
        (ModelPreset::D, 1.0, 1),
        (ModelPreset::E, 1.0, 1),
        (ModelPreset::MLPerfLike, 1.0, 1),
    ];
    let mut p = Portfolio {
        names: Vec::new(),
        models: Vec::new(),
        demand: Vec::new(),
    };
    for (preset, frac, shards) in presets {
        let model = preset.scaled((scale.model_frac * frac).min(1.0));
        p.names.push(model.name.clone());
        p.models.push(model);
        p.demand.push(shards);
    }
    p
}

/// Mean batch size of scenario `idx`'s stream (sizes are independent of
/// the gap and the shape, so a provisional workload suffices).
fn mean_batch_size(model: &ModelConfig, idx: usize, n: usize) -> f64 {
    let provisional = recflex_serve::FleetWorkload {
        scenarios: vec![ScenarioSpec {
            name: model.name.clone(),
            workload: WorkloadSpec::long_tail(100.0),
            shape: TrafficShape::flat(),
            requests: n,
            priority: 1,
        }],
        seed: SEED ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    };
    let stream = provisional.scenario_stream(0, model);
    let total: u64 = stream.iter().map(|r| r.batch.batch_size as u64).sum();
    total as f64 / n.max(1) as f64
}

/// Measure the (model × class) cost matrix: tune a RecFlex engine per
/// cell and probe a mean-sized batch. Entry `[m][c]` is the mean request
/// cost of model `m` on one class-`c` device, µs.
fn cost_matrix(
    portfolio: &Portfolio,
    archs: &[&GpuArch],
    mean_sizes: &[f64],
    scale: &Scale,
) -> Vec<Vec<f64>> {
    portfolio
        .models
        .iter()
        .enumerate()
        .map(|(m, model)| {
            let history = Dataset::synthesize(model, 3, scale.batch_size, 7);
            let tables = recflex_embedding::TableSet::for_model(model);
            let probe = Batch::generate(model, (mean_sizes[m] as u32).max(1), 0xF1EE7);
            archs
                .iter()
                .map(|arch| {
                    let engine = RecFlexEngine::tune(model, &history, arch, &scale.tuner);
                    recflex_baselines::Backend::run(&engine, model, &tables, &probe, arch)
                        .expect("probe batch runs")
                        .latency_us
                })
                .collect()
        })
        .collect()
}

/// Build one strategy's fleet: each member's tier spans `demand[m]`
/// devices of its assigned class, with per-shard engines tuned on that
/// class's arch.
fn build_fleet<'a>(
    portfolio: &'a Portfolio,
    assignment: &FleetAssignment,
    classes: Vec<DeviceClass<'a>>,
    costs: &[Vec<f64>],
    class_cost_idx: &[usize],
    slos: &[f64],
    scale: &Scale,
) -> FleetRuntime<'a> {
    let members = portfolio
        .models
        .iter()
        .enumerate()
        .map(|(m, model)| {
            let class = assignment.class_of[m];
            let arch = classes[class].arch;
            let placement = Placement::balance(model, portfolio.demand[m]);
            let runtime = ShardedServeRuntime::build(
                model,
                arch,
                placement,
                ServeConfig {
                    streams: 4,
                    policy: BatchPolicy::DynamicPacked {
                        max_batch: 256,
                        max_wait_us: 0.25 * slos[m],
                    },
                    slo_deadline_us: Some(slos[m]),
                    closed_loop: false,
                    hot_shard_cap: None,
                },
                scale.interconnect.clone(),
                |sub| {
                    let history = Dataset::synthesize(sub, 3, scale.batch_size, 7);
                    Box::new(RecFlexEngine::tune(sub, &history, arch, &scale.tuner))
                },
            );
            // Predicted per-sample device cost on the assigned class, for
            // the DeepRecSys-style admission gate.
            let cost_per_sample_us = costs[m][class_cost_idx[class]];
            FleetMember {
                name: portfolio.names[m].clone(),
                class,
                runtime,
                slo_deadline_us: Some(slos[m]),
                gate: Some(QueryGate {
                    cost_per_sample_us,
                    deadline_us: slos[m],
                }),
                tuning: None,
            }
        })
        .collect();
    FleetRuntime { classes, members }
}

/// Gate 2: a 1-model, 1-class fleet with no gate and no deadline must
/// serialize byte-identically to the plain sharded tier.
fn degenerate_identity(scale: &Scale) -> bool {
    let model = ModelPreset::C.scaled(scale.model_frac);
    let arch = GpuArch::v100();
    let config = ServeConfig {
        streams: 4,
        policy: BatchPolicy::Split { cap: 256 },
        slo_deadline_us: None,
        closed_loop: false,
        hot_shard_cap: None,
    };
    let build = || {
        ShardedServeRuntime::build(
            &model,
            &arch,
            Placement::balance(&model, 1),
            config,
            scale.interconnect.clone(),
            |m| Box::new(TorchRecBackend::compile(m)),
        )
    };
    let workload = recflex_serve::FleetWorkload {
        scenarios: vec![ScenarioSpec {
            name: model.name.clone(),
            workload: WorkloadSpec::long_tail(400.0),
            shape: TrafficShape::flat(),
            requests: 24,
            priority: 1,
        }],
        seed: SEED,
    };
    let fleet = FleetRuntime {
        classes: vec![DeviceClass {
            name: "V100".to_string(),
            arch: &arch,
            devices: 1,
        }],
        members: vec![FleetMember {
            name: model.name.clone(),
            class: 0,
            runtime: build(),
            slo_deadline_us: None,
            gate: None,
            tuning: None,
        }],
    };
    let via_fleet = fleet
        .serve(&workload.merged(&[&model]))
        .expect("fleet serves");
    let direct = build()
        .serve(&WorkloadSpec::long_tail(400.0).stream(&model, 24, SEED))
        .expect("direct tier serves");
    serde_json::to_string(&via_fleet.models[0].report).expect("serialize")
        == serde_json::to_string(&direct).expect("serialize")
}

/// The chaos trajectory cell: model A pinned to a dying V100 class with
/// one spare A100 to escape to, model C healthy on A100.
fn chaos_summary(scale: &Scale) -> ChaosSummary {
    let models = [
        ModelPreset::A.scaled(scale.model_frac),
        ModelPreset::C.scaled(scale.model_frac),
    ];
    let v100 = GpuArch::v100();
    let a100 = GpuArch::a100();
    let archs = [&v100, &a100];
    let pinned = [0usize, 1];
    let n = (scale.eval_batches * 8).clamp(16, 32);
    // Anchor gaps and SLOs on a probed mean-request cost so the cell
    // stays underloaded (and the health monitor fault-driven) at every
    // harness scale.
    let costs: Vec<f64> = models
        .iter()
        .zip(pinned)
        .map(|(model, class)| {
            let tables = recflex_embedding::TableSet::for_model(model);
            let backend = TorchRecBackend::compile(model);
            let probe = Batch::generate(model, 32, 0xF1EE7);
            recflex_baselines::Backend::run(&backend, model, &tables, &probe, archs[class])
                .expect("probe batch runs")
                .latency_us
        })
        .collect();
    let slos: Vec<f64> = costs.iter().map(|c| 8.0 * c).collect();
    let workload = recflex_serve::FleetWorkload {
        scenarios: models
            .iter()
            .zip(&costs)
            .map(|(model, cost)| ScenarioSpec {
                name: model.name.clone(),
                workload: WorkloadSpec::long_tail(cost / 0.35),
                shape: TrafficShape::flat(),
                requests: n,
                priority: 1,
            })
            .collect(),
        seed: SEED,
    };
    let span = costs.iter().fold(0.0f64, |a, c| a.max(c / 0.35)) * n as f64;
    let epoch_us = span / 16.0;
    let tier = |m: usize, class: usize| {
        ShardedServeRuntime::build(
            &models[m],
            archs[class],
            Placement::balance(&models[m], 1),
            ServeConfig {
                streams: 4,
                policy: BatchPolicy::Split { cap: 256 },
                slo_deadline_us: Some(slos[m]),
                closed_loop: false,
                hot_shard_cap: None,
            },
            scale.interconnect.clone(),
            |sub| Box::new(TorchRecBackend::compile(sub)),
        )
    };
    let mut fleet = FleetRuntime {
        classes: vec![
            DeviceClass {
                name: "V100".to_string(),
                arch: &v100,
                devices: 1,
            },
            DeviceClass {
                name: "A100".to_string(),
                arch: &a100,
                devices: 2,
            },
        ],
        members: (0..models.len())
            .map(|m| FleetMember {
                name: models[m].name.clone(),
                class: pinned[m],
                runtime: tier(m, pinned[m]),
                slo_deadline_us: Some(slos[m]),
                gate: None,
                tuning: None,
            })
            .collect(),
    };
    let chaos = FleetChaosConfig {
        faults: FleetFaultSpec {
            class_windows: vec![ClassFaultWindow {
                class: 0,
                kind: ClassFaultKind::Outage,
                start_us: 0.35 * span,
                end_us: 0.7 * span,
            }],
            background: None,
        }
        .plan(&[1, 1], span, SEED),
        epoch_us,
        elasticity: Some(ElasticityConfig {
            health: HealthPolicy {
                signal: PressureSignal::LeakyBucket {
                    tau_us: epoch_us / 2.0,
                },
                max_shortfall: 0.5,
                max_backlog_us: f64::INFINITY,
            },
            drain_stagger_us: epoch_us / 8.0,
            handoff_us: epoch_us / 2.0,
            cost_matrix_us: (0..models.len()).map(|m| vec![costs[m]; 2]).collect(),
        }),
        brownout: Some(FleetBrownoutConfig {
            signal: PressureSignal::Instantaneous,
            tighten_above: 0.05,
            shed_above: 0.15,
            degrade_above: 0.25,
            gate_tighten: 0.6,
            priorities: Vec::new(),
        }),
    };
    let report = fleet
        .serve_chaos(&workload.merged(&[&models[0], &models[1]]), &chaos, tier)
        .expect("chaos cell serves");
    let stats = report.chaos.expect("chaos cell carries stats");
    ChaosSummary {
        availability: stats.availability,
        slo_attainment: report.slo_attainment,
        migrations_completed: stats.migrations_completed,
    }
}

fn strategy_row(strategy: &str, report: &FleetReport) -> StrategyRow {
    StrategyRow {
        strategy: strategy.to_string(),
        slo_attainment: report.slo_attainment,
        makespan_us: report.makespan_us,
        models: report
            .models
            .iter()
            .map(|m| ModelRow {
                model: m.name.clone(),
                class: m.class.clone(),
                shards: m.shards,
                offered: m.requests_offered,
                gate_shed: m.gate_shed,
                slo_attainment: m.slo_attainment,
                p50_us: m.p50_us,
                p99_us: m.p99_us,
            })
            .collect(),
        classes: report
            .classes
            .iter()
            .map(|c| ClassRow {
                class: c.name.clone(),
                devices: c.devices,
                utilization: c.utilization,
            })
            .collect(),
    }
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let v100 = GpuArch::v100();
    let a100 = GpuArch::a100();
    let edge = GpuArch::edge();
    let archs: Vec<&GpuArch> = vec![&v100, &a100, &edge];
    let class_names = ["V100", "A100", "Edge"];
    let capacity = [3usize, 3, 2];
    let device_budget: usize = capacity.iter().sum();

    let portfolio = portfolio(&scale);
    let n_requests = (scale.eval_batches * 8).clamp(16, 64);

    println!(
        "== serving fleet: {} models over {{V100x3, A100x3, Edgex2}}, {} requests/scenario ==",
        portfolio.models.len(),
        n_requests
    );

    // Measure the cost matrix: mean request cost per (model, class).
    let mean_sizes: Vec<f64> = portfolio
        .models
        .iter()
        .enumerate()
        .map(|(m, model)| mean_batch_size(model, m, n_requests))
        .collect();
    let costs = cost_matrix(&portfolio, &archs, &mean_sizes, &scale);
    for (m, row) in costs.iter().enumerate() {
        println!(
            "  cost {:<12} {:>9.1} us (V100) {:>9.1} us (A100) {:>9.1} us (Edge)",
            portfolio.names[m], row[0], row[1], row[2]
        );
    }

    // The cost-aware assignment, computed first: it also defines each
    // model's SLO class. A model the scheduler parks on the edge class is
    // a low-regret, latency-tolerant member — its arrival rate and SLO
    // budget anchor to the edge cost (and it runs cooler); everyone else
    // anchors to their best big-class cost. The anchors derive only from
    // the measured cost matrix, so the workload is identical across all
    // three strategies.
    let hetero = FleetAssignment::cheapest_fit(&costs, &portfolio.demand, &capacity);
    let edge_class = capacity.len() - 1;
    let anchors: Vec<f64> = (0..portfolio.models.len())
        .map(|m| {
            if hetero.class_of[m] == edge_class {
                costs[m][edge_class]
            } else {
                costs[m][0].min(costs[m][1])
            }
        })
        .collect();
    let gaps: Vec<f64> = (0..portfolio.models.len())
        .map(|m| {
            let util = if hetero.class_of[m] == edge_class {
                TARGET_UTIL_LIGHT
            } else {
                TARGET_UTIL_HEAVY
            };
            anchors[m] / util
        })
        .collect();
    let slos: Vec<f64> = anchors.iter().map(|a| SLO_FACTOR * a).collect();

    // The fleet workload: staggered diurnal curves, one flash crowd.
    let workload = recflex_serve::FleetWorkload {
        scenarios: portfolio
            .models
            .iter()
            .enumerate()
            .map(|(m, model)| {
                let span = gaps[m] * n_requests as f64;
                let mut shape = TrafficShape {
                    diurnal: Some(DiurnalCurve {
                        period_us: span / 2.0,
                        peak_to_trough: DIURNAL_SWING,
                        phase: 0.13 * m as f64,
                    }),
                    flash_crowds: Vec::new(),
                };
                if m == 1 {
                    shape.flash_crowds.push(FlashCrowd {
                        start_us: 0.45 * span,
                        duration_us: 0.08 * span,
                        multiplier: CROWD_MULT,
                    });
                }
                ScenarioSpec {
                    name: model.name.clone(),
                    workload: WorkloadSpec::long_tail(gaps[m]),
                    shape,
                    requests: n_requests,
                    priority: 1,
                }
            })
            .collect(),
        seed: SEED,
    };
    let model_refs: Vec<&ModelConfig> = portfolio.models.iter().collect();
    let merged = workload.merged(&model_refs);

    // The two baselines at the same aggregate budget.
    let rr = FleetAssignment::round_robin(&portfolio.demand, &capacity);
    let homog = FleetAssignment::homogeneous(portfolio.models.len(), 0, 1);

    let hetero_classes: Vec<DeviceClass<'_>> = class_names
        .iter()
        .zip(&archs)
        .zip(capacity)
        .map(|((name, arch), devices)| DeviceClass {
            name: name.to_string(),
            arch,
            devices,
        })
        .collect();
    let rr_classes: Vec<DeviceClass<'_>> = hetero_classes
        .iter()
        .map(|c| DeviceClass {
            name: c.name.clone(),
            arch: c.arch,
            devices: c.devices,
        })
        .collect();
    let homog_classes = vec![DeviceClass {
        name: "V100".to_string(),
        arch: &v100,
        devices: device_budget,
    }];

    // Per-sample gate costs: the cost matrix holds mean *request* cost;
    // divide by the mean batch size per model inside build via a scaled
    // copy of the matrix.
    let per_sample: Vec<Vec<f64>> = costs
        .iter()
        .enumerate()
        .map(|(m, row)| row.iter().map(|c| c / mean_sizes[m].max(1.0)).collect())
        .collect();

    let mut rows = Vec::new();
    for (name, assignment, classes, cost_idx) in [
        ("hetero", &hetero, hetero_classes, vec![0usize, 1, 2]),
        ("round_robin", &rr, rr_classes, vec![0, 1, 2]),
        ("homogeneous", &homog, homog_classes, vec![0]),
    ] {
        let fleet = build_fleet(
            &portfolio,
            assignment,
            classes,
            &per_sample,
            &cost_idx,
            &slos,
            &scale,
        );
        let report = fleet.serve(&merged).expect("fleet serves");
        let row = strategy_row(name, &report);
        println!(
            "{:<12} attainment {:>6.3} makespan {:>12.1} us",
            row.strategy, row.slo_attainment, row.makespan_us
        );
        for m in &row.models {
            println!(
                "    {:<12} on {:<5} x{} attain {:>6.3} gate-shed {:>3} p99 {:>10.1} us",
                m.model, m.class, m.shards, m.slo_attainment, m.gate_shed, m.p99_us
            );
        }
        for c in &row.classes {
            println!(
                "    class {:<5} x{} util {:>6.3}",
                c.class, c.devices, c.utilization
            );
        }
        rows.push(row);
    }

    let degenerate = degenerate_identity(&scale);
    println!("degenerate 1-model/1-class fleet identical to plain tier: {degenerate}");

    let chaos = chaos_summary(&scale);
    println!(
        "chaos cell: availability {:.3} attainment {:.3} migrations {}",
        chaos.availability, chaos.slo_attainment, chaos.migrations_completed
    );

    let report = FleetBenchReport {
        scenarios: portfolio.names.clone(),
        requests_per_scenario: n_requests,
        device_budget,
        cost_matrix_us: costs,
        class_names: class_names.iter().map(|s| s.to_string()).collect(),
        degenerate_identity: degenerate,
        chaos,
        rows,
    };
    opts.write_json(&report);

    if opts.check && !gates_hold(&report) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI acceptance gates (see module docs).
fn gates_hold(report: &FleetBenchReport) -> bool {
    if !report.degenerate_identity {
        eprintln!(
            "check FAILED: the degenerate 1-model/1-class fleet diverged from the \
             plain sharded tier — the fleet wrapper is not free"
        );
        return false;
    }
    let attain = |strategy: &str| {
        report
            .rows
            .iter()
            .find(|r| r.strategy == strategy)
            .map(|r| r.slo_attainment)
            .expect("sweep covers the gated strategy")
    };
    let hetero = attain("hetero");
    let rr = attain("round_robin");
    let homog = attain("homogeneous");
    if hetero <= rr {
        eprintln!(
            "check FAILED: hetero-aware attainment {hetero:.3} is not strictly above \
             round-robin {rr:.3}"
        );
        return false;
    }
    if hetero <= homog {
        eprintln!(
            "check FAILED: hetero-aware attainment {hetero:.3} is not strictly above \
             the homogeneous pool {homog:.3}"
        );
        return false;
    }
    println!(
        "check passed: hetero {hetero:.3} > round-robin {rr:.3}, homogeneous {homog:.3}; \
         degenerate fleet identical"
    );
    true
}
