//! Figure 12: fused-kernel performance as one feature's selected schedule
//! is swept across its whole candidate set, for three randomly picked
//! features of model A.
//!
//! The tuned choice ("o" in the paper's plot) should sit at or near the
//! sweep's minimum, and register-hungry candidates should show the
//! spill-induced cliff the paper describes for schedules 0–20.

use recflex_bench::{Fixture, Scale};
use recflex_compiler::{FusedKernelObject, FusedSpec};
use recflex_data::ModelPreset;
use recflex_schedules::enumerate_candidates;
use recflex_sim::{launch, GpuArch};

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let fixture = Fixture::prepare(ModelPreset::A, &arch, &scale);
    let engine = fixture.tune_recflex(&scale);
    let batch = &fixture.eval.batches()[0];

    // Three deterministic multi-hot "random" picks, as in the paper.
    let multi_hot: Vec<usize> = fixture
        .model
        .features
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.pooling.is_one_hot())
        .map(|(i, _)| i)
        .collect();
    let picks: Vec<usize> = [0.2, 0.5, 0.8]
        .iter()
        .map(|&q| multi_hot[(multi_hot.len() as f64 * q) as usize])
        .collect();

    for (pi, &f) in picks.iter().enumerate() {
        let cands = enumerate_candidates(f, &fixture.model.features[f]).unwrap();
        let tuned_choice = engine.tune_result.choices[f];
        println!(
            "\n== Fig.12 feature {pi} (model feature {f}, dim {}, {} candidates) ==",
            fixture.model.features[f].emb_dim,
            cands.len()
        );
        println!(
            "{:<6} {:<22} {:>14} {:>8}",
            "sched", "label", "latency (us)", "tuned"
        );

        let mut latencies = Vec::new();
        for (ci, cand) in cands.candidates.iter().enumerate() {
            let mut schedules = engine.tune_result.schedules.clone();
            schedules[f] = *cand;
            let mut spec = FusedSpec::new(schedules);
            spec.occupancy_target = engine.tune_result.occupancy;
            let obj = FusedKernelObject::compile(spec);
            let bound = obj.bind(&fixture.model, &fixture.tables, batch);
            let lat = launch(&bound, &arch, &obj.launch_config())
                .map(|r| r.latency_us)
                .unwrap_or(f64::INFINITY);
            latencies.push(lat);
            println!(
                "{:<6} {:<22} {:>14.1} {:>8}",
                ci,
                cand.label(),
                lat,
                if ci == tuned_choice { "o" } else { "" }
            );
        }

        let best = latencies.iter().copied().fold(f64::INFINITY, f64::min);
        let tuned = latencies[tuned_choice];
        println!(
            "tuned candidate is within {:.1}% of the sweep optimum ({:.1} vs {:.1} us)",
            100.0 * (tuned / best - 1.0),
            tuned,
            best
        );
    }
    println!("\nPaper reference: tuned points are optimal or near-optimal; register-");
    println!("hungry schedules under the occupancy constraint show a spill cliff.");
}
