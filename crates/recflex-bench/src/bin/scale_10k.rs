//! Section VI-B scalability: a dataset with an extremely large number of
//! features (10 000 at full scale). Paper: RecFlex keeps a 4.2× speedup
//! over TorchRec.

use recflex_baselines::{Backend, TorchRecBackend};
use recflex_bench::{print_normalized, Fixture, Row, Scale};
use recflex_data::ModelPreset;
use recflex_sim::GpuArch;

fn main() {
    let mut scale = Scale::from_env();
    // Scale10k at the harness default would already be paper-scale; halve
    // it so the experiment stays in the regime where the analytic model
    // differentiates schedules (see EXPERIMENTS.md on the fidelity limit
    // of aggregate-bandwidth-bound very large models).
    scale.model_frac = (scale.model_frac * 0.5).min(1.0);
    let arch = GpuArch::v100();
    let fixture = Fixture::prepare(ModelPreset::Scale10k, &arch, &scale);
    println!(
        "== Scalability: {} features (scale {}) ==",
        fixture.model.num_features(),
        scale.model_frac
    );
    let engine = fixture.tune_recflex(&scale);
    let torchrec = TorchRecBackend::compile(&fixture.model);

    let ours = fixture.total_latency(&engine).unwrap();
    let theirs = fixture.total_latency(&torchrec).unwrap();
    print_normalized(
        "Scale10k kernel latency",
        &[
            Row {
                name: "RecFlex".into(),
                latency_us: ours,
            },
            Row {
                name: torchrec.name().to_string(),
                latency_us: theirs,
            },
        ],
    );
    println!(
        "\nspeedup over TorchRec: {:.2}x  (paper: 4.2x)",
        theirs / ours
    );
}
