//! Figure 13: runtime thread mapping vs static (average / maximum
//! historical workload) mapping, on models A–E plus the long-tail request
//! experiment of Section VI-D.
//!
//! Paper: runtime mapping wins up to 1.41× over the average strategy and
//! 1.50× over the maximum strategy; on an unsplit 2 560-sample request the
//! static strategies degrade by 50.5 % / 40.4 %.

use recflex_bench::{geomean, long_tail_batch, Fixture, Scale};
use recflex_compiler::MappingStrategy;
use recflex_data::ModelPreset;
use recflex_embedding::analyze_batch;
use recflex_sim::{launch, GpuArch};

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    println!("== Fig.13: runtime vs static thread mapping (V100) ==");
    println!(
        "{:<8} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "model", "runtime (us)", "static-avg", "static-max", "vs avg", "vs max"
    );

    let mut avg_ratios = Vec::new();
    let mut max_ratios = Vec::new();
    for preset in ModelPreset::TABLE1 {
        let fixture = Fixture::prepare(preset, &arch, &scale);
        let engine = fixture.tune_recflex(&scale);
        let history: Vec<_> = fixture
            .history
            .batches()
            .iter()
            .map(|b| analyze_batch(&fixture.model, b))
            .collect();

        let mut totals = [0.0f64; 3];
        for batch in fixture.eval.batches() {
            for (i, strat) in [
                MappingStrategy::Runtime,
                MappingStrategy::StaticAverage,
                MappingStrategy::StaticMax,
            ]
            .iter()
            .enumerate()
            {
                let bound = engine.object.bind_static(
                    &fixture.model,
                    &fixture.tables,
                    batch,
                    &history,
                    *strat,
                );
                totals[i] += launch(&bound, &arch, &engine.object.launch_config())
                    .unwrap()
                    .latency_us;
            }
        }
        let (rt, avg, max) = (totals[0], totals[1], totals[2]);
        avg_ratios.push(avg / rt);
        max_ratios.push(max / rt);
        println!(
            "{:<8} {:>13.1} {:>13.1} {:>13.1} {:>8.2}x {:>8.2}x",
            preset.name(),
            rt,
            avg,
            max,
            avg / rt,
            max / rt
        );
    }
    println!(
        "\naverage improvement of runtime mapping: {:.2}x vs static-avg, {:.2}x vs static-max",
        geomean(&avg_ratios),
        geomean(&max_ratios)
    );
    println!("paper: up to 1.41x and 1.50x respectively");

    // Long-tail request: one unsplit 2 560-sample batch (model A).
    let fixture = Fixture::prepare(ModelPreset::A, &arch, &scale);
    let engine = fixture.tune_recflex(&scale);
    let history: Vec<_> = fixture
        .history
        .batches()
        .iter()
        .map(|b| analyze_batch(&fixture.model, b))
        .collect();
    let tail = long_tail_batch(&fixture.model);
    let mut lat = [0.0f64; 3];
    for (i, strat) in [
        MappingStrategy::Runtime,
        MappingStrategy::StaticAverage,
        MappingStrategy::StaticMax,
    ]
    .iter()
    .enumerate()
    {
        let bound =
            engine
                .object
                .bind_static(&fixture.model, &fixture.tables, &tail, &history, *strat);
        lat[i] = launch(&bound, &arch, &engine.object.launch_config())
            .unwrap()
            .latency_us;
    }
    println!("\n-- long-tail request (2560 samples, model A) --");
    println!(
        "runtime {:.1} us | static-avg {:.1} us | static-max {:.1} us",
        lat[0], lat[1], lat[2]
    );
    println!(
        "static degradation: avg {:.1}%, max {:.1}%  (paper: 50.5% and 40.4%)",
        100.0 * (lat[1] / lat[0] - 1.0),
        100.0 * (lat[2] / lat[0] - 1.0)
    );
}
