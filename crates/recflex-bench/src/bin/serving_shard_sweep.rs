//! Multi-shard serving sweep (Section VII "Larger model sizes" composed
//! with the Section VI-D serving runtime).
//!
//! Crosses shard counts {1, 2, 4, 8} with three placement policies
//! (round-robin, LPT over expected bytes, LPT over measured per-feature
//! cost) and two offered loads, serving the same seeded long-tail Poisson
//! stream through `recflex-serve`'s sharded tier with a tuned RecFlex
//! engine per shard. Reports the latency breakdown per row: p50/p99
//! end-to-end, p50 pure device time, the all-gather overhang and the
//! straggler gap, plus per-shard peak queue depth.
//!
//! Everything is seeded — two runs print identical numbers, which the CI
//! determinism job asserts by diffing `--json` outputs. With `--check`
//! the binary also enforces the scaling acceptance gate: at the highest
//! load, p50 device time under the cost-driven placement must be monotone
//! non-increasing from 1 to 4 shards.

use std::process::ExitCode;

use recflex_bench::{CliOpts, Scale};
use recflex_core::{feature_cost_estimates, RecFlexEngine};
use recflex_data::{Dataset, ModelConfig, ModelPreset, Placement};
use recflex_serve::{BatchPolicy, ServeConfig, ShardedServeRuntime, WorkloadSpec};
use recflex_sim::GpuArch;
use serde::Serialize;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Mean Poisson inter-arrival gaps, µs: high load first.
const GAPS_US: [f64; 2] = [150.0, 600.0];
/// The policy the `--check` gate grades (measured cost, the default).
const GATED_POLICY: &str = "lpt_cost";

#[derive(Serialize)]
struct SweepRow {
    shards: usize,
    policy: String,
    gap_us: f64,
    p50_latency_us: f64,
    p99_latency_us: f64,
    p50_device_us: f64,
    mean_queue_us: f64,
    mean_gather_us: f64,
    p99_straggler_us: f64,
    max_queue_depth: usize,
    kernel_launches: u64,
    makespan_us: f64,
}

#[derive(Serialize)]
struct SweepReport {
    model: String,
    num_features: usize,
    requests: usize,
    streams: u32,
    split_cap: u32,
    interconnect: String,
    interconnect_gbps: f64,
    rows: Vec<SweepRow>,
}

/// The three placement policies under test, in report order.
fn placements(model: &ModelConfig, shards: usize, costs: &[f64]) -> Vec<(&'static str, Placement)> {
    vec![
        ("round_robin", Placement::round_robin(model, shards)),
        ("lpt_bytes", Placement::balance(model, shards)),
        ("lpt_cost", Placement::balance_by_cost(shards, costs)),
    ]
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let history = Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let costs = feature_cost_estimates(&model, &history, &arch);
    let interconnect = scale.interconnect.clone();
    let split_cap = 256u32;
    let config = ServeConfig {
        streams: 4,
        policy: BatchPolicy::Split { cap: split_cap },
        slo_deadline_us: None,
        closed_loop: false,
        hot_shard_cap: None,
    };
    let n_requests = (scale.eval_batches * 16).clamp(24, 96);

    println!(
        "== shard sweep: model {} ({} features), {n_requests} Poisson long-tail \
         requests, split@{split_cap}, {} gather ==",
        model.name,
        model.features.len(),
        scale.interconnect_name
    );
    println!(
        "{:<22} {:>9} {:>11} {:>11} {:>11} {:>11} {:>10} {:>10} {:>7}",
        "shards x policy",
        "gap (us)",
        "p50 (us)",
        "p99 (us)",
        "p50 dev",
        "queue (us)",
        "gather",
        "p99 strag",
        "depth"
    );

    let mut rows = Vec::new();
    for &shards in &SHARD_COUNTS {
        for (pname, placement) in placements(&model, shards, &costs) {
            let tier = ShardedServeRuntime::build(
                &model,
                &arch,
                placement,
                config,
                interconnect.clone(),
                |sub_model| {
                    let sub_history = Dataset::synthesize(sub_model, 3, scale.batch_size, 7);
                    Box::new(RecFlexEngine::tune(
                        sub_model,
                        &sub_history,
                        &arch,
                        &scale.tuner,
                    ))
                },
            );
            for &gap in &GAPS_US {
                let stream = WorkloadSpec::long_tail(gap).stream(&model, n_requests, 42);
                let report = tier.serve(&stream).expect("sweep config is valid");
                let row = SweepRow {
                    shards,
                    policy: pname.to_string(),
                    gap_us: gap,
                    p50_latency_us: report.percentile_us(0.5),
                    p99_latency_us: report.percentile_us(0.99),
                    p50_device_us: report.percentile_device_us(0.5),
                    mean_queue_us: report.mean_queue_us(),
                    mean_gather_us: report.mean_gather_us(),
                    p99_straggler_us: report.percentile_straggler_us(0.99),
                    max_queue_depth: report
                        .per_shard
                        .iter()
                        .map(|s| s.max_queue_depth)
                        .max()
                        .unwrap_or(0),
                    kernel_launches: report.kernel_launches,
                    makespan_us: report.makespan_us,
                };
                println!(
                    "{:<22} {:>9.0} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>10.2} {:>10.1} {:>7}",
                    format!("{shards} x {pname}"),
                    row.gap_us,
                    row.p50_latency_us,
                    row.p99_latency_us,
                    row.p50_device_us,
                    row.mean_queue_us,
                    row.mean_gather_us,
                    row.p99_straggler_us,
                    row.max_queue_depth
                );
                rows.push(row);
            }
        }
        println!();
    }
    println!(
        "(the slowest shard gates the all-gather, so the straggler column is \
         latency lost to placement imbalance)"
    );

    let report = SweepReport {
        model: model.name.clone(),
        num_features: model.features.len(),
        requests: n_requests,
        streams: config.streams,
        split_cap,
        interconnect: scale.interconnect_name.clone(),
        interconnect_gbps: interconnect.bandwidth_gbps,
        rows,
    };
    opts.write_json(&report);

    if opts.check && !scaling_gate_holds(&report) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI acceptance gate: under the cost-driven placement at the highest
/// load, adding shards (1 → 2 → 4) must not increase p50 device time.
fn scaling_gate_holds(report: &SweepReport) -> bool {
    let gap = GAPS_US[0];
    let p50_dev = |shards: usize| {
        report
            .rows
            .iter()
            .find(|r| r.shards == shards && r.policy == GATED_POLICY && r.gap_us == gap)
            .map(|r| r.p50_device_us)
            .expect("sweep covers the gated cell")
    };
    let series: Vec<(usize, f64)> = [1, 2, 4].map(|s| (s, p50_dev(s))).to_vec();
    for pair in series.windows(2) {
        let ((a, ta), (b, tb)) = (pair[0], pair[1]);
        if tb > ta + 1e-6 {
            eprintln!(
                "check FAILED: p50 device time rose from {ta:.1} us ({a} shards) \
                 to {tb:.1} us ({b} shards) under {GATED_POLICY} at gap {gap} us"
            );
            return false;
        }
    }
    println!(
        "check passed: p50 device time monotone non-increasing over {:?} shards \
         ({GATED_POLICY}, gap {gap} us)",
        [1, 2, 4]
    );
    true
}
