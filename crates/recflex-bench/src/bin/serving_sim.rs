//! Online-serving experiments (Section VI-D context).
//!
//! Part 1 — the original offline table: a mixed request stream with one
//! long-tail request, served closed-loop with and without industrial
//! batch splitting, on RecFlex and TorchRec.
//!
//! Part 2 — a load sweep on the open-loop runtime from `recflex-serve`:
//! offered load (Poisson arrivals of a heavy-tailed request mix) against
//! p50/p99 latency and shed rate, for three batching policies (unsplit,
//! split, dynamic batching) across RecFlex, TorchRec and TensorFlow,
//! with an SLO admission gate. Everything is seeded, so two runs of
//! this binary print identical numbers.

use recflex_baselines::{Backend, TensorFlowBackend, TorchRecBackend};
use recflex_bench::{CliOpts, Scale};
use recflex_core::{RecFlexEngine, ServingSimulator};
use recflex_data::{Batch, Dataset, ModelConfig, ModelPreset};
use recflex_embedding::TableSet;
use recflex_serve::{BatchPolicy, ServeConfig, ServeRuntime, WorkloadSpec};
use recflex_sim::GpuArch;
use recflex_tuner::TunerConfig;
use serde::Serialize;

/// One row of the closed-loop table, as written to `--json`.
#[derive(Serialize)]
struct ClosedLoopRow {
    backend: String,
    mode: String,
    mean_us: f64,
    p99_us: f64,
    max_us: f64,
    kernel_launches: u32,
}

/// One row of the open-loop load sweep, as written to `--json`.
#[derive(Serialize)]
struct SweepRow {
    backend: String,
    policy: String,
    gap_us: f64,
    p50_us: f64,
    p99_us: f64,
    mean_queue_us: f64,
    shed_rate: f64,
}

#[derive(Serialize)]
struct SimReport {
    model: String,
    num_features: usize,
    closed_loop: Vec<ClosedLoopRow>,
    load_sweep: Vec<SweepRow>,
}

fn closed_loop_table(
    model: &ModelConfig,
    tables: &TableSet,
    arch: &GpuArch,
    engine: &RecFlexEngine,
    torchrec: &TorchRecBackend,
) -> Vec<ClosedLoopRow> {
    // Request stream: mostly moderate requests, one 2 560-sample tail.
    let mut requests: Vec<Batch> = [64u32, 128, 256, 96, 512, 32, 192, 256]
        .iter()
        .enumerate()
        .map(|(i, &bs)| Batch::generate(model, bs, 1000 + i as u64))
        .collect();
    requests.push(Batch::generate(model, 2560, 9999));

    println!(
        "== serving simulation: {} requests incl. one 2560-sample tail ==",
        requests.len()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "configuration", "mean (us)", "p99 (us)", "max (us)", "launches"
    );
    let mut rows = Vec::new();
    for (name, backend) in [("RecFlex", engine as &dyn Backend), ("TorchRec", torchrec)] {
        for (mode, cap) in [("split@512", Some(512u32)), ("unsplit", None)] {
            let server = ServingSimulator {
                backend,
                model,
                tables,
                arch: arch.clone(),
                max_batch: cap,
            };
            let stats = server.serve(&requests).unwrap();
            println!(
                "{:<22} {:>12.1} {:>12.1} {:>12.1} {:>10}",
                format!("{name} {mode}"),
                stats.mean_us(),
                stats.percentile_us(0.99),
                stats.percentile_us(1.0),
                stats.kernel_launches
            );
            rows.push(ClosedLoopRow {
                backend: name.to_string(),
                mode: mode.to_string(),
                mean_us: stats.mean_us(),
                p99_us: stats.percentile_us(0.99),
                max_us: stats.percentile_us(1.0),
                kernel_launches: stats.kernel_launches,
            });
        }
    }
    println!("\n(runtime thread mapping lets RecFlex absorb the unsplit tail, Section VI-D)\n");
    rows
}

fn load_sweep(
    model: &ModelConfig,
    tables: &TableSet,
    arch: &GpuArch,
    backends: &[(&str, &dyn Backend)],
    n_requests: usize,
) -> Vec<SweepRow> {
    let policies = [
        ("unsplit", BatchPolicy::Unsplit),
        ("split@256", BatchPolicy::Split { cap: 256 }),
        (
            "dynamic@256",
            BatchPolicy::Dynamic {
                max_batch: 256,
                max_wait_us: 300.0,
            },
        ),
    ];
    // Offered load: mean inter-arrival gap in µs, high load to low.
    let gaps_us = [200.0, 500.0, 1000.0, 2000.0];
    let slo_deadline_us = 10_000.0;

    println!(
        "== open-loop load sweep: {n_requests} Poisson long-tail requests, \
         4 streams, SLO {slo_deadline_us} us =="
    );
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "configuration", "gap (us)", "p50 (us)", "p99 (us)", "queue (us)", "shed %"
    );
    let mut rows = Vec::new();
    for (bname, backend) in backends {
        for (pname, policy) in &policies {
            for &gap in &gaps_us {
                let stream = WorkloadSpec::long_tail(gap).stream(model, n_requests, 42);
                let runtime = ServeRuntime {
                    backend: *backend,
                    model,
                    tables,
                    arch,
                    config: ServeConfig {
                        streams: 4,
                        policy: *policy,
                        slo_deadline_us: Some(slo_deadline_us),
                        closed_loop: false,
                        hot_shard_cap: None,
                    },
                };
                let report = runtime.serve(&stream).unwrap();
                println!(
                    "{:<28} {:>10.0} {:>12.1} {:>12.1} {:>12.1} {:>8.1}",
                    format!("{bname} {pname}"),
                    gap,
                    report.percentile_us(0.5),
                    report.percentile_us(0.99),
                    report.mean_queue_us(),
                    report.shed_rate() * 100.0
                );
                rows.push(SweepRow {
                    backend: bname.to_string(),
                    policy: pname.to_string(),
                    gap_us: gap,
                    p50_us: report.percentile_us(0.5),
                    p99_us: report.percentile_us(0.99),
                    mean_queue_us: report.mean_queue_us(),
                    shed_rate: report.shed_rate(),
                });
            }
        }
        println!();
    }
    println!(
        "(dynamic batching trades queueing delay for fewer launches; splitting \
         caps per-kernel residency so the tail shares the device fairly)"
    );
    rows
}

fn main() {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let tables = TableSet::for_model(&model);
    let history = Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let engine = RecFlexEngine::tune(&model, &history, &arch, &TunerConfig::fast());
    let torchrec = TorchRecBackend::compile(&model);
    let tensorflow = TensorFlowBackend;

    let closed_loop = closed_loop_table(&model, &tables, &arch, &engine, &torchrec);

    let backends: Vec<(&str, &dyn Backend)> = vec![
        ("RecFlex", &engine),
        ("TorchRec", &torchrec),
        ("TensorFlow", &tensorflow),
    ];
    // Keep the sweep proportional to the configured scale so the smoke
    // run in CI stays fast while a full run gets a denser stream.
    let n_requests = (scale.eval_batches * 16).clamp(24, 96);
    let load_sweep = load_sweep(&model, &tables, &arch, &backends, n_requests);

    opts.write_json(&SimReport {
        model: model.name.clone(),
        num_features: model.features.len(),
        closed_loop,
        load_sweep,
    });
}
