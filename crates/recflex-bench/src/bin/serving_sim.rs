//! Online-serving simulation (Section VI-D context): a mixed request
//! stream with a long tail, served with and without the industrial
//! batch-splitting practice, on RecFlex and TorchRec.

use recflex_baselines::TorchRecBackend;
use recflex_bench::Scale;
use recflex_core::{RecFlexEngine, ServingSimulator};
use recflex_data::{Batch, Dataset, ModelPreset};
use recflex_embedding::TableSet;
use recflex_sim::GpuArch;
use recflex_tuner::TunerConfig;

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let tables = TableSet::for_model(&model);
    let history = Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let engine = RecFlexEngine::tune(&model, &history, &arch, &TunerConfig::fast());
    let torchrec = TorchRecBackend::compile(&model);

    // Request stream: mostly moderate requests, one 2 560-sample tail.
    let mut requests: Vec<Batch> = [64u32, 128, 256, 96, 512, 32, 192, 256]
        .iter()
        .enumerate()
        .map(|(i, &bs)| Batch::generate(&model, bs, 1000 + i as u64))
        .collect();
    requests.push(Batch::generate(&model, 2560, 9999));

    println!("== serving simulation: {} requests incl. one 2560-sample tail ==", requests.len());
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "configuration", "mean (us)", "p99 (us)", "max (us)", "launches"
    );
    for (name, backend) in [
        ("RecFlex", &engine as &dyn recflex_baselines::Backend),
        ("TorchRec", &torchrec),
    ] {
        for (mode, cap) in [("split@512", Some(512u32)), ("unsplit", None)] {
            let server = ServingSimulator {
                backend,
                model: &model,
                tables: &tables,
                arch: arch.clone(),
                max_batch: cap,
            };
            let stats = server.serve(&requests).unwrap();
            println!(
                "{:<22} {:>12.1} {:>12.1} {:>12.1} {:>10}",
                format!("{name} {mode}"),
                stats.mean_us(),
                stats.percentile_us(0.99),
                stats.percentile_us(1.0),
                stats.kernel_launches
            );
        }
    }
    println!("\n(runtime thread mapping lets RecFlex absorb the unsplit tail, Section VI-D)");
}
