//! Parallelism trajectory: wall-clock of the repo's two hottest parallel
//! paths at 1/2/4/8 pool threads, with a bit-stability proof.
//!
//! The vendored `rayon` work-stealing pool promises two things at once:
//! real speedups on multi-core hosts, and byte-identical outputs at any
//! thread count. This binary measures both on
//!
//! * **tuning_sweep** — `RecFlexEngine::tune` on the Model-A fixture (the
//!   paper's per-feature candidate sweep, the workload RecFlex farms over
//!   eight GPUs), and
//! * **shard_fanout** — `ShardedEngine::tune` + evaluation over four
//!   shards (the serving tier's per-device fan-out),
//!
//! each executed under an explicitly sized [`rayon::ThreadPool`] via
//! `install`, so one process compares thread counts directly. Every run
//! folds its results (schedule choices, occupancy, latency bits, pooled
//! output bits) into a digest; **any digest mismatch across thread counts
//! aborts with a non-zero exit even without `--check`** — nondeterminism
//! is never a soft failure.
//!
//! `BENCH_parallel.json` in the repo root tracks this trajectory at smoke
//! scale; the CI `bench-trajectory` job regenerates it and gates the
//! tracked `speedup_4t` ratio with `bench_check`. Wall-clock fields are
//! host-dependent and deliberately untracked.
//!
//! `--check` additionally enforces the acceptance floor — tuning-sweep
//! speedup at 4 threads ≥ 1.5× — whenever the host has ≥ 4 cores (or
//! `RECFLEX_REQUIRE_SPEEDUP=1` forces it; single-core hosts cannot
//! express a wall-clock speedup and skip the floor with a notice).

use std::process::ExitCode;
use std::time::Instant;

use recflex_bench::{CliOpts, Fixture, Scale};
use recflex_core::ShardedEngine;
use recflex_data::ModelPreset;
use recflex_sim::GpuArch;

/// Thread counts the trajectory sweeps.
const THREADS: &[usize] = &[1, 2, 4, 8];
/// Tuning-sweep speedup floor at 4 threads (acceptance criterion).
const MIN_SPEEDUP_4T: f64 = 1.5;

#[derive(serde::Serialize)]
struct RunReport {
    threads: usize,
    wall_ms: f64,
}

#[derive(serde::Serialize)]
struct SectionReport {
    name: String,
    /// Fold of the section's results — must be identical on every row.
    digest: String,
    runs: Vec<RunReport>,
    /// `wall(1 thread) / wall(4 threads)` — the tracked, host-normalized
    /// trajectory metric.
    speedup_4t: f64,
}

#[derive(serde::Serialize)]
struct ParallelBenchReport {
    /// Cores available on the generating host (1 ⇒ speedups ≈ 1.0 are
    /// expected and the `--check` floor is waived).
    host_threads: usize,
    reps: usize,
    scale: f64,
    sections: Vec<SectionReport>,
}

/// FNV-1a fold for result digests.
fn fold(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01b3)
}

/// Digest of a tuned single-device engine + its evaluation run.
fn tuning_sweep(fixture: &Fixture, scale: &Scale) -> u64 {
    let engine = fixture.tune_recflex(scale);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in &engine.tune_result.choices {
        h = fold(h, c as u64);
    }
    h = fold(h, engine.tune_result.occupancy.unwrap_or(0) as u64);
    for (k, lat) in &engine.tune_result.global_latencies {
        h = fold(h, *k as u64);
        h = fold(h, lat.to_bits());
    }
    for batch in fixture.eval.batches().iter().take(2) {
        let (out, report) = engine.run(batch).expect("eval run");
        h = fold(h, report.latency_us.to_bits());
        for v in out.data() {
            h = fold(h, v.to_bits() as u64);
        }
    }
    h
}

/// Digest of the 4-shard tier: per-device tuning plus evaluation fan-out.
fn shard_fanout(fixture: &Fixture, scale: &Scale) -> u64 {
    let sharded = ShardedEngine::tune(
        &fixture.model,
        &fixture.history,
        &fixture.arch,
        &scale.tuner,
        4,
    );
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for batch in fixture.eval.batches() {
        let (out, latency_us) = sharded.run(batch).expect("shard run");
        h = fold(h, latency_us.to_bits());
        for v in out.data() {
            h = fold(h, v.to_bits() as u64);
        }
    }
    h
}

/// Time `work` under an `n`-thread pool: `reps` repetitions, best wall
/// time wins (scheduling noise only ever slows a run down).
fn measure(n: usize, reps: usize, work: &dyn Fn() -> u64) -> (u64, f64) {
    let pool = rayon::ThreadPool::new(n);
    let mut digest = None;
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let d = pool.install(work);
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = digest {
            assert_eq!(prev, d, "digest changed between repetitions");
        }
        digest = Some(d);
    }
    (digest.expect("at least one rep"), best_ms)
}

fn run_section(name: &str, reps: usize, work: &dyn Fn() -> u64) -> Result<SectionReport, String> {
    println!("\n== {name} ==");
    println!("{:>8} {:>12}", "threads", "wall (ms)");
    let mut runs = Vec::new();
    let mut digest: Option<u64> = None;
    for &n in THREADS {
        let (d, wall_ms) = measure(n, reps, work);
        println!("{n:>8} {wall_ms:>12.1}");
        match digest {
            None => digest = Some(d),
            Some(prev) if prev != d => {
                return Err(format!(
                    "{name}: digest {d:016x} at {n} threads != {prev:016x} at 1 thread — \
                     parallel reduction is not deterministic"
                ));
            }
            Some(_) => {}
        }
        runs.push(RunReport {
            threads: n,
            wall_ms,
        });
    }
    let wall_of = |t: usize| {
        runs.iter()
            .find(|r| r.threads == t)
            .map(|r| r.wall_ms)
            .expect("swept thread count")
    };
    let speedup_4t = wall_of(1) / wall_of(4);
    println!(
        "speedup at 4 threads: {speedup_4t:.2}x  (digest {:016x})",
        digest.unwrap()
    );
    Ok(SectionReport {
        name: name.to_string(),
        digest: format!("{:016x}", digest.unwrap()),
        runs,
        speedup_4t,
    })
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps: usize = std::env::var("RECFLEX_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    println!("parallelism trajectory: host has {host_threads} core(s), {reps} rep(s) per cell");
    let arch = GpuArch::v100();
    let fixture = Fixture::prepare(ModelPreset::A, &arch, &scale);

    let mut sections = Vec::new();
    for (name, work) in [
        (
            "tuning_sweep",
            Box::new(|| tuning_sweep(&fixture, &scale)) as Box<dyn Fn() -> u64>,
        ),
        ("shard_fanout", Box::new(|| shard_fanout(&fixture, &scale))),
    ] {
        match run_section(name, reps, work.as_ref()) {
            Ok(s) => sections.push(s),
            Err(e) => {
                eprintln!("FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = ParallelBenchReport {
        host_threads,
        reps,
        scale: scale.model_frac,
        sections,
    };
    opts.write_json(&report);

    if opts.check {
        let require =
            host_threads >= 4 || std::env::var("RECFLEX_REQUIRE_SPEEDUP").is_ok_and(|v| v == "1");
        let tuning = report
            .sections
            .iter()
            .find(|s| s.name == "tuning_sweep")
            .expect("tuning section present");
        if !require {
            println!(
                "check: speedup floor skipped — {host_threads} core(s) cannot express a \
                 wall-clock speedup (set RECFLEX_REQUIRE_SPEEDUP=1 to force)"
            );
        } else if tuning.speedup_4t < MIN_SPEEDUP_4T {
            eprintln!(
                "check FAILED: tuning-sweep speedup at 4 threads is {:.2}x, below the \
                 {MIN_SPEEDUP_4T}x floor",
                tuning.speedup_4t
            );
            return ExitCode::FAILURE;
        } else {
            println!(
                "check passed: tuning-sweep speedup {:.2}x >= {MIN_SPEEDUP_4T}x, digests \
                 bit-identical across {:?} threads",
                tuning.speedup_4t, THREADS
            );
        }
    }
    ExitCode::SUCCESS
}
