//! Bench-trajectory regression gate: compare a freshly generated bench
//! report against the committed baseline and fail on metric regressions.
//!
//! ```text
//! bench_check <baseline.json> <current.json> [--tolerance 0.10]
//! ```
//!
//! Both files are parsed as generic JSON and walked with
//! [`recflex_bench::trajectory::compare`]: tracked metrics (SLO
//! attainment, availability, latency percentiles, `speedup_4t`, …) are
//! recognized by key name anywhere in the tree, so the same gate covers
//! `BENCH_fleet.json` and `BENCH_parallel.json` without per-file schema
//! code. Higher-is-better metrics may not drop more than `tolerance`
//! below the baseline; lower-is-better metrics may not rise more than
//! `tolerance` above it; a tracked baseline metric missing from the
//! current report is always a failure. Untracked fields — wall-clock
//! times, digests, host facts — are ignored, so the gate is portable
//! across runner hardware.

use std::process::ExitCode;

use recflex_bench::trajectory;

fn usage() -> ! {
    eprintln!("usage: bench_check <baseline.json> <current.json> [--tolerance FRAC]");
    std::process::exit(2)
}

fn load(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            flag if flag.starts_with("--") => usage(),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = &paths[..] else {
        usage()
    };

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let regressions = trajectory::compare(&baseline, &current, tolerance);
    if regressions.is_empty() {
        println!(
            "bench_check: {current_path} holds the {baseline_path} trajectory \
             (tolerance {:.0}%)",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_check: {} regression(s) vs {baseline_path} (tolerance {:.0}%):",
            regressions.len(),
            tolerance * 100.0
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
