//! Figure 10: end-to-end model performance (embedding + MLP 1024/256/128)
//! of RecFlex vs the baselines on V100 and A100.
//!
//! End-to-end speedups are smaller than the kernel speedups of Figure 9
//! because the DNN stage is identical across systems — the paper's
//! dilution effect (7.74×/2.69×/6.76×/1.85×).

use recflex_bench::{both_archs, print_average_speedups, print_normalized, Fixture, Row, Scale};
use recflex_core::EndToEndModel;
use recflex_data::ModelPreset;
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    let mut pools: BTreeMap<String, Vec<f64>> = BTreeMap::new();

    for arch in both_archs() {
        println!("\n#### {} ####", arch.name);
        for preset in ModelPreset::TABLE1 {
            let fixture = Fixture::prepare(preset, &arch, &scale);
            let engine = fixture.tune_recflex(&scale);

            let e2e_total = |backend: &dyn recflex_baselines::Backend| -> Option<f64> {
                if !backend.supports(&fixture.model) {
                    return None;
                }
                let m = EndToEndModel::paper_config(backend, &fixture.model, &fixture.tables);
                let mut total = 0.0;
                for b in fixture.eval.batches() {
                    total += m.latency(b, &arch).ok()?.total_us();
                }
                Some(total)
            };

            let ours = e2e_total(&engine).expect("RecFlex supports everything");
            let mut rows = vec![Row {
                name: "RecFlex".into(),
                latency_us: ours,
            }];
            for b in fixture.baselines() {
                if let Some(lat) = e2e_total(b.as_ref()) {
                    pools
                        .entry(b.name().to_string())
                        .or_default()
                        .push(lat / ours);
                    rows.push(Row {
                        name: b.name().to_string(),
                        latency_us: lat,
                    });
                }
            }
            print_normalized(
                &format!("Fig.10 {} / model {} end-to-end", arch.name, preset.name()),
                &rows,
            );
        }
    }

    let pooled: Vec<(String, Vec<f64>)> = pools.into_iter().collect();
    print_average_speedups("RecFlex (end-to-end)", &pooled);
    println!("\nPaper reference: 7.74x over TensorFlow, 2.69x over RECom,");
    println!("6.76x over HugeCTR, 1.85x over TorchRec (two-platform averages).");
}
