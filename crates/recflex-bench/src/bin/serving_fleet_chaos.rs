//! Fleet chaos experiment: correlated device-class outages against the
//! health-monitored drain-and-migrate controller and the fleet brownout
//! ladder.
//!
//! A three-model fleet runs over {V100×2, A100×2}: two members pinned to
//! the V100 class, one to A100, each a single-shard tier with a
//! DeepRecSys-style admission gate. Mid-run the whole V100 class goes
//! dark ([`ClassFaultKind::Outage`] over `[0.35, 0.7)` of the span) and
//! three response postures compete on the identical trace:
//!
//! * `static`    — faults only: placement is frozen, stranded traffic is
//!   shed by the per-tier SLO admission check.
//! * `brownout`  — the fleet brownout ladder answers outage-stranded
//!   traffic with degraded zero-pooled edge records, but nobody moves.
//! * `elastic`   — the health monitor drains the first unhealthy V100
//!   member and re-places it on the spare A100 device
//!   ([`FleetAssignment::rehome`] against residual capacity); the ladder
//!   covers the drain window and whoever could not be re-placed.
//!
//! Everything is seeded and members are served in member order, so two
//! runs — at any `RECFLEX_THREADS` — print identical numbers. `--check`
//! enforces the acceptance gates:
//!
//! 1. **Trivial identity** — an empty `FleetFaultPlan` with elasticity
//!    and brownout disabled reproduces [`FleetRuntime::serve`]
//!    byte-for-byte (as JSON).
//! 2. **Elasticity pays** — `elastic` fleet availability is ≥ 0.95 and
//!    strictly above `static`.
//! 3. **Recovery** — at least one drain-and-migrate completes, and the
//!    migrated member's post-resume SLO attainment is within 10% of its
//!    pre-outage level.
//! 4. **Replay** — the `elastic` cell run twice yields byte-identical
//!    JSON (the CI `threads-replay` job extends this across thread
//!    counts).
//!
//! [`ClassFaultKind::Outage`]: recflex_serve::ClassFaultKind
//! [`FleetAssignment::rehome`]: recflex_data::FleetAssignment::rehome

use std::process::ExitCode;

use recflex_baselines::TorchRecBackend;
use recflex_bench::{CliOpts, Scale};
use recflex_data::{Batch, ModelConfig, ModelPreset, Placement};
use recflex_serve::{
    BatchPolicy, ClassFaultKind, ClassFaultWindow, DeviceClass, ElasticityConfig,
    FleetBrownoutConfig, FleetChaosConfig, FleetFaultSpec, FleetMember, FleetReport, FleetRuntime,
    FleetWorkload, HealthPolicy, PressureSignal, QueryGate, ScenarioSpec, ServeConfig,
    ShardedServeRuntime, TrafficShape, WorkloadSpec,
};
use recflex_sim::GpuArch;
use serde::Serialize;

/// Root seed for the fleet workload and the fault plan.
const SEED: u64 = 42;
/// Offered load per member on its anchor class — cool enough that the
/// health monitor only trips on injected faults, never on queueing.
const TARGET_UTIL: f64 = 0.35;
/// SLO deadline as a multiple of the member's mean request cost.
const SLO_FACTOR: f64 = 8.0;
/// The outage window, as fractions of the workload span.
const OUTAGE_FRAC: (f64, f64) = (0.35, 0.7);
/// Gate 2 floor on `elastic` fleet availability.
const AVAILABILITY_FLOOR: f64 = 0.95;
/// Gate 3: post-resume attainment must reach this fraction of the
/// pre-outage level.
const RECOVERY_FRAC: f64 = 0.9;

#[derive(Serialize)]
struct ModelRow {
    model: String,
    class: String,
    offered: u64,
    gate_shed: u64,
    slo_attainment: f64,
}

#[derive(Serialize)]
struct CellRow {
    cell: String,
    availability: f64,
    slo_attainment: f64,
    makespan_us: f64,
    outage_downtime_us: f64,
    migrations_attempted: u32,
    migrations_completed: u32,
    migrations_aborted: u32,
    edge_degraded: u64,
    drain_shed: u64,
    /// Brownout rung per observation epoch.
    ladder: Vec<u8>,
    models: Vec<ModelRow>,
}

#[derive(Serialize)]
struct RecoveryRow {
    member: String,
    to_class: String,
    trigger_us: f64,
    resume_us: f64,
    pre_outage_attainment: f64,
    post_resume_attainment: f64,
}

#[derive(Serialize)]
struct ChaosBenchReport {
    requests_per_scenario: usize,
    outage_class: String,
    outage_start_us: f64,
    outage_end_us: f64,
    epoch_us: f64,
    /// Gate 1: trivial chaos config reproduced the plain fleet.
    trivial_identity: bool,
    /// Gate 4: the elastic cell replays byte-for-byte.
    replay_identity: bool,
    /// Gate 3 evidence, from the elastic cell's completed migration.
    recovery: Option<RecoveryRow>,
    cells: Vec<CellRow>,
}

struct Bench {
    names: Vec<String>,
    models: Vec<ModelConfig>,
    /// Member → pinned class.
    pinned: Vec<usize>,
    slos: Vec<f64>,
    /// `cost_matrix_us[member][class]`, per sample.
    per_sample: Vec<Vec<f64>>,
    merged: Vec<recflex_serve::FleetArrival>,
    span_us: f64,
    epoch_us: f64,
    n_requests: usize,
}

/// Mean request cost of `model` on `arch`, probed at the stream's mean
/// batch size with the portable baseline backend.
fn probe_cost(model: &ModelConfig, arch: &GpuArch, mean_size: f64) -> f64 {
    let tables = recflex_embedding::TableSet::for_model(model);
    let backend = TorchRecBackend::compile(model);
    let probe = Batch::generate(model, (mean_size as u32).max(1), 0xF1EE7);
    recflex_baselines::Backend::run(&backend, model, &tables, &probe, arch)
        .expect("probe batch runs")
        .latency_us
}

fn bench(scale: &Scale, archs: &[&GpuArch; 2]) -> Bench {
    let presets = [ModelPreset::A, ModelPreset::C, ModelPreset::D];
    let pinned = vec![0usize, 1, 0];
    let models: Vec<ModelConfig> = presets.iter().map(|p| p.scaled(scale.model_frac)).collect();
    let names: Vec<String> = models.iter().map(|m| m.name.clone()).collect();
    let n_requests = (scale.eval_batches * 8).clamp(16, 48);

    // Mean batch size per scenario (sizes are gap/shape independent).
    let mean_sizes: Vec<f64> = models
        .iter()
        .enumerate()
        .map(|(m, model)| {
            let provisional = FleetWorkload {
                scenarios: vec![scenario(model, 100.0, n_requests)],
                seed: SEED ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            let stream = provisional.scenario_stream(0, model);
            let total: u64 = stream.iter().map(|r| r.batch.batch_size as u64).sum();
            total as f64 / n_requests.max(1) as f64
        })
        .collect();
    let costs: Vec<Vec<f64>> = models
        .iter()
        .enumerate()
        .map(|(m, model)| {
            archs
                .iter()
                .map(|arch| probe_cost(model, arch, mean_sizes[m]))
                .collect()
        })
        .collect();
    let anchors: Vec<f64> = (0..models.len()).map(|m| costs[m][pinned[m]]).collect();
    let gaps: Vec<f64> = anchors.iter().map(|a| a / TARGET_UTIL).collect();
    let slos: Vec<f64> = anchors.iter().map(|a| SLO_FACTOR * a).collect();
    let per_sample: Vec<Vec<f64>> = costs
        .iter()
        .enumerate()
        .map(|(m, row)| row.iter().map(|c| c / mean_sizes[m].max(1.0)).collect())
        .collect();

    let workload = FleetWorkload {
        scenarios: models
            .iter()
            .enumerate()
            .map(|(m, model)| scenario(model, gaps[m], n_requests))
            .collect(),
        seed: SEED,
    };
    let model_refs: Vec<&ModelConfig> = models.iter().collect();
    let merged = workload.merged(&model_refs);
    let span_us = gaps
        .iter()
        .map(|g| g * n_requests as f64)
        .fold(0.0, f64::max);
    Bench {
        names,
        models,
        pinned,
        slos,
        per_sample,
        merged,
        span_us,
        epoch_us: span_us / 16.0,
        n_requests,
    }
}

fn scenario(model: &ModelConfig, gap_us: f64, n: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: model.name.clone(),
        workload: WorkloadSpec::long_tail(gap_us),
        shape: TrafficShape::flat(),
        requests: n,
        priority: 1,
    }
}

/// Build one member's sharded tier on the given class arch.
fn tier<'a>(b: &'a Bench, m: usize, arch: &'a GpuArch, scale: &Scale) -> ShardedServeRuntime<'a> {
    ShardedServeRuntime::build(
        &b.models[m],
        arch,
        Placement::balance(&b.models[m], 1),
        ServeConfig {
            streams: 4,
            policy: BatchPolicy::Split { cap: 256 },
            slo_deadline_us: Some(b.slos[m]),
            closed_loop: false,
            hot_shard_cap: None,
        },
        scale.interconnect.clone(),
        |sub| Box::new(TorchRecBackend::compile(sub)),
    )
}

fn fleet<'a>(b: &'a Bench, archs: &[&'a GpuArch; 2], scale: &Scale) -> FleetRuntime<'a> {
    FleetRuntime {
        classes: vec![
            DeviceClass {
                name: "V100".to_string(),
                arch: archs[0],
                devices: 2,
            },
            DeviceClass {
                name: "A100".to_string(),
                arch: archs[1],
                devices: 2,
            },
        ],
        members: (0..b.models.len())
            .map(|m| FleetMember {
                name: b.names[m].clone(),
                class: b.pinned[m],
                runtime: tier(b, m, archs[b.pinned[m]], scale),
                slo_deadline_us: Some(b.slos[m]),
                gate: Some(QueryGate {
                    cost_per_sample_us: b.per_sample[m][b.pinned[m]],
                    deadline_us: b.slos[m],
                }),
                tuning: None,
            })
            .collect(),
    }
}

fn outage_window(b: &Bench) -> ClassFaultWindow {
    ClassFaultWindow {
        class: 0,
        kind: ClassFaultKind::Outage,
        start_us: OUTAGE_FRAC.0 * b.span_us,
        end_us: OUTAGE_FRAC.1 * b.span_us,
    }
}

fn chaos_config(b: &Bench, elastic: bool, brownout: bool) -> FleetChaosConfig {
    FleetChaosConfig {
        faults: FleetFaultSpec {
            class_windows: vec![outage_window(b)],
            background: None,
        }
        .plan(&[1, 1, 1], b.span_us, SEED),
        epoch_us: b.epoch_us,
        elasticity: elastic.then(|| ElasticityConfig {
            health: HealthPolicy {
                // A leaky bucket rides through one bad epoch; a class
                // outage pins the shortfall at 1.0 and trips it.
                signal: PressureSignal::LeakyBucket {
                    tau_us: b.epoch_us / 2.0,
                },
                max_shortfall: 0.5,
                max_backlog_us: f64::INFINITY,
            },
            drain_stagger_us: b.epoch_us / 8.0,
            handoff_us: b.epoch_us / 2.0,
            cost_matrix_us: b.per_sample.clone(),
        }),
        brownout: brownout.then(|| FleetBrownoutConfig {
            signal: PressureSignal::Instantaneous,
            tighten_above: 0.05,
            shed_above: 0.15,
            degrade_above: 0.25,
            gate_tighten: 0.6,
            priorities: Vec::new(),
        }),
    }
}

fn run_cell(
    b: &Bench,
    archs: &[&GpuArch; 2],
    scale: &Scale,
    cfg: &FleetChaosConfig,
) -> FleetReport {
    let mut f = fleet(b, archs, scale);
    f.serve_chaos(&b.merged, cfg, |m, class| tier(b, m, archs[class], scale))
        .expect("chaos fleet serves")
}

fn cell_row(cell: &str, report: &FleetReport) -> CellRow {
    let stats = report.chaos.as_ref().expect("chaos cells carry stats");
    CellRow {
        cell: cell.to_string(),
        availability: stats.availability,
        slo_attainment: report.slo_attainment,
        makespan_us: report.makespan_us,
        outage_downtime_us: stats.outage_downtime_us,
        migrations_attempted: stats.migrations_attempted,
        migrations_completed: stats.migrations_completed,
        migrations_aborted: stats.migrations_aborted,
        edge_degraded: stats.edge_degraded,
        drain_shed: stats.drain_shed,
        ladder: stats.ladder.clone(),
        models: report
            .models
            .iter()
            .map(|m| ModelRow {
                model: m.name.clone(),
                class: m.class.clone(),
                offered: m.requests_offered,
                gate_shed: m.gate_shed,
                slo_attainment: m.slo_attainment,
            })
            .collect(),
    }
}

/// Gate 3 evidence: the migrated member's attainment before the outage
/// opened vs after its migration resumed.
fn recovery_row(b: &Bench, report: &FleetReport) -> Option<RecoveryRow> {
    let stats = report.chaos.as_ref()?;
    let mig = stats.migrations.iter().find(|m| m.outcome == "completed")?;
    let idx = b.names.iter().position(|n| *n == mig.member)?;
    let resume = mig.resume_us?;
    let outage_start = OUTAGE_FRAC.0 * b.span_us;
    let attainment = |lo: f64, hi: f64| {
        let (ok, n) = report.models[idx]
            .report
            .records
            .iter()
            .filter(|r| r.base.arrival_us >= lo && r.base.arrival_us < hi)
            .fold((0u64, 0u64), |(ok, n), r| {
                let hit = !r.base.is_shed() && r.base.latency_us() <= b.slos[idx];
                (ok + hit as u64, n + 1)
            });
        if n == 0 {
            1.0
        } else {
            ok as f64 / n as f64
        }
    };
    Some(RecoveryRow {
        member: mig.member.clone(),
        to_class: mig.to_class.clone().unwrap_or_default(),
        trigger_us: mig.trigger_us,
        resume_us: resume,
        pre_outage_attainment: attainment(0.0, outage_start),
        post_resume_attainment: attainment(resume, f64::INFINITY),
    })
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let v100 = GpuArch::v100();
    let a100 = GpuArch::a100();
    let archs = [&v100, &a100];
    let b = bench(&scale, &archs);
    let outage = outage_window(&b);

    println!(
        "== fleet chaos: {} members over {{V100x2, A100x2}}, {} requests/scenario, \
         V100 outage [{:.0}, {:.0}) us ==",
        b.models.len(),
        b.n_requests,
        outage.start_us,
        outage.end_us
    );

    // Gate 1: a trivial chaos config must be invisible, byte for byte.
    let plain = fleet(&b, &archs, &scale)
        .serve(&b.merged)
        .expect("plain fleet serves");
    let trivial = run_cell(&b, &archs, &scale, &FleetChaosConfig::default());
    let trivial_identity = serde_json::to_string(&plain).expect("serialize")
        == serde_json::to_string(&trivial).expect("serialize");
    println!("trivial chaos config identical to plain fleet: {trivial_identity}");

    let cells = [
        ("static", chaos_config(&b, false, false)),
        ("brownout", chaos_config(&b, false, true)),
        ("elastic", chaos_config(&b, true, true)),
    ];
    let mut rows = Vec::new();
    let mut elastic_report = None;
    for (name, cfg) in &cells {
        let report = run_cell(&b, &archs, &scale, cfg);
        let row = cell_row(name, &report);
        println!(
            "{:<9} availability {:>6.3} attainment {:>6.3} migrations {}/{} \
             degraded {:>3} downtime {:>10.1} us",
            row.cell,
            row.availability,
            row.slo_attainment,
            row.migrations_completed,
            row.migrations_attempted,
            row.edge_degraded,
            row.outage_downtime_us,
        );
        for m in &row.models {
            println!(
                "    {:<12} on {:<5} attain {:>6.3} gate-shed {:>3}",
                m.model, m.class, m.slo_attainment, m.gate_shed
            );
        }
        if *name == "elastic" {
            elastic_report = Some(report);
        }
        rows.push(row);
    }
    let elastic_report = elastic_report.expect("elastic cell ran");

    // Gate 4: the elastic cell replays byte-for-byte.
    let rerun = run_cell(&b, &archs, &scale, &cells[2].1);
    let replay_identity = serde_json::to_string(&elastic_report).expect("serialize")
        == serde_json::to_string(&rerun).expect("serialize");
    println!("elastic cell replays byte-for-byte: {replay_identity}");

    let recovery = recovery_row(&b, &elastic_report);
    if let Some(r) = &recovery {
        println!(
            "recovery: {} -> {} trigger {:.1} us resume {:.1} us attainment {:.3} -> {:.3}",
            r.member,
            r.to_class,
            r.trigger_us,
            r.resume_us,
            r.pre_outage_attainment,
            r.post_resume_attainment
        );
    }

    let report = ChaosBenchReport {
        requests_per_scenario: b.n_requests,
        outage_class: "V100".to_string(),
        outage_start_us: outage.start_us,
        outage_end_us: outage.end_us,
        epoch_us: b.epoch_us,
        trivial_identity,
        replay_identity,
        recovery,
        cells: rows,
    };
    opts.write_json(&report);

    if opts.check && !gates_hold(&report) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI acceptance gates (see module docs).
fn gates_hold(report: &ChaosBenchReport) -> bool {
    if !report.trivial_identity {
        eprintln!(
            "check FAILED: a trivial chaos config diverged from the plain fleet — \
             the no-fault path is not free"
        );
        return false;
    }
    if !report.replay_identity {
        eprintln!("check FAILED: the elastic cell did not replay byte-for-byte");
        return false;
    }
    let avail = |cell: &str| {
        report
            .cells
            .iter()
            .find(|r| r.cell == cell)
            .map(|r| r.availability)
            .expect("sweep covers the gated cell")
    };
    let elastic = avail("elastic");
    let frozen = avail("static");
    if elastic < AVAILABILITY_FLOOR {
        eprintln!(
            "check FAILED: elastic availability {elastic:.3} under a class outage is \
             below the {AVAILABILITY_FLOOR} floor"
        );
        return false;
    }
    if elastic <= frozen {
        eprintln!(
            "check FAILED: elastic availability {elastic:.3} is not strictly above \
             the static fleet {frozen:.3}"
        );
        return false;
    }
    let Some(rec) = &report.recovery else {
        eprintln!("check FAILED: no drain-and-migrate completed under the class outage");
        return false;
    };
    if rec.post_resume_attainment < RECOVERY_FRAC * rec.pre_outage_attainment {
        eprintln!(
            "check FAILED: post-migration attainment {:.3} did not recover to within \
             10% of the pre-outage level {:.3}",
            rec.post_resume_attainment, rec.pre_outage_attainment
        );
        return false;
    }
    println!(
        "check passed: elastic availability {elastic:.3} >= {AVAILABILITY_FLOOR} and \
         > static {frozen:.3}; {} migration(s) completed, attainment {:.3} -> {:.3}",
        report
            .cells
            .iter()
            .find(|r| r.cell == "elastic")
            .map(|r| r.migrations_completed)
            .unwrap_or(0),
        rec.pre_outage_attainment,
        rec.post_resume_attainment
    );
    true
}
