//! Schedule-lifecycle harness: retune outcome scenarios × swap policies,
//! with the robustness gates CI enforces.
//!
//! Serves a drifting stream (in-distribution head, heavily shifted tail,
//! so the drift monitor fires mid-run) through `serve_with_retune` under
//! a grid of scripted retune outcomes — every attempt succeeding, every
//! attempt regressing 3x, every attempt failing to compile, every attempt
//! stalling past the watchdog deadline, and a seeded flaky mix — crossed
//! with two swap policies:
//!
//! * `blind` — the pre-lifecycle behavior: a finished retune is promoted
//!   immediately, whatever it compiled to.
//! * `canaried` — the candidate shadow-executes a fraction of admitted
//!   chunks (cost accounted, never served) and is promoted only if it
//!   wins the canary window; otherwise it is rolled back and the machine
//!   walks retry → backoff → cooldown.
//!
//! A final sharded cell repeats the regression scenario on a two-shard
//! tier with a staggered per-shard rollout.
//!
//! Everything is seeded: two runs print identical numbers, and the CI
//! `lifecycle-replay` job asserts it by diffing `--json` outputs.
//!
//! `--check` enforces the gates:
//!
//! 1. **Clean identity** — when every outcome succeeds and the retuner
//!    rebuilds an engine identical to the incumbent, both swap policies
//!    must leave the request records byte-identical (as JSON) to a run
//!    with no retune policy at all: the lifecycle machinery costs the
//!    served traffic nothing.
//! 2. **Canary protects the tail** — under the all-regression script the
//!    canaried tier must end with zero promotions, at least one rollback,
//!    and a p99 no worse than the blind tier's (strictly better when the
//!    blind tier actually promoted).
//! 3. **Bounded retries** — under compile-fail the machine must spend
//!    exactly `max_attempts` non-overlapping attempts whose retry gaps
//!    respect exponential backoff; under stall the watchdog must abandon
//!    every attempt at its deadline and never promote.
//! 4. **Staged rollout** — the sharded regression cell must promote on
//!    the blind tier and never on the canaried tier.

use std::process::ExitCode;

use recflex_baselines::Backend;
use recflex_bench::{CliOpts, Scale};
use recflex_core::RecFlexEngine;
use recflex_data::{shift_distribution, Batch, Dataset, ModelConfig, ModelPreset, Placement};
use recflex_embedding::TableSet;
use recflex_serve::{
    BatchPolicy, CanaryConfig, DriftConfig, LifecycleConfig, LifecycleEvent, LifecycleStats,
    OutcomePlan, OutcomeSpec, Request, RetryPolicy, RetuneOutcome, RetunePolicy, ServeConfig,
    ServeReport, ServeRuntime, ShardedRetunePolicy, ShardedServeRuntime, WorkloadSpec,
};
use recflex_sim::GpuArch;
use serde::Serialize;

/// Mean Poisson inter-arrival gap, µs.
const GAP_US: f64 = 300.0;
/// Simulated background-retune latency, µs.
const RETUNE_LATENCY_US: f64 = 1_500.0;
/// Watchdog deadline for the stall scenario, µs.
const STALL_DEADLINE_US: f64 = 4_000.0;
/// First retry backoff, µs (doubles per attempt).
const BASE_BACKOFF_US: f64 = 2_000.0;
/// Attempts per episode before the machine gives up.
const MAX_ATTEMPTS: u32 = 3;
/// Latency multiplier injected by the regression scenarios.
const REGRESSION_SLOWDOWN: f64 = 3.0;
/// Shard count and promotion stagger for the sharded rollout cell.
const SHARDS: usize = 2;
const STAGGER_US: f64 = 400.0;

fn drift() -> DriftConfig {
    DriftConfig {
        window: 6,
        threshold: 0.3,
        feature_threshold: 0.5,
    }
}

fn canary() -> CanaryConfig {
    CanaryConfig {
        shadow_fraction: 1.0,
        window: 4,
        min_win_margin: 0.0,
        split_traffic: false,
    }
}

fn retry(cooldown_us: f64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: MAX_ATTEMPTS,
        base_backoff_us: BASE_BACKOFF_US,
        backoff_multiplier: 2.0,
        cooldown_us,
    }
}

/// The retune-outcome scenarios under test.
fn scenarios() -> Vec<(String, LifecycleConfig)> {
    let all = |o: RetuneOutcome| OutcomePlan::scripted(vec![o; 16]);
    vec![
        (
            "clean".to_string(),
            LifecycleConfig {
                outcomes: OutcomePlan::none(),
                retry: retry(0.0),
                ..LifecycleConfig::default()
            },
        ),
        (
            "regression".to_string(),
            LifecycleConfig {
                outcomes: all(RetuneOutcome::Regression {
                    slowdown: REGRESSION_SLOWDOWN,
                }),
                retry: retry(10_000.0),
                ..LifecycleConfig::default()
            },
        ),
        (
            "compile-fail".to_string(),
            LifecycleConfig {
                outcomes: all(RetuneOutcome::CompileFail),
                // An effectively infinite cooldown keeps the run to one
                // episode so the backoff gate reads a clean trace.
                retry: retry(1e12),
                ..LifecycleConfig::default()
            },
        ),
        (
            "stall".to_string(),
            LifecycleConfig {
                outcomes: all(RetuneOutcome::Stall),
                retry: retry(1e12),
                retune_deadline_us: Some(STALL_DEADLINE_US),
                ..LifecycleConfig::default()
            },
        ),
        (
            "flaky".to_string(),
            LifecycleConfig {
                outcomes: OutcomeSpec::flaky().plan(12, 0xF1A6),
                retry: retry(10_000.0),
                ..LifecycleConfig::default()
            },
        ),
    ]
}

#[derive(Serialize)]
struct LifecycleRow {
    scenario: String,
    mode: String,
    attempted: u32,
    promoted: u32,
    failed: u32,
    rolled_back: u32,
    engine_version: u32,
    shadow_chunks: u64,
    shadow_overhead_us: f64,
    p50_latency_us: f64,
    p99_latency_us: f64,
    makespan_us: f64,
}

#[derive(Serialize)]
struct LifecycleReport {
    model: String,
    num_features: usize,
    requests: usize,
    gap_us: f64,
    retune_latency_us: f64,
    max_attempts: u32,
    /// Gate 1: the all-success scenarios reproduced the no-retune
    /// records byte-for-byte, per swap policy.
    clean_identity_blind: bool,
    clean_identity_canaried: bool,
    /// Gate 3a: compile-fail retries were bounded, non-overlapping, and
    /// exponentially backed off.
    backoff_bounded: bool,
    /// Gate 3b: every stalled attempt was abandoned by the watchdog.
    stall_bounded: bool,
    /// Gate 4: the sharded regression cell.
    sharded_blind_promoted: u32,
    sharded_canaried_promoted: u32,
    sharded_canaried_rolled_back: u32,
    rows: Vec<LifecycleRow>,
}

/// In-distribution head, heavily shifted tail: drift fires mid-run.
fn drifting_stream(model: &ModelConfig, n: usize, unit: u32) -> (ModelConfig, Vec<Request>) {
    let shifted = shift_distribution(model, 2.5, 0.0);
    let head = n / 3;
    let spec = WorkloadSpec {
        size_unit: unit,
        ..WorkloadSpec::long_tail(GAP_US)
    };
    let mut reqs = spec.stream(model, head, 5);
    let mut tail = spec.stream(&shifted, n - head, 6);
    let t0 = reqs.last().map(|r| r.arrival_us).unwrap_or(0.0);
    for (k, r) in tail.iter_mut().enumerate() {
        r.arrival_us += t0;
        r.id = (head + k) as u64;
    }
    reqs.append(&mut tail);
    (shifted, reqs)
}

/// Verify the compile-fail trace: exactly `MAX_ATTEMPTS` attempts, none
/// overlapping, each retry waiting out its exponential backoff.
fn backoff_bounded(stats: &LifecycleStats, trace: &[LifecycleEvent]) -> bool {
    if stats.retunes_attempted != MAX_ATTEMPTS || stats.retunes_promoted != 0 {
        return false;
    }
    let mut open: Option<f64> = None;
    let mut last_fail: Option<(f64, u32)> = None;
    let mut attempts = 0u32;
    for ev in trace {
        match *ev {
            LifecycleEvent::RetuneStarted { t_us, .. } => {
                if open.is_some() {
                    return false; // overlap
                }
                if let Some((t_fail, k)) = last_fail {
                    let backoff = BASE_BACKOFF_US * 2.0f64.powi(k as i32 - 1);
                    if t_us - t_fail < backoff - 1e-9 {
                        return false; // retry ignored its backoff
                    }
                }
                open = Some(t_us);
                attempts += 1;
            }
            LifecycleEvent::RetuneFailed { t_us, .. } => {
                if open.take().is_none() {
                    return false;
                }
                last_fail = Some((t_us, attempts));
            }
            LifecycleEvent::GaveUp { attempts: n, .. } => {
                if n != MAX_ATTEMPTS {
                    return false;
                }
            }
            _ => return false,
        }
    }
    attempts == MAX_ATTEMPTS
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let tables = TableSet::for_model(&model);
    let history = Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let engine = RecFlexEngine::tune(&model, &history, &arch, &scale.tuner);
    let config = ServeConfig {
        streams: 2,
        policy: BatchPolicy::Split { cap: 256 },
        slo_deadline_us: None,
        closed_loop: false,
        hot_shard_cap: None,
    };
    let n_requests = (scale.eval_batches * 16).clamp(36, 96);
    let (_shifted, stream) = drifting_stream(&model, n_requests, 8);
    let runtime = ServeRuntime {
        backend: &engine,
        model: &model,
        tables: &tables,
        arch: &arch,
        config,
    };

    println!(
        "== serving lifecycle: model {} ({} features), {n_requests} requests @ {GAP_US} us \
         mean gap, retune {RETUNE_LATENCY_US} us, {MAX_ATTEMPTS} attempts/episode ==",
        model.name,
        model.features.len(),
    );
    println!(
        "{:<14} {:<10} {:>5} {:>5} {:>5} {:>7} {:>8} {:>9} {:>11} {:>11}",
        "scenario",
        "mode",
        "try",
        "win",
        "fail",
        "rollbk",
        "shadows",
        "overhead",
        "p99 (us)",
        "makespan"
    );

    // The gate-1 reference: the pre-lifecycle code path, no retuning.
    let plain = runtime.serve(&stream).expect("lifecycle config is valid");
    let plain_records = serde_json::to_string(&plain.records).expect("serialize records");

    // The clean retuner rebuilds the incumbent from the same history —
    // the promoted engine is bit-identical, isolating lifecycle cost.
    let mut clean_identity_blind = false;
    let mut clean_identity_canaried = false;
    let mut backoff_ok = false;
    let mut stall_ok = false;
    let mut rows = Vec::new();
    for (scenario, lifecycle) in scenarios() {
        for mode in ["blind", "canaried"] {
            let lifecycle = LifecycleConfig {
                canary: (mode == "canaried").then(canary),
                ..lifecycle.clone()
            };
            let mut policy = RetunePolicy {
                drift: drift(),
                retune_latency_us: RETUNE_LATENCY_US,
                lifecycle,
                retuner: Box::new(|_: &[Batch]| {
                    (Box::new(RecFlexEngine::tune(&model, &history, &arch, &scale.tuner))
                        as Box<dyn Backend>)
                        .into()
                }),
            };
            let report: ServeReport = runtime
                .serve_with_retune(&stream, &mut policy)
                .expect("lifecycle config is valid");
            match (scenario.as_str(), mode) {
                ("clean", "blind") => {
                    let cell = serde_json::to_string(&report.records).expect("serialize records");
                    clean_identity_blind = cell == plain_records;
                }
                ("clean", "canaried") => {
                    let cell = serde_json::to_string(&report.records).expect("serialize records");
                    clean_identity_canaried = cell == plain_records;
                }
                ("compile-fail", "blind") => {
                    backoff_ok = backoff_bounded(&report.lifecycle, &report.lifecycle_trace);
                }
                ("stall", "blind") => {
                    stall_ok = report.lifecycle.retunes_attempted >= 1
                        && report.lifecycle.retunes_failed == report.lifecycle.retunes_attempted
                        && report.lifecycle.retunes_promoted == 0;
                }
                _ => {}
            }
            let row = LifecycleRow {
                scenario: scenario.clone(),
                mode: mode.to_string(),
                attempted: report.lifecycle.retunes_attempted,
                promoted: report.lifecycle.retunes_promoted,
                failed: report.lifecycle.retunes_failed,
                rolled_back: report.lifecycle.retunes_rolled_back,
                engine_version: report.lifecycle.engine_version,
                shadow_chunks: report.lifecycle.canary_shadow_chunks,
                shadow_overhead_us: report.lifecycle.canary_overhead_us,
                p50_latency_us: report.percentile_us(0.5),
                p99_latency_us: report.percentile_us(0.99),
                makespan_us: report.makespan_us,
            };
            println!(
                "{:<14} {:<10} {:>5} {:>5} {:>5} {:>7} {:>8} {:>9.1} {:>11.1} {:>11.1}",
                row.scenario,
                row.mode,
                row.attempted,
                row.promoted,
                row.failed,
                row.rolled_back,
                row.shadow_chunks,
                row.shadow_overhead_us,
                row.p99_latency_us,
                row.makespan_us
            );
            rows.push(row);
        }
    }

    // The sharded rollout cell: the all-regression script on a two-shard
    // tier, blind vs a staggered canaried rollout.
    let costs = vec![1.0; model.features.len()];
    let tier = ShardedServeRuntime::build(
        &model,
        &arch,
        Placement::balance_by_cost(SHARDS, &costs),
        config,
        scale.interconnect.clone(),
        |sub_model| {
            let sub_history = Dataset::synthesize(sub_model, 3, scale.batch_size, 7);
            Box::new(RecFlexEngine::tune(
                sub_model,
                &sub_history,
                &arch,
                &scale.tuner,
            ))
        },
    );
    let mut sharded_stats: Vec<LifecycleStats> = Vec::new();
    for mode in ["blind", "canaried"] {
        let mut policy = ShardedRetunePolicy {
            drift: drift(),
            retune_latency_us: RETUNE_LATENCY_US,
            stagger_us: STAGGER_US,
            lifecycle: LifecycleConfig {
                outcomes: OutcomePlan::scripted(vec![
                    RetuneOutcome::Regression {
                        slowdown: REGRESSION_SLOWDOWN
                    };
                    16
                ]),
                canary: (mode == "canaried").then(canary),
                retry: retry(10_000.0),
                ..LifecycleConfig::default()
            },
            retuner: Box::new(|sub_model: &ModelConfig, _: &[Batch]| {
                let sub_history = Dataset::synthesize(sub_model, 3, scale.batch_size, 7);
                (Box::new(RecFlexEngine::tune(
                    sub_model,
                    &sub_history,
                    &arch,
                    &scale.tuner,
                )) as Box<dyn Backend>)
                    .into()
            }),
        };
        let report = tier
            .serve_with_retune(&stream, &mut policy)
            .expect("lifecycle config is valid");
        println!(
            "{:<14} {:<10} {:>5} {:>5} {:>5} {:>7} {:>8} {:>9.1} {:>11.1} {:>11.1}",
            format!("sharded-x{SHARDS}"),
            mode,
            report.lifecycle.retunes_attempted,
            report.lifecycle.retunes_promoted,
            report.lifecycle.retunes_failed,
            report.lifecycle.retunes_rolled_back,
            report.lifecycle.canary_shadow_chunks,
            report.lifecycle.canary_overhead_us,
            report.percentile_us(0.99),
            report.makespan_us
        );
        rows.push(LifecycleRow {
            scenario: format!("sharded-x{SHARDS}"),
            mode: mode.to_string(),
            attempted: report.lifecycle.retunes_attempted,
            promoted: report.lifecycle.retunes_promoted,
            failed: report.lifecycle.retunes_failed,
            rolled_back: report.lifecycle.retunes_rolled_back,
            engine_version: report.lifecycle.engine_version,
            shadow_chunks: report.lifecycle.canary_shadow_chunks,
            shadow_overhead_us: report.lifecycle.canary_overhead_us,
            p50_latency_us: report.percentile_us(0.5),
            p99_latency_us: report.percentile_us(0.99),
            makespan_us: report.makespan_us,
        });
        sharded_stats.push(report.lifecycle);
    }
    println!(
        "(shadows are canary chunks replayed on the candidate — accounted in \
         `overhead`, never served; `win` is promotions, `rollbk` canary rollbacks)"
    );

    let report = LifecycleReport {
        model: model.name.clone(),
        num_features: model.features.len(),
        requests: n_requests,
        gap_us: GAP_US,
        retune_latency_us: RETUNE_LATENCY_US,
        max_attempts: MAX_ATTEMPTS,
        clean_identity_blind,
        clean_identity_canaried,
        backoff_bounded: backoff_ok,
        stall_bounded: stall_ok,
        sharded_blind_promoted: sharded_stats[0].retunes_promoted,
        sharded_canaried_promoted: sharded_stats[1].retunes_promoted,
        sharded_canaried_rolled_back: sharded_stats[1].retunes_rolled_back,
        rows,
    };
    opts.write_json(&report);

    if opts.check && !gates_hold(&report) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI robustness gates (see module docs).
fn gates_hold(report: &LifecycleReport) -> bool {
    if !report.clean_identity_blind || !report.clean_identity_canaried {
        eprintln!(
            "check FAILED: an all-success retune of an identical engine changed the \
             served records (blind {}, canaried {}) — the lifecycle is not free",
            report.clean_identity_blind, report.clean_identity_canaried
        );
        return false;
    }
    let cell = |scenario: &str, mode: &str| {
        report
            .rows
            .iter()
            .find(|r| r.scenario == scenario && r.mode == mode)
            .expect("sweep covers the gated cell")
    };
    let blind = cell("regression", "blind");
    let canaried = cell("regression", "canaried");
    if canaried.promoted != 0 || canaried.rolled_back == 0 {
        eprintln!(
            "check FAILED: the canary let a {REGRESSION_SLOWDOWN}x regression through \
             ({} promotions, {} rollbacks)",
            canaried.promoted, canaried.rolled_back
        );
        return false;
    }
    if blind.promoted >= 1 && canaried.p99_latency_us >= blind.p99_latency_us {
        eprintln!(
            "check FAILED: rolling back the regression did not protect p99: \
             {:.1} (canaried) vs {:.1} (blind)",
            canaried.p99_latency_us, blind.p99_latency_us
        );
        return false;
    }
    if blind.promoted == 0 {
        eprintln!(
            "check FAILED: the blind tier never promoted — the regression scenario has no teeth"
        );
        return false;
    }
    if !report.backoff_bounded {
        eprintln!(
            "check FAILED: compile-fail retries were unbounded, overlapping, or \
             ignored their exponential backoff"
        );
        return false;
    }
    if !report.stall_bounded {
        eprintln!("check FAILED: a stalled retune escaped the watchdog");
        return false;
    }
    if report.sharded_canaried_promoted != 0 || report.sharded_blind_promoted == 0 {
        eprintln!(
            "check FAILED: sharded rollout gate — blind promoted {}, canaried promoted {} \
             (want >=1 and 0)",
            report.sharded_blind_promoted, report.sharded_canaried_promoted
        );
        return false;
    }
    println!(
        "check passed: lifecycle identity holds, the canary rolled back every \
         regression (p99 {:.1} vs {:.1} blind), retries are bounded and backed off, \
         and the staged rollout never promoted a loser",
        canaried.p99_latency_us, blind.p99_latency_us
    );
    true
}
