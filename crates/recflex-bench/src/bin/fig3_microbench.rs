//! Figure 3 microbenchmark: four representative schedules on two dim-32
//! features — feature 0 with pooling factors `N(50, 10²)` at 0.3 coverage,
//! feature 1 with a fixed pooling factor of 50.
//!
//! Paper observations reproduced here: (1) for one feature, schedule choice
//! swings performance by up to 86.4 %; (2) the two features prefer
//! *different* schedules — the motivating observation of the whole system.

use recflex_data::{FeatureBatch, FeatureSpec, PoolingDist};
use recflex_embedding::FeatureWorkload;
use recflex_schedules::{ScheduleInstance, ScheduleKind, ScheduleParams};
use recflex_sim::{
    launch, BlockProfile, BlockResources, GpuArch, LaunchConfig, ProfileCtx, SimKernel,
};

struct OneFeature<'a> {
    sched: ScheduleInstance,
    fb: &'a FeatureBatch,
    w: &'a FeatureWorkload,
}

impl SimKernel for OneFeature<'_> {
    fn name(&self) -> &str {
        "microbench"
    }
    fn grid_blocks(&self) -> u32 {
        self.sched.required_blocks(self.w)
    }
    fn resources(&self) -> BlockResources {
        self.sched.resources()
    }
    fn profile_block(&self, b: u32, ctx: &ProfileCtx) -> BlockProfile {
        self.sched.block_profile(self.fb, self.w, b, ctx.reg_cap)
    }
}

/// The four schedules of the paper's Figure 3 microbenchmark (labelled
/// Schedule A–D there): four distinct thread mappings of the same
/// operation.
fn schedules(dim: u32) -> Vec<(&'static str, ScheduleInstance)> {
    let p = |t, g, v, u, stage| ScheduleParams {
        threads_per_block: t,
        group_size: g,
        vector_width: v,
        unroll: u,
        stage_rows: stage,
    };
    vec![
        (
            "A (warp/sample, v1)",
            ScheduleInstance {
                kind: ScheduleKind::SamplePerWarp,
                params: p(256, 32, 1, 1, 0),
                emb_dim: dim,
            },
        ),
        (
            "B (warp/sample, v4u2)",
            ScheduleInstance {
                kind: ScheduleKind::SamplePerWarp,
                params: p(256, 32, 4, 2, 0),
                emb_dim: dim,
            },
        ),
        (
            "C (smem-staged 16)",
            ScheduleInstance {
                kind: ScheduleKind::SmemStaged,
                params: p(128, 32, 4, 1, 16),
                emb_dim: dim,
            },
        ),
        (
            "D (block/sample, v4)",
            ScheduleInstance {
                kind: ScheduleKind::SamplePerBlock,
                params: p(256, 256, 4, 1, 0),
                emb_dim: dim,
            },
        ),
    ]
}

fn main() {
    let arch = GpuArch::v100();
    let specs = [
        FeatureSpec {
            name: "feature0".into(),
            table_rows: 100_000,
            emb_dim: 32,
            pooling: PoolingDist::Normal {
                mean: 50.0,
                std: 10.0,
                max: 200,
            },
            coverage: 0.3,
            row_skew: 0.0,
        },
        FeatureSpec {
            name: "feature1".into(),
            table_rows: 100_000,
            emb_dim: 32,
            pooling: PoolingDist::Fixed(50),
            coverage: 1.0,
            row_skew: 0.0,
        },
        // A light one-hot field of the same dimension: the workload axis
        // along which the optimum flips (per-sample block mapping pays a
        // whole block's overhead for a single row).
        FeatureSpec {
            name: "feature2".into(),
            table_rows: 100_000,
            emb_dim: 32,
            pooling: PoolingDist::OneHot,
            coverage: 1.0,
            row_skew: 0.0,
        },
    ];

    let mut best_labels = Vec::new();
    for (fi, spec) in specs.iter().enumerate() {
        let fb = FeatureBatch::generate(spec, 512, 42 + fi as u64);
        let w = FeatureWorkload::analyze(fi, &fb, spec.emb_dim, spec.table_rows);
        let cands = schedules(spec.emb_dim);

        let latencies: Vec<f64> = cands
            .iter()
            .map(|&(_, sched)| {
                let k = OneFeature {
                    sched,
                    fb: &fb,
                    w: &w,
                };
                launch(&k, &arch, &LaunchConfig::default())
                    .map(|r| r.latency_us)
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        let best = latencies.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = latencies
            .iter()
            .copied()
            .filter(|l| l.is_finite())
            .fold(0.0f64, f64::max);

        println!(
            "\n== Fig.3 {}: {} ==",
            spec.name,
            match fi {
                0 => "pf ~ N(50,10^2), coverage 0.3",
                1 => "pf = 50 fixed",
                _ => "one-hot (pf = 1)",
            }
        );
        println!(
            "{:<24} {:>14} {:>12}",
            "schedule", "latency (us)", "normalized"
        );
        for ((name, _), &lat) in cands.iter().zip(&latencies) {
            println!("{:<24} {:>14.1} {:>12.3}", name, lat, best / lat);
        }
        let gap = 100.0 * (worst / best - 1.0);
        println!("schedule performance gap: {gap:.1}%  (paper: up to 86.4%)");

        let best_idx = latencies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        best_labels.push(cands[best_idx].0);
    }

    println!(
        "\nbest schedules: feature0 = {}, feature1 = {}, feature2 = {}",
        best_labels[0], best_labels[1], best_labels[2]
    );
    let distinct: std::collections::HashSet<_> = best_labels.iter().collect();
    if distinct.len() > 1 {
        println!("=> the optimal schedules differ across features (paper's key observation)");
    } else {
        println!("=> identical optima at this configuration");
    }
}
