//! Tuning-overhead accounting (paper Section VI-E): the two-stage tuner
//! compiles `O(F·K + K)` kernels, versus the `Π N_f` of holistic
//! enumeration (the paper's 4^100 ≈ 10^60 example).

use recflex_bench::Scale;
use recflex_data::{Dataset, ModelPreset};
use recflex_sim::GpuArch;
use recflex_tuner::{TuningContext, TuningCost};

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    println!("== tuning-cost accounting (O(F·K + K) vs holistic) ==");
    println!(
        "{:<8} {:>6} {:>4} {:>10} {:>10} {:>13} {:>16}",
        "model", "F", "K", "local", "global", "measurements", "holistic (log10)"
    );
    for preset in ModelPreset::TABLE1 {
        let m = scale.model(preset);
        let ds = Dataset::synthesize(&m, scale.tuner.tuning_batches, 64, 5);
        let ctx = TuningContext::new(&m, &ds, &arch, &scale.tuner);
        let cost = TuningCost::estimate(&ctx, &scale.tuner, arch.occupancy_levels().len());
        let per_feature: Vec<usize> = ctx.candidates.iter().map(|c| c.len()).collect();
        println!(
            "{:<8} {:>6} {:>4} {:>10} {:>10} {:>13} {:>15.1}",
            preset.name(),
            cost.features,
            cost.occupancy_levels,
            cost.local_kernels,
            cost.global_kernels,
            cost.measurements,
            cost.holistic_kernels_log10(&per_feature)
        );
    }
    println!("\npaper example: F=100, N=4 → holistic 4^100 ≈ 10^60 kernels; two-stage");
    println!("compiles F·K + 2K kernels and finishes in hours on a small GPU farm.");
}
