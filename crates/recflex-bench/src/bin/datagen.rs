//! Dataset generation — the equivalent of the artifact's
//! `SC_artifact/datagen.sh` / `data_synthesis/data_generate.py`: writes the
//! models and datasets of Table I (at the configured scale) to JSON files
//! that every other experiment binary could replay.
//!
//! Usage: `cargo run --release -p recflex-bench --bin datagen [out_dir]`

use recflex_bench::Scale;
use recflex_data::{save_dataset, save_model, Dataset, ModelPreset};
use std::path::PathBuf;

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| "datasets".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let scale = Scale::from_env();

    for preset in [
        ModelPreset::A,
        ModelPreset::B,
        ModelPreset::C,
        ModelPreset::D,
        ModelPreset::E,
        ModelPreset::MLPerfLike,
    ] {
        let model = scale.model(preset);
        let ds = Dataset::synthesize(&model, scale.eval_batches, scale.batch_size, 0xDA7A);
        let model_path = out_dir.join(format!("model_{}.json", preset.name()));
        let data_path = out_dir.join(format!("dataset_{}.json", preset.name()));
        save_model(&model_path, &model).expect("write model");
        save_dataset(&data_path, &model, &ds).expect("write dataset");
        println!(
            "{}: {} features, {} batches of {} -> {}",
            preset.name(),
            model.num_features(),
            ds.len(),
            scale.batch_size,
            data_path.display()
        );
    }
    println!("\ndone; replay with recflex_data::load_dataset(..)");
}
