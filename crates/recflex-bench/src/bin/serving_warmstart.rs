//! Profile-vault harness: warm-started retunes, corruption recovery, and
//! replica sharing, with the robustness gates CI enforces.
//!
//! Four cells, all seeded and bit-replayable:
//!
//! * **economics** — tune the same model twice through one vault. The
//!   first run misses and cold-tunes; the second warm-starts from the
//!   stored sidecar. The warm run must spend strictly fewer tuner
//!   evaluations and serve byte-identical records.
//! * **restart** — serve the same drifting stream through three
//!   lifecycles: a plain retuner (the pre-vault code path), a fresh
//!   vault (first boot: every retune episode starts cold), and a second
//!   run over the *same* vault (replica restart: retunes warm-start from
//!   the sidecars the first run published). All three must produce
//!   byte-identical request records — the vault changes tuning cost,
//!   never served traffic — and the restarted run must warm-start at
//!   least once while spending fewer evaluations than first boot.
//! * **recovery** — the restart cell again, but the vault is pre-seeded
//!   with a corrupted sidecar quartet (torn write, byte flip, version
//!   skew, stale hash) for the exact profile key, plus an injected
//!   fail-write on the first store. Every corruption must be detected,
//!   quarantined with a deterministic diagnostic, and the run must
//!   degrade to cold tuning with records byte-identical to the plain
//!   baseline — never panic, never serve an unverified profile.
//! * **fleet** — two replicas of one model built through one shared
//!   vault on a two-device class. Replica 0 cold-tunes and publishes;
//!   replica 1 must warm-start from the same sidecar, and the fleet
//!   report must surface both members' tuning accounting.
//!
//! The whole harness runs twice and `--check` asserts the serialized
//! reports are byte-identical (the CI `warmstart-replay` job repeats the
//! diff across `RECFLEX_THREADS`). The `warm_speedup` ratio
//! (cold evaluations over warm evaluations) is the tracked
//! `BENCH_lifecycle.json` headline.

use std::cell::RefCell;
use std::process::ExitCode;

use recflex_baselines::Backend;
use recflex_bench::{CliOpts, Scale};
use recflex_core::{RecFlexEngine, DEFAULT_WARM_BUDGET_PER_FEATURE};
use recflex_data::{shift_distribution, Batch, Dataset, ModelConfig, ModelPreset, Placement};
use recflex_embedding::TableSet;
use recflex_schedules::store::SCHEMA_VERSION;
use recflex_schedules::{
    distribution_summary, MemVfs, ProfileKey, ProfileVault, ScheduleProfile, StoreFault,
    StoreFaultKind, StoreFaultPlan, VaultStats,
};
use recflex_serve::{
    BatchPolicy, DeviceClass, DriftConfig, EngineTuning, FleetMember, FleetRuntime,
    LifecycleConfig, OutcomePlan, Request, RetryPolicy, RetunePolicy, ScenarioSpec, ServeConfig,
    ServeRuntime, ShardedServeRuntime, TrafficShape, TunedCandidate, WorkloadSpec,
};
use recflex_sim::GpuArch;
use serde::Serialize;

/// Mean Poisson inter-arrival gap, µs.
const GAP_US: f64 = 300.0;
/// Simulated background-retune latency, µs.
const RETUNE_LATENCY_US: f64 = 1_500.0;
/// Attempts per retune episode.
const MAX_ATTEMPTS: u32 = 3;
/// Fleet workload seed.
const FLEET_SEED: u64 = 0x5EED;

fn drift() -> DriftConfig {
    DriftConfig {
        window: 6,
        threshold: 0.3,
        feature_threshold: 0.5,
    }
}

/// Every scripted outcome succeeds: the cells isolate the vault, not the
/// canary/rollback machinery `serving_lifecycle` already gates.
fn clean_lifecycle() -> LifecycleConfig {
    LifecycleConfig {
        outcomes: OutcomePlan::none(),
        retry: RetryPolicy {
            max_attempts: MAX_ATTEMPTS,
            base_backoff_us: 2_000.0,
            backoff_multiplier: 2.0,
            cooldown_us: 0.0,
        },
        ..LifecycleConfig::default()
    }
}

/// In-distribution head, heavily shifted tail: drift fires mid-run.
fn drifting_stream(model: &ModelConfig, n: usize, unit: u32) -> Vec<Request> {
    let shifted = shift_distribution(model, 2.5, 0.0);
    let head = n / 3;
    let spec = WorkloadSpec {
        size_unit: unit,
        ..WorkloadSpec::long_tail(GAP_US)
    };
    let mut reqs = spec.stream(model, head, 5);
    let mut tail = spec.stream(&shifted, n - head, 6);
    let t0 = reqs.last().map(|r| r.arrival_us).unwrap_or(0.0);
    for (k, r) in tail.iter_mut().enumerate() {
        r.arrival_us += t0;
        r.id = (head + k) as u64;
    }
    reqs.append(&mut tail);
    reqs
}

/// One lifecycle run's vault accounting, for the report.
#[derive(Serialize)]
struct VaultRunRow {
    label: String,
    retunes_attempted: u32,
    retunes_promoted: u32,
    warm_starts: u32,
    tuner_evaluations: u64,
    records_match_plain: bool,
    p99_latency_us: f64,
    vault: VaultStats,
}

#[derive(Serialize)]
struct FleetCell {
    replica0_warm_started: bool,
    replica1_warm_started: bool,
    replica0_evaluations: u64,
    replica1_evaluations: u64,
    outcome_tuning_surfaced: bool,
    slo_attainment: f64,
}

/// Everything one pass of the harness measures. Serialized twice and
/// diffed for the replay gate, so it must not contain wall-clock noise.
#[derive(Serialize)]
struct WarmstartCore {
    model: String,
    num_features: usize,
    requests: usize,
    warm_budget_per_feature: u64,
    // economics cell
    cold_evaluations: u64,
    warm_evaluations: u64,
    economics_warm_started: bool,
    economics_identical_records: bool,
    // restart cell
    restart_rows: Vec<VaultRunRow>,
    // recovery cell
    recovery_quarantined: u64,
    recovery_store_failures: u64,
    recovery_records_match_plain: bool,
    recovery_diagnostics: Vec<String>,
    recovery_row: VaultRunRow,
    // fleet cell
    fleet: FleetCell,
}

#[derive(Serialize)]
struct WarmstartReport {
    /// Tracked headline: cold evaluations over warm evaluations for the
    /// economics cell. Higher is better.
    warm_speedup: f64,
    /// Two back-to-back passes serialized byte-identically.
    replay_identical: bool,
    run: WarmstartCore,
}

/// Corrupted sidecar quartet for `key`, planted before the recovery run.
/// Each file is a distinct failure mode the loader must quarantine.
fn plant_corruption(vault: &mut ProfileVault<MemVfs>, key: &ProfileKey, good: &ScheduleProfile) {
    let sealed = good.clone().seal();
    let clean = serde_json::to_string(&sealed).expect("profile serializes");

    // Torn write: the tail of the sidecar never hit the disk.
    let torn = &clean.as_bytes()[..clean.len() / 2];
    vault.vfs_mut().plant("torn-profile.json", torn);

    // Byte flip: one bit of a digit flipped after the hash was sealed.
    let mut flipped = clean.clone().into_bytes();
    let pos = clean.find("\"choices\"").expect("field present") + 12;
    flipped[pos] ^= 0x01;
    vault.vfs_mut().plant("flipped-profile.json", &flipped);

    // Version skew: a sidecar from a future schema, hash self-consistent.
    let mut skewed = sealed.clone();
    skewed.schema_version = SCHEMA_VERSION + 1;
    let skewed = skewed.seal();
    vault.vfs_mut().plant(
        "skewed-profile.json",
        serde_json::to_string(&skewed)
            .expect("profile serializes")
            .as_bytes(),
    );

    // Stale hash: valid JSON whose recorded hash no longer matches.
    let mut stale = sealed.clone();
    stale.mean_latency_us += 1.0;
    vault.vfs_mut().plant(
        "stale-profile.json",
        serde_json::to_string(&stale)
            .expect("profile serializes")
            .as_bytes(),
    );

    let _ = key; // quartet targets the scan path, not one key's name
}

/// Serve `stream` through a retune lifecycle whose retuner goes through
/// `vault`, returning the run row plus the records JSON.
#[allow(clippy::too_many_arguments)]
fn vault_run(
    label: &str,
    runtime: &ServeRuntime<'_>,
    stream: &[Request],
    model: &ModelConfig,
    history: &Dataset,
    arch: &GpuArch,
    scale: &Scale,
    vault: &RefCell<ProfileVault<MemVfs>>,
    plain_records: &str,
) -> (VaultRunRow, String) {
    let budget = DEFAULT_WARM_BUDGET_PER_FEATURE * model.features.len() as u64;
    let mut policy = RetunePolicy {
        drift: drift(),
        retune_latency_us: RETUNE_LATENCY_US,
        lifecycle: clean_lifecycle(),
        retuner: Box::new(move |_: &[Batch]| {
            let mut vault = vault.borrow_mut();
            let (engine, rep) = RecFlexEngine::tune_with_vault(
                model,
                history,
                arch,
                &scale.tuner,
                &mut vault,
                budget,
            );
            TunedCandidate {
                backend: Box::new(engine),
                tuning: Some(EngineTuning {
                    warm_started: rep.warm_started,
                    tuner_evaluations: rep.evaluations as u64,
                }),
            }
        }),
    };
    let report = runtime
        .serve_with_retune(stream, &mut policy)
        .expect("warmstart config is valid");
    let records = serde_json::to_string(&report.records).expect("serialize records");
    let row = VaultRunRow {
        label: label.to_string(),
        retunes_attempted: report.lifecycle.retunes_attempted,
        retunes_promoted: report.lifecycle.retunes_promoted,
        warm_starts: report.lifecycle.warm_starts,
        tuner_evaluations: report.lifecycle.tuner_evaluations,
        records_match_plain: records == plain_records,
        p99_latency_us: report.percentile_us(0.99),
        vault: vault.borrow().stats(),
    };
    (row, records)
}

fn run_all(scale: &Scale) -> WarmstartCore {
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let tables = TableSet::for_model(&model);
    let history = Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let budget = DEFAULT_WARM_BUDGET_PER_FEATURE * model.features.len() as u64;
    let config = ServeConfig {
        streams: 2,
        policy: BatchPolicy::Split { cap: 256 },
        slo_deadline_us: None,
        closed_loop: false,
        hot_shard_cap: None,
    };
    let n_requests = (scale.eval_batches * 12).clamp(24, 72);
    let stream = drifting_stream(&model, n_requests, 8);

    // ---- economics: cold tune, then warm tune, through one vault. ----
    let mut vault = ProfileVault::new(MemVfs::new());
    let (cold_engine, cold) =
        RecFlexEngine::tune_with_vault(&model, &history, &arch, &scale.tuner, &mut vault, budget);
    let (warm_engine, warm) =
        RecFlexEngine::tune_with_vault(&model, &history, &arch, &scale.tuner, &mut vault, budget);
    let ident_stream = WorkloadSpec::long_tail(GAP_US).stream(&model, 12, 9);
    let serve_records = |engine: &RecFlexEngine| {
        let rt = ServeRuntime {
            backend: engine,
            model: &model,
            tables: &tables,
            arch: &arch,
            config,
        };
        let rep = rt.serve(&ident_stream).expect("warmstart config is valid");
        serde_json::to_string(&rep.records).expect("serialize records")
    };
    let economics_identical_records = serve_records(&cold_engine) == serve_records(&warm_engine);

    // ---- restart: plain baseline, first boot, replica restart. ----
    let base_engine = RecFlexEngine::tune(&model, &history, &arch, &scale.tuner);
    let runtime = ServeRuntime {
        backend: &base_engine,
        model: &model,
        tables: &tables,
        arch: &arch,
        config,
    };
    let mut plain_policy = RetunePolicy {
        drift: drift(),
        retune_latency_us: RETUNE_LATENCY_US,
        lifecycle: clean_lifecycle(),
        retuner: Box::new(|_: &[Batch]| {
            (Box::new(RecFlexEngine::tune(&model, &history, &arch, &scale.tuner))
                as Box<dyn Backend>)
                .into()
        }),
    };
    let plain_report = runtime
        .serve_with_retune(&stream, &mut plain_policy)
        .expect("warmstart config is valid");
    let plain_records = serde_json::to_string(&plain_report.records).expect("serialize records");

    let shared = RefCell::new(ProfileVault::new(MemVfs::new()));
    let (boot_row, _) = vault_run(
        "first-boot",
        &runtime,
        &stream,
        &model,
        &history,
        &arch,
        scale,
        &shared,
        &plain_records,
    );
    let (restart_row, _) = vault_run(
        "restart",
        &runtime,
        &stream,
        &model,
        &history,
        &arch,
        scale,
        &shared,
        &plain_records,
    );

    // ---- recovery: corrupted quartet + injected fail-write. ----
    let key = ProfileKey {
        model: model.name.clone(),
        arch: arch.name.clone(),
        dist_summary: distribution_summary(history.batches()),
    };
    let good = ScheduleProfile {
        schema_version: SCHEMA_VERSION,
        key: key.clone(),
        choices: vec![0; model.features.len()],
        schedule_labels: vec!["seed".to_string(); model.features.len()],
        occupancy: None,
        mean_latency_us: 1.0,
        hash: String::new(),
    };
    let mut wounded = ProfileVault::new(MemVfs::with_plan(StoreFaultPlan {
        faults: vec![StoreFault {
            op: 0,
            kind: StoreFaultKind::FailWrite,
        }],
    }));
    plant_corruption(&mut wounded, &key, &good);
    let wounded = RefCell::new(wounded);
    let (recovery_row, _) = vault_run(
        "recovery",
        &runtime,
        &stream,
        &model,
        &history,
        &arch,
        scale,
        &wounded,
        &plain_records,
    );
    let wounded = wounded.into_inner();
    let recovery_stats = wounded.stats();
    let recovery_diagnostics = wounded.diagnostics().to_vec();

    // ---- fleet: two replicas of one model share one vault. ----
    let costs = vec![1.0; model.features.len()];
    let fleet_vault = RefCell::new(ProfileVault::new(MemVfs::new()));
    let tunings: RefCell<Vec<EngineTuning>> = RefCell::new(Vec::new());
    let replica = |name: &str| -> FleetMember<'_> {
        let runtime = ShardedServeRuntime::build(
            &model,
            &arch,
            Placement::balance_by_cost(1, &costs),
            config,
            scale.interconnect.clone(),
            |sub_model| {
                let sub_history = Dataset::synthesize(sub_model, 3, scale.batch_size, 7);
                let mut vault = fleet_vault.borrow_mut();
                let (engine, rep) = RecFlexEngine::tune_with_vault(
                    sub_model,
                    &sub_history,
                    &arch,
                    &scale.tuner,
                    &mut vault,
                    budget,
                );
                tunings.borrow_mut().push(EngineTuning {
                    warm_started: rep.warm_started,
                    tuner_evaluations: rep.evaluations as u64,
                });
                Box::new(engine)
            },
        );
        let tuning = tunings.borrow().last().copied();
        FleetMember {
            name: name.to_string(),
            class: 0,
            runtime,
            slo_deadline_us: None,
            gate: None,
            tuning,
        }
    };
    let fleet = FleetRuntime {
        classes: vec![DeviceClass {
            name: "V100".to_string(),
            arch: &arch,
            devices: 2,
        }],
        members: vec![replica("repl-0"), replica("repl-1")],
    };
    let scenario = |name: &str| ScenarioSpec {
        name: name.to_string(),
        workload: WorkloadSpec::long_tail(GAP_US),
        shape: TrafficShape::flat(),
        requests: (n_requests / 2).max(8),
        priority: 1,
    };
    let workload = recflex_serve::FleetWorkload {
        scenarios: vec![scenario("repl-0"), scenario("repl-1")],
        seed: FLEET_SEED,
    };
    let fleet_report = fleet
        .serve(&workload.merged(&[&model, &model]))
        .expect("fleet serves");
    let member_tunings = tunings.into_inner();
    let fleet_cell = FleetCell {
        replica0_warm_started: member_tunings.first().is_some_and(|t| t.warm_started),
        replica1_warm_started: member_tunings.get(1).is_some_and(|t| t.warm_started),
        replica0_evaluations: member_tunings
            .first()
            .map(|t| t.tuner_evaluations)
            .unwrap_or(0),
        replica1_evaluations: member_tunings
            .get(1)
            .map(|t| t.tuner_evaluations)
            .unwrap_or(0),
        outcome_tuning_surfaced: fleet_report.models.iter().all(|m| m.tuning.is_some()),
        slo_attainment: fleet_report.slo_attainment,
    };

    WarmstartCore {
        model: model.name.clone(),
        num_features: model.features.len(),
        requests: n_requests,
        warm_budget_per_feature: DEFAULT_WARM_BUDGET_PER_FEATURE,
        cold_evaluations: cold.evaluations as u64,
        warm_evaluations: warm.evaluations as u64,
        economics_warm_started: !cold.warm_started && warm.warm_started,
        economics_identical_records,
        restart_rows: vec![boot_row, restart_row],
        recovery_quarantined: recovery_stats.quarantined,
        recovery_store_failures: recovery_stats.store_failures,
        recovery_records_match_plain: recovery_row.records_match_plain,
        recovery_diagnostics,
        recovery_row,
        fleet: fleet_cell,
    }
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();

    let first = run_all(&scale);
    let second = run_all(&scale);
    let first_json = serde_json::to_string(&first).expect("serialize report");
    let second_json = serde_json::to_string(&second).expect("serialize report");
    let replay_identical = first_json == second_json;

    let warm_speedup = if first.warm_evaluations > 0 {
        first.cold_evaluations as f64 / first.warm_evaluations as f64
    } else {
        0.0
    };
    let report = WarmstartReport {
        warm_speedup,
        replay_identical,
        run: first,
    };

    println!(
        "== profile vault: model {} ({} features), {} requests, warm budget {}/feature ==",
        report.run.model,
        report.run.num_features,
        report.run.requests,
        report.run.warm_budget_per_feature,
    );
    println!(
        "economics      cold {:>6} evals   warm {:>6} evals   speedup {:.2}x   identical {}",
        report.run.cold_evaluations,
        report.run.warm_evaluations,
        report.warm_speedup,
        report.run.economics_identical_records,
    );
    for row in &report.run.restart_rows {
        println!(
            "{:<14} try {:>2}  win {:>2}  warm {:>2}  evals {:>7}  plain-identical {}",
            row.label,
            row.retunes_attempted,
            row.retunes_promoted,
            row.warm_starts,
            row.tuner_evaluations,
            row.records_match_plain,
        );
    }
    println!(
        "recovery       quarantined {}  store-failures {}  plain-identical {}  diagnostics {}",
        report.run.recovery_quarantined,
        report.run.recovery_store_failures,
        report.run.recovery_records_match_plain,
        report.run.recovery_diagnostics.len(),
    );
    println!(
        "fleet          repl-0 warm {}  repl-1 warm {}  evals {} -> {}  surfaced {}",
        report.run.fleet.replica0_warm_started,
        report.run.fleet.replica1_warm_started,
        report.run.fleet.replica0_evaluations,
        report.run.fleet.replica1_evaluations,
        report.run.fleet.outcome_tuning_surfaced,
    );
    println!("replay         byte-identical {}", report.replay_identical);

    opts.write_json(&report);

    if opts.check && !gates_hold(&report) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI robustness gates (see module docs).
fn gates_hold(report: &WarmstartReport) -> bool {
    let run = &report.run;
    if !run.economics_warm_started
        || run.warm_evaluations >= run.cold_evaluations
        || !run.economics_identical_records
    {
        eprintln!(
            "check FAILED: warm tune must reuse the stored profile and beat the cold run \
             (warm {} vs cold {} evaluations, warm_started {}, identical {})",
            run.warm_evaluations,
            run.cold_evaluations,
            run.economics_warm_started,
            run.economics_identical_records,
        );
        return false;
    }
    let boot = &run.restart_rows[0];
    let restart = &run.restart_rows[1];
    if !boot.records_match_plain || !restart.records_match_plain {
        eprintln!(
            "check FAILED: the vault changed served records (first-boot identical {}, \
             restart identical {}) — storage must be invisible to traffic",
            boot.records_match_plain, restart.records_match_plain,
        );
        return false;
    }
    if boot.retunes_attempted == 0 {
        eprintln!("check FAILED: drift never fired a retune — the restart cell has no teeth");
        return false;
    }
    if restart.warm_starts == 0 || restart.tuner_evaluations >= boot.tuner_evaluations {
        eprintln!(
            "check FAILED: the restarted replica must warm-start from the shared vault \
             ({} warm starts, {} vs {} evaluations)",
            restart.warm_starts, restart.tuner_evaluations, boot.tuner_evaluations,
        );
        return false;
    }
    if run.recovery_quarantined < 4 || run.recovery_store_failures == 0 {
        eprintln!(
            "check FAILED: the corruption quartet was not fully quarantined \
             ({} quarantined, {} store failures)",
            run.recovery_quarantined, run.recovery_store_failures,
        );
        return false;
    }
    if !run.recovery_records_match_plain || run.recovery_diagnostics.is_empty() {
        eprintln!(
            "check FAILED: corruption recovery must degrade to cold tuning with identical \
             records and a diagnostic trail (identical {}, {} diagnostics)",
            run.recovery_records_match_plain,
            run.recovery_diagnostics.len(),
        );
        return false;
    }
    if run.fleet.replica0_warm_started
        || !run.fleet.replica1_warm_started
        || !run.fleet.outcome_tuning_surfaced
    {
        eprintln!(
            "check FAILED: fleet replicas must share the vault (repl-0 warm {}, repl-1 warm {}, \
             surfaced {})",
            run.fleet.replica0_warm_started,
            run.fleet.replica1_warm_started,
            run.fleet.outcome_tuning_surfaced,
        );
        return false;
    }
    if !report.replay_identical {
        eprintln!("check FAILED: two back-to-back passes diverged — the harness is not seeded");
        return false;
    }
    println!("check PASSED: all warm-start, recovery, and replay gates hold");
    true
}
