//! Mapping-unit ablation (paper Section IV-B): block- vs warp-granularity
//! thread mapping for warp-mappable schedule sets.
//!
//! The paper picks blocks for convenience and because inference batches are
//! "around hundreds", noting warps as a possible extension. This experiment
//! quantifies the trade-off: warp packing removes per-feature block
//! fragmentation (strongest for small batches and many small features) at
//! the price of one task-map read per warp.

use recflex_bench::Scale;
use recflex_compiler::{FusedKernelObject, FusedSpec, WarpMappedKernel};
use recflex_data::{Batch, ModelPreset};
use recflex_embedding::TableSet;
use recflex_schedules::{ScheduleInstance, ScheduleKind, ScheduleParams};
use recflex_sim::{launch, GpuArch, LaunchConfig, SimKernel};

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::B); // one-hot heavy: many small features
    let tables = TableSet::for_model(&model);

    // A warp-mappable schedule set: sub-warp mapping, so one warp serves
    // 4 samples and a small batch occupies a fraction of a 256-thread
    // block — the fragmentation case block granularity rounds up.
    let schedules: Vec<ScheduleInstance> = model
        .features
        .iter()
        .map(|f| ScheduleInstance {
            kind: ScheduleKind::SubWarp,
            params: ScheduleParams {
                threads_per_block: 256,
                group_size: 8,
                vector_width: 2.min(f.emb_dim),
                unroll: 1,
                stage_rows: 0,
            },
            emb_dim: f.emb_dim,
        })
        .collect();
    let block_obj = FusedKernelObject::compile(FusedSpec::new(schedules.clone()));

    println!("== mapping-unit ablation: block vs warp granularity (model B) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>11} {:>11}",
        "batch", "block (us)", "warp (us)", "blk grid", "warp grid"
    );
    for bs in [8u32, 32, 128, 512] {
        let batch = Batch::generate(&model, bs, 100 + bs as u64);
        let block_bound = block_obj.bind(&model, &tables, &batch);
        let block_lat = launch(&block_bound, &arch, &block_obj.launch_config())
            .unwrap()
            .latency_us;
        let warp_kernel = WarpMappedKernel::bind(&schedules, &model, &batch)
            .expect("all schedules warp-mappable");
        let warp_lat = launch(&warp_kernel, &arch, &LaunchConfig::default())
            .unwrap()
            .latency_us;
        println!(
            "{bs:>8} {block_lat:>12.1} {warp_lat:>12.1} {:>11} {:>11}",
            SimKernel::grid_blocks(&block_bound),
            warp_kernel.grid_blocks()
        );
    }
    println!("\n(warp packing collapses per-feature fragmentation at small batches;");
    println!(" the paper's block choice is justified at batch ~ hundreds)");
}
