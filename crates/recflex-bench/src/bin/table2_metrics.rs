//! Table II: detailed V100 kernel analysis of RecFlex vs TorchRec on one
//! batch of model A — the Nsight-Compute-style counters of the simulator.

use recflex_baselines::TorchRecBackend;
use recflex_bench::{Fixture, Scale};
use recflex_data::ModelPreset;
use recflex_sim::{launch, GpuArch};

fn main() {
    let scale = Scale::from_env();
    let fixture = Fixture::prepare(ModelPreset::A, &GpuArch::v100(), &scale);
    let engine = fixture.tune_recflex(&scale);
    let torchrec = TorchRecBackend::compile(&fixture.model);
    let batch = &fixture.eval.batches()[0];

    let ours_bound = engine.object.bind(&fixture.model, &fixture.tables, batch);
    let ours = launch(&ours_bound, &fixture.arch, &engine.object.launch_config()).unwrap();
    let theirs_bound = torchrec
        .object()
        .bind(&fixture.model, &fixture.tables, batch);
    let theirs = launch(
        &theirs_bound,
        &fixture.arch,
        &torchrec.object().launch_config(),
    )
    .unwrap();

    println!("== Table II: V100 kernel analysis, model A, one batch ==");
    println!("{:<42} {:>10} {:>10}", "Metric Name", "TorchRec", "RecFlex");
    for ((name, t), (_, r)) in theirs
        .metrics
        .table_rows()
        .iter()
        .zip(ours.metrics.table_rows())
    {
        println!("{:<42} {:>10.2} {:>10.2}", name, t, r);
    }
    println!(
        "\nkernel latency: TorchRec {:.1} us, RecFlex {:.1} us ({:.2}x)",
        theirs.latency_us,
        ours.latency_us,
        theirs.latency_us / ours.latency_us
    );
    println!("\nPaper reference (V100, model A): memory throughput 380 vs 641 GB/s,");
    println!("max bandwidth 38.75 vs 65.57 %, active threads/warp 20.35 vs 28.54.");
}
