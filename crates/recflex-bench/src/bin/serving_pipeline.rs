//! Deadline-budgeted multi-stage pipeline harness: candidate counts ×
//! fault scenarios × failure policies, with the robustness gates CI
//! enforces.
//!
//! Serves one seeded long-tail Poisson stream through a two-stage
//! retrieval → ranking pipeline (each stage its own RecFlex-tuned
//! sharded tier with a share of the end-to-end SLO) under a grid of
//! deterministic stage-scoped fault scenarios (ranking-shard stall,
//! retrieval slowdown, a seeded mixed storm on every stage, and the
//! fault-free control) crossed with two failure policies:
//!
//! * `naive` — retry every late/faulted stage attempt until the attempt
//!   cap, at full candidate count, with no breaker and no fallback: the
//!   metastable baseline whose retry storm outlives the fault.
//! * `budgeted` — retries gated by the fleet-wide token-bucket
//!   `RetryBudget` and the per-stage `CircuitBreaker`, degrading the
//!   candidate count along the stage ladder, falling back (ranking →
//!   retrieval-order scores) inside the deadline budget instead of
//!   shedding.
//!
//! Every cell reports availability (degraded answers count, late ones do
//! not), the degraded-answer rate, tail latency and retry amplification.
//! Everything is seeded: two runs print identical numbers, and the CI
//! `threads-replay` matrix asserts it by diffing `--json` outputs.
//!
//! `--check` enforces three gates:
//!
//! 1. **Degenerate identity** — a 1-stage pipeline must reproduce the
//!    plain `ShardedServeRuntime` byte-for-byte (as JSON records).
//! 2. **Stall availability** — under the scripted mid-run ranking-stage
//!    stall the budgeted policy holds availability ≥ 0.95 and strictly
//!    beats naive retry on both availability and p99.
//! 3. **Bounded amplification** — the budgeted cell's total stage
//!    executions stay within 1.2× of admitted chunks.

use std::process::ExitCode;

use recflex_bench::{CliOpts, Scale};
use recflex_core::{feature_cost_estimates, RecFlexEngine};
use recflex_data::{Dataset, ModelPreset, PipelineReport, Placement};
use recflex_serve::{
    BatchPolicy, BudgetedPolicy, Fault, FaultKind, FaultSpec, PipelineFaultSpec, PipelineRuntime,
    PipelineSpec, Request, ResilienceConfig, ServeConfig, ShardedServeRuntime, StageFault,
    StagePolicy, StageSpec, WorkloadSpec,
};
use recflex_sim::GpuArch;
use serde::Serialize;

/// Shards backing each stage tier.
const SHARDS: usize = 2;
/// Mean Poisson inter-arrival gap, µs.
const GAP_US: f64 = 200.0;
/// End-to-end SLO as a multiple of the mean gap.
const SLO_GAPS: f64 = 40.0;
/// Retrieval's share of the SLO; ranking gets the rest.
const RETRIEVAL_FRAC: f64 = 0.4;
const RANKING_FRAC: f64 = 0.6;
/// The availability floor the budgeted policy must hold under the
/// scripted ranking stall (the `--check` gate).
const AVAILABILITY_FLOOR: f64 = 0.95;
/// Retry-amplification ceiling for the budgeted policy.
const AMPLIFICATION_CAP: f64 = 1.2;
/// Full-quality ranking candidate counts the sweep covers. The first
/// entry is the gated cell.
const CANDIDATE_SWEEP: [u32; 2] = [32, 64];

#[derive(Serialize)]
struct PipelineRow {
    scenario: String,
    policy: String,
    rank_candidates: u32,
    availability: f64,
    degraded_rate: f64,
    p50_us: f64,
    p99_us: f64,
    amplification: f64,
    fallbacks: u64,
    retries: u64,
    retries_denied: u64,
    breaker_trips: u64,
    makespan_us: f64,
}

#[derive(Serialize)]
struct PipelineBenchReport {
    model: String,
    num_features: usize,
    shards_per_stage: usize,
    requests: usize,
    gap_us: f64,
    slo_us: f64,
    retrieval_frac: f64,
    ranking_frac: f64,
    /// Gate 1: the 1-stage pipeline reproduced the plain tier's records
    /// byte-for-byte.
    degenerate_identity: bool,
    rows: Vec<PipelineRow>,
}

/// Stage-scoped fault scenarios. Windows sit mid-stream — `span` is the
/// last arrival — so the healthy lead-in and the drain both appear.
fn scenarios(span: f64) -> Vec<(String, PipelineFaultSpec)> {
    let start = 0.2 * span;
    let end = 0.9 * span;
    vec![
        ("none".to_string(), PipelineFaultSpec::none()),
        (
            "rank-stall".to_string(),
            PipelineFaultSpec::scripted(vec![StageFault {
                stage: 1,
                fault: Fault {
                    start_us: start,
                    end_us: end,
                    kind: FaultKind::Stall { shard: 0 },
                },
            }]),
        ),
        (
            "retr-slow".to_string(),
            PipelineFaultSpec::scripted(vec![StageFault {
                stage: 0,
                fault: Fault {
                    start_us: start,
                    end_us: end,
                    kind: FaultKind::Slowdown {
                        shard: 0,
                        rate: 0.3,
                    },
                },
            }]),
        ),
        (
            "storm".to_string(),
            PipelineFaultSpec {
                scripted: Vec::new(),
                background: Some(FaultSpec::mixed(0.15 * span, 0.08 * span)),
            },
        ),
    ]
}

fn naive_policy() -> StagePolicy {
    StagePolicy::NaiveRetry {
        max_attempts: 6,
        shed_backoff_us: 100.0,
    }
}

fn main() -> ExitCode {
    let opts = CliOpts::from_args();
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let model = scale.model(ModelPreset::A);
    let history = Dataset::synthesize(&model, 3, scale.batch_size, 7);
    let costs = feature_cost_estimates(&model, &history, &arch);
    let slo_us = SLO_GAPS * GAP_US;
    // Stage admission runs off the pipeline's per-attempt deadline
    // shares, not a tier-level SLO.
    let stage_config = ServeConfig {
        streams: 4,
        policy: BatchPolicy::Split { cap: 256 },
        slo_deadline_us: None,
        closed_loop: false,
        hot_shard_cap: None,
    };
    let n_requests = (scale.eval_batches * 16).clamp(24, 96);
    let stream: Vec<Request> = WorkloadSpec::long_tail(GAP_US).stream(&model, n_requests, 42);
    let span = stream.last().map(|r| r.arrival_us).unwrap_or(0.0);
    // Fault windows land in absolute time; retries re-enter past the
    // stream tail, so plans must cover the drain too.
    let horizon = span + 4.0 * slo_us;

    let make_backend =
        |sub_model: &recflex_data::ModelConfig| -> Box<dyn recflex_baselines::Backend> {
            let sub_history = Dataset::synthesize(sub_model, 3, scale.batch_size, 7);
            Box::new(RecFlexEngine::tune(
                sub_model,
                &sub_history,
                &arch,
                &scale.tuner,
            ))
        };
    let placement = || Placement::balance_by_cost(SHARDS, &costs);
    let stage_tier = || {
        ShardedServeRuntime::build_resilient(
            &model,
            &arch,
            placement(),
            stage_config,
            scale.interconnect.clone(),
            ResilienceConfig::default(),
            &costs,
            make_backend,
        )
    };

    println!(
        "== serving pipeline: model {} ({} features), retrieval+ranking x {SHARDS} shards, \
         {n_requests} requests @ {GAP_US} us mean gap, SLO {slo_us} us \
         ({RETRIEVAL_FRAC}/{RANKING_FRAC} split) ==",
        model.name,
        model.features.len(),
    );

    // Gate 1: a 1-stage pipeline must be the plain tier, byte for byte.
    let plain = ShardedServeRuntime::build(
        &model,
        &arch,
        placement(),
        stage_config,
        scale.interconnect.clone(),
        make_backend,
    );
    let plain_records = serde_json::to_string(
        &plain
            .serve(&stream)
            .expect("pipeline config is valid")
            .records,
    )
    .expect("serialize records");
    let degenerate = PipelineRuntime::new(
        PipelineSpec {
            slo_us,
            stages: vec![StageSpec::retrieval(64, 1.0)],
            policy: StagePolicy::Budgeted(BudgetedPolicy::for_slo(slo_us)),
            seed: 11,
        },
        vec![ShardedServeRuntime::build(
            &model,
            &arch,
            placement(),
            stage_config,
            scale.interconnect.clone(),
            make_backend,
        )],
    )
    .expect("degenerate spec is valid");
    let degenerate_out = degenerate.serve(&stream).expect("pipeline config is valid");
    let degenerate_identity = serde_json::to_string(&degenerate_out.stage_wave0[0].records)
        .expect("serialize records")
        == plain_records;

    // One two-stage pipeline, re-pointed per cell: the fault plans, the
    // failure policy and the ranking candidate count are the only
    // things that change, so the four stage lanes tune exactly once.
    let mut pipeline = PipelineRuntime::new(
        PipelineSpec {
            slo_us,
            stages: vec![
                StageSpec::retrieval(64, RETRIEVAL_FRAC),
                StageSpec::ranking(CANDIDATE_SWEEP[0], RANKING_FRAC)
                    .with_ladder(vec![CANDIDATE_SWEEP[0] / 2]),
            ],
            policy: StagePolicy::Budgeted(BudgetedPolicy::for_slo(slo_us)),
            seed: 11,
        },
        vec![stage_tier(), stage_tier()],
    )
    .expect("pipeline spec is valid");

    println!(
        "{:<12} {:<10} {:>5} {:>6} {:>9} {:>9} {:>11} {:>6} {:>8} {:>7} {:>6}",
        "scenario",
        "policy",
        "cand",
        "avail",
        "degraded",
        "amplif",
        "p99 (us)",
        "fback",
        "retries",
        "denied",
        "trips"
    );

    let mut rows = Vec::new();
    for (scenario, fault_spec) in scenarios(span) {
        let plans = fault_spec.plans(&[SHARDS, SHARDS], horizon, 0xF1A9);
        for &candidates in &CANDIDATE_SWEEP {
            for pname in ["naive", "budgeted"] {
                for (stage, plan) in plans.iter().cloned().enumerate() {
                    pipeline.set_stage_plan(stage, plan);
                }
                pipeline
                    .set_stage_candidates(1, candidates)
                    .expect("candidate counts are positive");
                pipeline.set_policy(match pname {
                    "naive" => naive_policy(),
                    _ => StagePolicy::Budgeted(BudgetedPolicy::for_slo(slo_us)),
                });
                let report: PipelineReport = pipeline
                    .serve(&stream)
                    .expect("pipeline config is valid")
                    .report();
                let rank = &report.stages[1];
                let row = PipelineRow {
                    scenario: scenario.clone(),
                    policy: pname.to_string(),
                    rank_candidates: candidates,
                    availability: report.availability,
                    degraded_rate: if report.offered == 0 {
                        0.0
                    } else {
                        report.degraded_answers as f64 / report.offered as f64
                    },
                    p50_us: report.p50_us,
                    p99_us: report.p99_us,
                    amplification: report.amplification,
                    fallbacks: rank.fallbacks,
                    retries: report.stages.iter().map(|s| s.retries).sum(),
                    retries_denied: report.stages.iter().map(|s| s.retries_denied).sum(),
                    breaker_trips: report.stages.iter().map(|s| s.breaker_trips).sum(),
                    makespan_us: report.makespan_us,
                };
                println!(
                    "{:<12} {:<10} {:>5} {:>6.3} {:>9.3} {:>9.3} {:>11.1} {:>6} {:>8} {:>7} {:>6}",
                    row.scenario,
                    row.policy,
                    row.rank_candidates,
                    row.availability,
                    row.degraded_rate,
                    row.amplification,
                    row.p99_us,
                    row.fallbacks,
                    row.retries,
                    row.retries_denied,
                    row.breaker_trips
                );
                rows.push(row);
            }
        }
    }
    println!(
        "(availability counts degraded answers; `amplif` is stage executions \
         per admitted chunk — the retry-storm budget caps it at {AMPLIFICATION_CAP})"
    );

    let report = PipelineBenchReport {
        model: model.name.clone(),
        num_features: model.features.len(),
        shards_per_stage: SHARDS,
        requests: n_requests,
        gap_us: GAP_US,
        slo_us,
        retrieval_frac: RETRIEVAL_FRAC,
        ranking_frac: RANKING_FRAC,
        degenerate_identity,
        rows,
    };
    opts.write_json(&report);

    if opts.check && !gates_hold(&report) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI robustness gates (see module docs).
fn gates_hold(report: &PipelineBenchReport) -> bool {
    if !report.degenerate_identity {
        eprintln!(
            "check FAILED: the 1-stage pipeline diverged from the plain serving \
             tier — the pipeline machinery is not free"
        );
        return false;
    }
    let cell = |policy: &str| {
        report
            .rows
            .iter()
            .find(|r| {
                r.scenario == "rank-stall"
                    && r.policy == policy
                    && r.rank_candidates == CANDIDATE_SWEEP[0]
            })
            .expect("sweep covers the gated cell")
    };
    let budgeted = cell("budgeted");
    let naive = cell("naive");
    if budgeted.availability < AVAILABILITY_FLOOR {
        eprintln!(
            "check FAILED: budgeted availability {:.3} under the ranking stall is \
             below the {AVAILABILITY_FLOOR} floor",
            budgeted.availability
        );
        return false;
    }
    if naive.availability >= budgeted.availability {
        eprintln!(
            "check FAILED: naive availability {:.3} is not strictly below the \
             budgeted policy's {:.3} — the stall scenario has no teeth",
            naive.availability, budgeted.availability
        );
        return false;
    }
    if naive.p99_us <= budgeted.p99_us {
        eprintln!(
            "check FAILED: naive p99 {:.1} us is not strictly above the budgeted \
             policy's {:.1} us",
            naive.p99_us, budgeted.p99_us
        );
        return false;
    }
    if budgeted.amplification > AMPLIFICATION_CAP {
        eprintln!(
            "check FAILED: budgeted amplification {:.3} exceeds the {AMPLIFICATION_CAP} \
             retry-storm cap",
            budgeted.amplification
        );
        return false;
    }
    println!(
        "check passed: degenerate pipeline identical to the plain tier; stall availability \
         {:.3} (budgeted) >= {AVAILABILITY_FLOOR} > {:.3} (naive), p99 {:.1} < {:.1} us, \
         amplification {:.3} <= {AMPLIFICATION_CAP}",
        budgeted.availability,
        naive.availability,
        budgeted.p99_us,
        naive.p99_us,
        budgeted.amplification
    );
    true
}
