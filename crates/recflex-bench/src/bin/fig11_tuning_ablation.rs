//! Figure 11: two-stage interference-simulated tuning vs the straw-man
//! separate-and-combine tuner, on models A–E (V100).
//!
//! The paper reports the two-stage kernels beating the direct approach by
//! 4.82× on average; the gap comes from the straw man picking schedules
//! that look fast in isolation (full bandwidth, empty L2, idle SMs) but
//! collapse inside the busy fused kernel.

use recflex_bench::{geomean, Fixture, Scale};
use recflex_core::RecFlexEngine;
use recflex_data::ModelPreset;
use recflex_sim::GpuArch;
use recflex_tuner::tune_separate_combine;

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    println!("== Fig.11: two-stage vs separate-combine tuning (V100) ==");
    println!(
        "{:<8} {:>16} {:>18} {:>12}",
        "model", "two-stage (us)", "separate-comb (us)", "improvement"
    );

    let mut ratios = Vec::new();
    for preset in ModelPreset::TABLE1 {
        let fixture = Fixture::prepare(preset, &arch, &scale);
        let two_stage = fixture.tune_recflex(&scale);
        let straw = tune_separate_combine(&fixture.model, &fixture.history, &arch, &scale.tuner);
        let straw_engine = RecFlexEngine::from_tune_result(&fixture.model, &arch, straw);

        let a = fixture.total_latency(&two_stage).unwrap();
        let b = fixture.total_latency(&straw_engine).unwrap();
        let ratio = b / a;
        ratios.push(ratio);
        println!(
            "{:<8} {:>16.1} {:>18.1} {:>11.2}x",
            preset.name(),
            a,
            b,
            ratio
        );
    }
    println!(
        "\naverage improvement: {:.2}x  (paper: 4.82x)",
        geomean(&ratios)
    );
}
