//! Section IV-B dispatch ablation: block-level if-else branches vs a
//! function-pointer array. Paper: the indirect variant loses ~45 % because
//! it blocks inlining, while thousands of inlined branches cost almost
//! nothing.

use recflex_bench::{Fixture, Scale};
use recflex_compiler::{DispatchMode, FusedKernelObject, FusedSpec};
use recflex_data::ModelPreset;
use recflex_sim::{launch, GpuArch};

fn main() {
    let scale = Scale::from_env();
    let arch = GpuArch::v100();
    let fixture = Fixture::prepare(ModelPreset::A, &arch, &scale);
    let engine = fixture.tune_recflex(&scale);

    let mut total = [0.0f64; 2];
    for (i, mode) in [DispatchMode::IfElse, DispatchMode::FnPtrArray]
        .iter()
        .enumerate()
    {
        // Recompile: the dispatch mechanism changes the kernel's resource
        // footprint, not just its launch flags.
        let mut spec = FusedSpec::new(engine.tune_result.schedules.clone());
        spec.occupancy_target = engine.tune_result.occupancy;
        spec.dispatch = *mode;
        let obj = FusedKernelObject::compile(spec);
        for batch in fixture.eval.batches() {
            let bound = obj.bind(&fixture.model, &fixture.tables, batch);
            total[i] += launch(&bound, &arch, &obj.launch_config())
                .unwrap()
                .latency_us;
        }
    }
    println!("== Dispatch ablation (model A, V100) ==");
    println!("if-else chain      : {:>12.1} us", total[0]);
    println!("fn-pointer array   : {:>12.1} us", total[1]);
    println!(
        "indirect dispatch penalty: {:.1}%  (paper: ~45% on issue-sensitive kernels)",
        100.0 * (total[1] / total[0] - 1.0)
    );
}
