//! # recflex-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §7 for the
//! index). Every binary prints the same rows/series the paper reports;
//! EXPERIMENTS.md records paper-vs-measured.
//!
//! ## Scaling
//!
//! The paper's full configuration (1000-feature models, 128 batches of up
//! to 512 samples, eight tuning GPUs) is reproducible but slow on a laptop.
//! The harness therefore reads:
//!
//! * `RECFLEX_SCALE`  — fraction of each model's feature count (default 0.1),
//! * `RECFLEX_BATCH`  — evaluation batch size (default 256),
//! * `RECFLEX_EVAL_BATCHES` — evaluation batches (default 16, paper 128),
//! * `RECFLEX_INTERCONNECT` — the link the sharded serving binaries
//!   gather over: `nvlink` (default), `pcie` or `ideal`,
//!
//! so `RECFLEX_SCALE=1.0 RECFLEX_BATCH=512 RECFLEX_EVAL_BATCHES=128` runs
//! the paper-size experiments. Relative results (who wins, by how much) are
//! stable across scales because every backend sees the same inputs.

use recflex_baselines::{
    Backend, HugeCtrBackend, RecomBackend, TensorFlowBackend, TorchRecBackend,
};
use recflex_core::RecFlexEngine;
use recflex_data::{Batch, Dataset, ModelConfig, ModelPreset};
use recflex_embedding::TableSet;
use recflex_sim::{GpuArch, Interconnect};
use recflex_tuner::TunerConfig;

/// Experiment scaling knobs (see crate docs).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Fraction of each preset's feature count.
    pub model_frac: f64,
    /// Evaluation batch size.
    pub batch_size: u32,
    /// Number of evaluation batches.
    pub eval_batches: usize,
    /// The interconnect preset name (`nvlink`, `pcie` or `ideal`) —
    /// kept alongside [`Self::interconnect`] for report labels.
    pub interconnect_name: String,
    /// The link the sharded serving binaries gather pooled outputs over.
    pub interconnect: Interconnect,
    /// Tuner configuration.
    pub tuner: TunerConfig,
}

impl Scale {
    /// Read the knobs from the environment.
    ///
    /// The numeric knobs fall back to their defaults on parse failure,
    /// but an unknown `RECFLEX_INTERCONNECT` aborts: silently serving
    /// over NVLink when the run asked for PCIe would invalidate the
    /// experiment without any visible symptom.
    pub fn from_env() -> Self {
        let model_frac = std::env::var("RECFLEX_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.1);
        let batch_size = std::env::var("RECFLEX_BATCH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let eval_batches = std::env::var("RECFLEX_EVAL_BATCHES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16);
        let interconnect_name = std::env::var("RECFLEX_INTERCONNECT")
            .unwrap_or_else(|_| "nvlink".to_string())
            .to_ascii_lowercase();
        let interconnect = Interconnect::by_name(&interconnect_name).unwrap_or_else(|| {
            panic!("RECFLEX_INTERCONNECT={interconnect_name} is not one of nvlink, pcie, ideal")
        });
        let tuner = TunerConfig {
            occupancy_levels: Some(vec![1, 2, 4, 8, 16]),
            tuning_batches: 3,
            pad_fill: 2.0,
        };
        Scale {
            model_frac,
            batch_size,
            eval_batches,
            interconnect_name,
            interconnect,
            tuner,
        }
    }

    /// Build a preset at this scale.
    pub fn model(&self, preset: ModelPreset) -> ModelConfig {
        preset.scaled(self.model_frac)
    }
}

/// A fully prepared experiment fixture for one model on one architecture.
pub struct Fixture {
    /// The (scaled) model.
    pub model: ModelConfig,
    /// Its tables.
    pub tables: TableSet,
    /// Historical batches for tuning/compilation.
    pub history: Dataset,
    /// Fresh evaluation batches.
    pub eval: Dataset,
    /// Target architecture.
    pub arch: GpuArch,
}

impl Fixture {
    /// Prepare model, tables, tuning history and evaluation split.
    ///
    /// Evaluation batches cycle through varying request sizes around the
    /// configured batch size — online serving never sees one fixed size
    /// (Section II-C "the varied batch sizes … contribute to the
    /// dynamics"), and this variation is what the Figure 13 mapping
    /// ablation exploits.
    pub fn prepare(preset: ModelPreset, arch: &GpuArch, scale: &Scale) -> Self {
        let model = scale.model(preset);
        let tables = TableSet::for_model(&model);
        let bs = scale.batch_size;
        let hist_sizes: Vec<u32> = [1.0, 0.5, 0.75]
            .iter()
            .cycle()
            .take(scale.tuner.tuning_batches.max(2))
            .map(|f| ((bs as f64 * f) as u32).max(1))
            .collect();
        let history = Dataset::synthesize_varied(&model, &hist_sizes, 0xA11CE);
        let eval_sizes: Vec<u32> = [1.0, 0.25, 0.5, 1.0, 0.125, 0.75]
            .iter()
            .cycle()
            .take(scale.eval_batches)
            .map(|f| ((bs as f64 * f) as u32).max(1))
            .collect();
        let eval = Dataset::synthesize_varied(&model, &eval_sizes, 0xE7A1 ^ 0xA11CE);
        Fixture {
            model,
            tables,
            history,
            eval,
            arch: arch.clone(),
        }
    }

    /// Tune a RecFlex engine on the fixture's history.
    pub fn tune_recflex(&self, scale: &Scale) -> RecFlexEngine {
        RecFlexEngine::tune(&self.model, &self.history, &self.arch, &scale.tuner)
    }

    /// Total embedding-stage latency of `backend` over all eval batches.
    pub fn total_latency(&self, backend: &dyn Backend) -> Option<f64> {
        if !backend.supports(&self.model) {
            return None;
        }
        let mut total = 0.0;
        for b in self.eval.batches() {
            total += backend
                .run(&self.model, &self.tables, b, &self.arch)
                .ok()?
                .latency_us;
        }
        Some(total)
    }

    /// All baselines applicable to this model, freshly compiled.
    pub fn baselines(&self) -> Vec<Box<dyn Backend>> {
        let mut v: Vec<Box<dyn Backend>> = vec![
            Box::new(TensorFlowBackend),
            Box::new(RecomBackend::compile(&self.model, &self.history)),
            Box::new(TorchRecBackend::compile(&self.model)),
        ];
        if HugeCtrBackend.supports(&self.model) {
            v.push(Box::new(HugeCtrBackend));
        }
        v
    }
}

/// One row of a comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub name: String,
    /// Total latency over the evaluation set, µs.
    pub latency_us: f64,
}

/// Print a normalized performance table (fastest = 1.00, as in Figures
/// 9/10) and return `(name, normalized_perf)` pairs.
pub fn print_normalized(title: &str, rows: &[Row]) -> Vec<(String, f64)> {
    let best = rows
        .iter()
        .map(|r| r.latency_us)
        .fold(f64::INFINITY, f64::min);
    println!("\n== {title} ==");
    println!(
        "{:<12} {:>14} {:>12}",
        "system", "latency (us)", "normalized"
    );
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        let norm = best / r.latency_us;
        println!("{:<12} {:>14.1} {:>12.3}", r.name, r.latency_us, norm);
        out.push((r.name.clone(), norm));
    }
    out
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Pretty-print average speedups of `reference` over each other system,
/// pooled across experiments (the paper's "average speedups of …" lines).
pub fn print_average_speedups(reference: &str, pools: &[(String, Vec<f64>)]) {
    println!("\n-- average speedups of {reference} --");
    for (name, ratios) in pools {
        if !ratios.is_empty() {
            println!(
                "  over {:<12} {:>8.2}x  (n={})",
                name,
                geomean(ratios),
                ratios.len()
            );
        }
    }
}

/// Both testbed architectures, in paper order.
pub fn both_archs() -> Vec<GpuArch> {
    vec![GpuArch::v100(), GpuArch::a100()]
}

/// Command-line options shared by the experiment binaries.
///
/// * `--json <path>` — also write the run's results as a JSON report, for
///   CI artifact upload and the determinism-replay diff.
/// * `--check` — after printing, verify the run's acceptance thresholds
///   and exit non-zero on violation (the CI perf gate).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliOpts {
    /// Where to write the JSON report, if requested.
    pub json_path: Option<std::path::PathBuf>,
    /// Whether to enforce the binary's acceptance thresholds.
    pub check: bool,
}

impl CliOpts {
    /// Parse from an argument iterator (without the program name).
    /// Unknown arguments abort: a typoed flag silently ignored would
    /// void the CI gate it was meant to arm.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = CliOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => {
                    let path = it.next().ok_or("--json requires a path argument")?;
                    opts.json_path = Some(std::path::PathBuf::from(path));
                }
                "--check" => opts.check = true,
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(opts)
    }

    /// Parse the process arguments, exiting with a usage message on error.
    pub fn from_args() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}\nusage: <binary> [--json <path>] [--check]");
                std::process::exit(2);
            }
        }
    }

    /// Write `report` as pretty JSON to the `--json` path, if one was
    /// given. Panics on I/O failure — in CI a missing artifact must fail
    /// the job, not pass silently.
    pub fn write_json<T: serde::Serialize>(&self, report: &T) {
        if let Some(path) = &self.json_path {
            let text = serde_json::to_string_pretty(report).expect("serialize report");
            std::fs::write(path, text + "\n")
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            println!("\nJSON report written to {}", path.display());
        }
    }
}

/// Generate a single long-tail request (Section VI-D's 2 560-sample batch).
pub fn long_tail_batch(model: &ModelConfig) -> Batch {
    Batch::generate(model, 2560, 0x1077A11)
}

/// The bench-trajectory regression gate behind the `bench_check` binary.
///
/// Compares a freshly generated `BENCH_*.json` against the committed
/// baseline and reports every **tracked metric** that regressed beyond a
/// tolerance (CI uses 10%). Tracked metrics are recognized by key name
/// wherever they appear in the document, so new report shapes get gated
/// for free as long as they reuse the naming conventions:
///
/// * higher is better: `slo_attainment`, `availability`, `speedup_4t`,
///   `hit_rate`, `warm_speedup`
/// * lower is better: `p50_us`, `p99_us`, `makespan_us`, `latency_us`
///
/// Wall-clock fields (`wall_ms`) are deliberately untracked — they vary
/// with the host; only dimensionless ratios derived from them
/// (`speedup_4t`) are gated.
pub mod trajectory {
    use serde_json::Value;

    const HIGHER_BETTER: &[&str] = &[
        "slo_attainment",
        "availability",
        "speedup_4t",
        "hit_rate",
        "warm_speedup",
    ];
    const LOWER_BETTER: &[&str] = &["p50_us", "p99_us", "makespan_us", "latency_us"];

    /// One tracked metric that moved the wrong way (or disappeared).
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// JSON path of the metric (e.g. `$.rows[2].slo_attainment`).
        pub path: String,
        /// Baseline value (`None` when the structure itself changed).
        pub baseline: Option<f64>,
        /// Current value (`None` when the metric vanished).
        pub current: Option<f64>,
    }

    impl std::fmt::Display for Regression {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match (self.baseline, self.current) {
                (Some(b), Some(c)) => write!(f, "{}: {b} -> {c}", self.path),
                (Some(b), None) => write!(f, "{}: {b} -> <missing>", self.path),
                _ => write!(f, "{}: structural change", self.path),
            }
        }
    }

    fn as_num(v: &Value) -> Option<f64> {
        match v {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Collect every tracked-metric regression of `current` vs `baseline`.
    pub fn compare(baseline: &Value, current: &Value, tolerance: f64) -> Vec<Regression> {
        let mut out = Vec::new();
        walk("$", baseline, current, tolerance, &mut out);
        out
    }

    fn walk(path: &str, base: &Value, cur: &Value, tol: f64, out: &mut Vec<Regression>) {
        match (base, cur) {
            (Value::Obj(be), Value::Obj(ce)) => {
                for (k, bv) in be {
                    let here = format!("{path}.{k}");
                    match ce.iter().find(|(ck, _)| ck == k) {
                        Some((_, cv)) => {
                            check_metric(&here, k, bv, cv, tol, out);
                            walk(&here, bv, cv, tol, out);
                        }
                        None if is_tracked(k) => out.push(Regression {
                            path: here,
                            baseline: as_num(bv),
                            current: None,
                        }),
                        None => {}
                    }
                }
            }
            (Value::Arr(ba), Value::Arr(ca)) => {
                // Pairwise over the common prefix: a shorter current array
                // only fails if it drops tracked metrics, which the object
                // arm above reports element-wise.
                for (i, (bv, cv)) in ba.iter().zip(ca).enumerate() {
                    walk(&format!("{path}[{i}]"), bv, cv, tol, out);
                }
            }
            _ => {}
        }
    }

    fn is_tracked(key: &str) -> bool {
        HIGHER_BETTER.contains(&key) || LOWER_BETTER.contains(&key)
    }

    fn check_metric(
        path: &str,
        key: &str,
        base: &Value,
        cur: &Value,
        tol: f64,
        out: &mut Vec<Regression>,
    ) {
        let (Some(b), Some(c)) = (as_num(base), as_num(cur)) else {
            return;
        };
        // Tiny absolute slack keeps near-zero latencies from tripping on
        // relative noise alone.
        let regressed = if HIGHER_BETTER.contains(&key) {
            c < b * (1.0 - tol) - 1e-9
        } else if LOWER_BETTER.contains(&key) {
            c > b * (1.0 + tol) + 1e-9
        } else {
            false
        };
        if regressed {
            out.push(Regression {
                path: path.to_string(),
                baseline: Some(b),
                current: Some(c),
            });
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn parse(s: &str) -> Value {
            serde_json::from_str(s).unwrap()
        }

        #[test]
        fn flags_higher_better_drop_beyond_tolerance() {
            let base = parse(r#"{"rows":[{"slo_attainment":0.9,"p99_us":100.0}]}"#);
            let ok = parse(r#"{"rows":[{"slo_attainment":0.85,"p99_us":105.0}]}"#);
            assert!(compare(&base, &ok, 0.10).is_empty());
            let bad = parse(r#"{"rows":[{"slo_attainment":0.7,"p99_us":100.0}]}"#);
            let regs = compare(&base, &bad, 0.10);
            assert_eq!(regs.len(), 1);
            assert_eq!(regs[0].path, "$.rows[0].slo_attainment");
        }

        #[test]
        fn flags_lower_better_rise_and_missing_metric() {
            let base = parse(r#"{"p99_us":100.0,"speedup_4t":2.0}"#);
            let slow = parse(r#"{"p99_us":150.0,"speedup_4t":2.0}"#);
            assert_eq!(compare(&base, &slow, 0.10).len(), 1);
            let gone = parse(r#"{"p99_us":100.0}"#);
            let regs = compare(&base, &gone, 0.10);
            assert_eq!(regs.len(), 1);
            assert_eq!(regs[0].current, None);
        }

        #[test]
        fn untracked_fields_and_improvements_pass() {
            let base = parse(r#"{"wall_ms":50.0,"speedup_4t":1.0,"p50_us":80.0}"#);
            let cur = parse(r#"{"wall_ms":500.0,"speedup_4t":3.1,"p50_us":20.0}"#);
            assert!(compare(&base, &cur, 0.10).is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_opts_parse_json_and_check() {
        let opts =
            CliOpts::parse_from(["--json", "out.json", "--check"].map(String::from)).unwrap();
        assert_eq!(
            opts.json_path.as_deref(),
            Some(std::path::Path::new("out.json"))
        );
        assert!(opts.check);
        assert_eq!(CliOpts::parse_from([]).unwrap(), CliOpts::default());
        assert!(CliOpts::parse_from(["--json".into()]).is_err());
        assert!(CliOpts::parse_from(["--jsno".into()]).is_err());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn fixture_prepares_consistent_shapes() {
        let scale = Scale {
            model_frac: 0.005,
            batch_size: 32,
            eval_batches: 2,
            interconnect_name: "nvlink".to_string(),
            interconnect: Interconnect::nvlink(),
            tuner: TunerConfig::fast(),
        };
        let f = Fixture::prepare(ModelPreset::A, &GpuArch::v100(), &scale);
        assert_eq!(f.tables.len(), f.model.features.len());
        assert_eq!(f.eval.len(), 2);
        assert!(f.history.len() >= 2);
    }

    #[test]
    fn total_latency_none_for_unsupported() {
        let scale = Scale {
            model_frac: 0.005,
            batch_size: 32,
            eval_batches: 1,
            interconnect_name: "nvlink".to_string(),
            interconnect: Interconnect::nvlink(),
            tuner: TunerConfig::fast(),
        };
        let f = Fixture::prepare(ModelPreset::A, &GpuArch::v100(), &scale);
        assert!(
            f.total_latency(&HugeCtrBackend).is_none(),
            "mixed dims unsupported"
        );
        assert!(f.total_latency(&TensorFlowBackend).is_some());
    }
}
