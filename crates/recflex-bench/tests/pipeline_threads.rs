//! Thread-invariance gates for the pipeline tier.
//!
//! The CI `threads-replay` matrix diffs `serving_pipeline --json` output
//! across `RECFLEX_THREADS=1` and `4`; these tests pin the same property
//! in-process under explicitly sized vendored-`rayon` pools (`install`
//! overrides the process-wide `RECFLEX_THREADS` choice, so one test
//! process covers both counts):
//!
//! * a 1-stage pipeline stays byte-identical to the plain sharded tier
//!   at 1 and 4 workers;
//! * a 2-stage budgeted run under a mid-stream ranking stall replays
//!   identically — records, per-stage stats, and the derived
//!   `PipelineReport` — at 1 and 4 workers.

use rayon::ThreadPool;
use recflex_baselines::TorchRecBackend;
use recflex_data::{ModelConfig, ModelPreset, Placement};
use recflex_serve::{
    BatchPolicy, BudgetedPolicy, Fault, FaultKind, FaultPlan, PipelineRuntime, PipelineSpec,
    ResilienceConfig, ServeConfig, ServeError, ShardedServeRuntime, StagePolicy, StageSpec,
    WorkloadSpec,
};
use recflex_sim::{GpuArch, Interconnect};

/// The worker counts the CI matrix replays at.
const POOLS: &[usize] = &[1, 4];

fn stage_config() -> ServeConfig {
    ServeConfig {
        streams: 4,
        policy: BatchPolicy::Split { cap: 256 },
        slo_deadline_us: None,
        closed_loop: false,
        hot_shard_cap: None,
    }
}

fn stage_tier<'a>(
    model: &'a ModelConfig,
    arch: &'a GpuArch,
    shards: usize,
    plan: FaultPlan,
) -> ShardedServeRuntime<'a> {
    ShardedServeRuntime::build_resilient(
        model,
        arch,
        Placement::balance(model, shards),
        stage_config(),
        Interconnect::nvlink(),
        ResilienceConfig {
            plan,
            ..ResilienceConfig::default()
        },
        &vec![1.0; model.features.len()],
        |m| Box::new(TorchRecBackend::compile(m)),
    )
}

#[test]
fn one_stage_pipeline_matches_the_plain_tier_at_one_and_four_workers() -> Result<(), ServeError> {
    let m = ModelPreset::A.scaled(0.01);
    let arch = GpuArch::v100();
    let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 42);
    let run = || {
        let plain = stage_tier(&m, &arch, 2, FaultPlan::none()).serve(&reqs)?;
        let pipe = PipelineRuntime::new(
            PipelineSpec {
                slo_us: 50_000.0,
                stages: vec![StageSpec::retrieval(64, 1.0)],
                policy: StagePolicy::Budgeted(BudgetedPolicy::for_slo(50_000.0)),
                seed: 11,
            },
            vec![stage_tier(&m, &arch, 2, FaultPlan::none())],
        )?;
        let out = pipe.serve(&reqs)?;
        Ok::<_, ServeError>((
            serde_json::to_string(&plain).ok(),
            serde_json::to_string(&out.stage_wave0[0]).ok(),
        ))
    };
    let (seq_plain, seq_pipe) = run()?;
    assert!(seq_plain.is_some(), "serialization must succeed");
    assert_eq!(
        seq_plain, seq_pipe,
        "degenerate pipeline must reproduce the tier byte-for-byte"
    );
    for &n in POOLS {
        let pooled = ThreadPool::new(n).install(run)?;
        assert_eq!(seq_plain, pooled.0, "plain tier diverged at {n} workers");
        assert_eq!(seq_pipe, pooled.1, "pipeline diverged at {n} workers");
    }
    Ok(())
}

#[test]
fn two_stage_budgeted_run_replays_identically_across_thread_counts() -> Result<(), ServeError> {
    let m = ModelPreset::A.scaled(0.01);
    let arch = GpuArch::v100();
    let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 42);
    let span = reqs.last().map_or(0.0, |r| r.arrival_us);
    let slo_us = 8_000.0;
    let rank_fault = FaultPlan::scripted(vec![Fault {
        start_us: 0.2 * span,
        end_us: 0.9 * span,
        kind: FaultKind::Stall { shard: 0 },
    }]);
    let run = || {
        let pipe = PipelineRuntime::new(
            PipelineSpec {
                slo_us,
                stages: vec![
                    StageSpec::retrieval(64, 0.4),
                    StageSpec::ranking(32, 0.6).with_ladder(vec![16]),
                ],
                policy: StagePolicy::Budgeted(BudgetedPolicy::for_slo(slo_us)),
                seed: 11,
            },
            vec![
                stage_tier(&m, &arch, 2, FaultPlan::none()),
                stage_tier(&m, &arch, 2, rank_fault.clone()),
            ],
        )?;
        let out = pipe.serve(&reqs)?;
        Ok::<_, ServeError>((
            out.records.clone(),
            out.stage_stats.clone(),
            serde_json::to_string(&out.report()).ok(),
        ))
    };
    let (seq_records, seq_stats, seq_report) = run()?;
    assert!(seq_report.is_some(), "serialization must succeed");
    assert!(
        seq_records.iter().any(|r| r.degraded()),
        "the stall must actually degrade answers, or the replay is vacuous"
    );
    for &n in POOLS {
        let (records, stats, report) = ThreadPool::new(n).install(run)?;
        assert_eq!(seq_records, records, "records diverged at {n} workers");
        assert_eq!(seq_stats, stats, "stage stats diverged at {n} workers");
        assert_eq!(seq_report, report, "report diverged at {n} workers");
    }
    Ok(())
}
