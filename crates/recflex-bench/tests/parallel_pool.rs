//! Property tests for the vendored work-stealing `rayon` pool.
//!
//! The pool's contract is stronger than upstream rayon's: every parallel
//! combinator must produce output **bit-identical** to the sequential
//! path at any thread count, because the CI threads-replay matrix diffs
//! experiment JSON across `RECFLEX_THREADS=1` and `4`. These properties
//! drive the pool through randomized shapes and sizes under explicitly
//! sized [`rayon::ThreadPool`]s (1, 2 and 8 workers — `install` overrides
//! the process-wide `RECFLEX_THREADS` choice, so one test process covers
//! all three) and assert:
//!
//! * `collect` over map/enumerate/zip chains is byte-identical across
//!   thread counts, including non-associative float accumulations where
//!   an unordered reduction would drift;
//! * a panicking task propagates its payload to the caller without
//!   deadlocking the pool, and the pool stays usable afterwards;
//! * nested `join` recursion at least four frames deep computes the same
//!   result on workers as inline;
//! * `par_chunks_mut` writes land disjointly — every element is written
//!   exactly once by the chunk that owns it.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::ThreadPool;

/// Worker counts every property sweeps. 1 exercises the inline
/// (sequential) path, 2 the minimal stealing pool, 8 an oversubscribed
/// pool where chunks outnumber any plausible core count.
const POOLS: &[usize] = &[1, 2, 8];

/// Run `work` under an `n`-worker pool for each `n` in [`POOLS`] and
/// assert every outcome equals the plain sequential result.
fn assert_pool_invariant<T: PartialEq + std::fmt::Debug>(work: &(dyn Fn() -> T + Sync)) {
    let sequential = work();
    for &n in POOLS {
        let pooled = ThreadPool::new(n).install(work);
        assert_eq!(sequential, pooled, "diverged at {n} workers");
    }
}

proptest! {
    #[test]
    fn collect_is_bit_identical_across_thread_counts(
        len in 0usize..600,
        seed in 0u64..u64::MAX,
    ) {
        // Non-associative float chain: reassociated reduction would
        // change low-order bits, so bit-equality proves index order.
        let input: Vec<f64> = (0..len)
            .map(|i| (seed ^ i as u64) as f64 * 1e-3 + 0.1)
            .collect();
        assert_pool_invariant(&|| {
            let mapped: Vec<f64> = input
                .par_iter()
                .enumerate()
                .map(|(i, &x)| (x * 1.000_001f64).sin() + i as f64 * 1e-9)
                .collect();
            let bits: Vec<u64> = mapped.iter().map(|v| v.to_bits()).collect();
            let total: f64 = input.par_iter().map(|&x| x * 0.999_999).sum();
            (bits, total.to_bits())
        });
    }

    #[test]
    fn zip_truncates_and_stays_ordered(
        a_len in 0usize..300,
        b_len in 0usize..300,
    ) {
        let a: Vec<u64> = (0..a_len as u64).map(|i| i * 3 + 1).collect();
        let b: Vec<u64> = (0..b_len as u64).map(|i| i * 7 + 2).collect();
        assert_pool_invariant(&|| {
            let pooled: Vec<u64> = a
                .par_iter()
                .zip(b.par_iter())
                .map(|(&x, &y)| x.wrapping_mul(y) ^ (x + y))
                .collect();
            pooled
        });
    }

    #[test]
    fn panic_propagates_without_deadlock(
        len in 10usize..400,
        victim_frac in 0.0f64..1.0,
    ) {
        let victim = (len as f64 * victim_frac) as usize;
        for &n in POOLS {
            let pool = ThreadPool::new(n);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.install(|| {
                    (0..len)
                        .into_par_iter()
                        .map(|i| {
                            if i == victim {
                                panic!("victim {i}");
                            }
                            i * 2
                        })
                        .collect::<Vec<usize>>()
                })
            }));
            let payload = caught.expect_err("panic must reach the caller");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .expect("string payload");
            prop_assert_eq!(msg, format!("victim {}", victim));
            // The pool must survive a panicking scope: the next install
            // on the same pool completes and is still deterministic.
            let after: Vec<usize> =
                pool.install(|| (0..len).into_par_iter().map(|i| i + 1).collect());
            prop_assert_eq!(after.len(), len);
            prop_assert_eq!(after[len - 1], len);
        }
    }

    #[test]
    fn nested_join_four_deep_matches_inline(n in 12u64..18) {
        // Binary recursion on `join`: depth from n=12 is >= 4 frames of
        // nested parallelism, so workers must help-wait instead of
        // blocking or the pool deadlocks at 1-2 workers.
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = rayon::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let expected = {
            fn seq(n: u64) -> u64 {
                if n < 2 { n } else { seq(n - 1) + seq(n - 2) }
            }
            seq(n)
        };
        assert_pool_invariant(&|| fib(n));
        prop_assert_eq!(fib(n), expected);
    }

    #[test]
    fn par_chunks_mut_writes_are_disjoint(
        len in 1usize..800,
        chunk in 1usize..64,
    ) {
        assert_pool_invariant(&|| {
            // Each element starts at 0 and is incremented once by the
            // chunk owning it, tagged with the chunk index. Any overlap
            // (double write) or gap (missed write) breaks the expected
            // pattern; any cross-chunk race would corrupt the tag.
            let mut data = vec![0u64; len];
            data.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, slice)| {
                    for (off, slot) in slice.iter_mut().enumerate() {
                        *slot += 1 + ((ci * chunk + off) as u64) * 2;
                    }
                });
            data
        });
        // Re-check the pattern itself sequentially.
        let mut data = vec![0u64; len];
        data.par_chunks_mut(chunk).enumerate().for_each(|(ci, slice)| {
            for (off, slot) in slice.iter_mut().enumerate() {
                *slot += 1 + ((ci * chunk + off) as u64) * 2;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(v, 1 + i as u64 * 2, "element {} written wrongly", i);
        }
    }
}

/// `Result` collect must surface the lowest-index error at any thread
/// count — not whichever failing chunk finished first.
#[test]
fn result_collect_error_is_lowest_index_everywhere() {
    let failures = [7usize, 131, 132, 499];
    for &n in POOLS {
        let got: Result<Vec<usize>, String> = ThreadPool::new(n).install(|| {
            (0..512usize)
                .into_par_iter()
                .map(|i| {
                    if failures.contains(&i) {
                        Err(format!("bad {i}"))
                    } else {
                        Ok(i)
                    }
                })
                .collect()
        });
        assert_eq!(got, Err("bad 7".to_string()), "at {n} workers");
    }
}
