//! # recflex-compiler — the heterogeneous schedule fusion compiler
//!
//! The second half of RecFlex (paper Section IV-B): given one schedule per
//! feature, build the single fused kernel that processes every feature with
//! its own schedule, and decide at *runtime* which blocks serve which
//! feature.
//!
//! * [`FusedKernelObject`] — the compiled artefact: deduplicated schedule
//!   table (`schedule_map`, features with identical optimal schedules share
//!   code, paper Figure 8), argument-offset table, shared-memory union
//!   sizing, the `__launch_bounds__` resource union and the occupancy
//!   control decision.
//! * [`TaskMap`] — the `d_task_map` / `d_blocks_map` pair: for every block,
//!   `(feature_idx, rel_bidx)`. Built per batch by
//!   [`TaskMap::runtime`] from the host-side workload analysis (the
//!   paper's < 0.1 %-overhead CPU pass), or statically from historical
//!   statistics by [`TaskMap::static_map`] (the Figure 13 ablation):
//!   under-provisioned blocks loop over several logical blocks' work,
//!   over-provisioned ones idle.
//! * [`BoundFusedKernel`] — a fused kernel bound to a live batch; it
//!   implements [`recflex_sim::SimKernel`] for timing and executes
//!   functionally into a [`recflex_embedding::FusedOutput`].
//! * [`cuda_source`][FusedKernelObject::cuda_source] — pretty-prints the
//!   CUDA translation unit of Figure 8 (device functions, smem union,
//!   if-else dispatch).

pub mod args;
pub mod cuda;
pub mod fused;
pub mod thread_map;
pub mod warp_map;

pub use args::ArgPack;
pub use fused::{BoundFusedKernel, DispatchMode, FusedKernelObject, FusedSpec};
pub use thread_map::{MappingStrategy, TaskMap};
pub use warp_map::{WarpMappedKernel, WarpTaskMap};
