//! Thread mapping: which blocks serve which feature.
//!
//! Heterogeneous schedules need different block counts per feature, and the
//! counts depend on the live workload — so RecFlex computes the mapping on
//! the host per batch (paper Section IV-B "Runtime thread mapping with
//! host-side workload analysis"). The static alternatives the paper ablates
//! in Figure 13 (allocate by average / maximum historical workload) are
//! implemented here too.

use recflex_embedding::FeatureWorkload;
use recflex_schedules::ScheduleInstance;

/// How block allocation reacts to the live workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingStrategy {
    /// Recompute the task map from each batch's actual workload (RecFlex).
    Runtime,
    /// Fix per-feature blocks to the *average* historical requirement;
    /// under-provisioned blocks serialize extra rounds of work.
    StaticAverage,
    /// Fix per-feature blocks to the *maximum* historical requirement;
    /// over-provisioned blocks idle.
    StaticMax,
}

/// The `d_task_map` / `d_blocks_map` pair of the fused kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMap {
    /// Per block: `(feature_idx, rel_bidx)` — Figure 8 line 9.
    pub entries: Vec<(u32, u32)>,
    /// Per feature: blocks allocated — Figure 8 line 10 (`d_blocks_map`).
    pub blocks_per_feature: Vec<u32>,
}

impl TaskMap {
    /// Build the runtime mapping: exactly `required_blocks` per feature
    /// from the live workload analysis. One linear pass, mirroring the
    /// cheap CPU-side analysis the paper hides in input preprocessing.
    pub fn runtime(schedules: &[ScheduleInstance], workloads: &[FeatureWorkload]) -> Self {
        assert_eq!(schedules.len(), workloads.len());
        let blocks_per_feature: Vec<u32> = schedules
            .iter()
            .zip(workloads)
            .map(|(s, w)| s.required_blocks(w))
            .collect();
        Self::from_counts(blocks_per_feature)
    }

    /// Build a static mapping from fixed per-feature block counts
    /// (historical averages or maxima).
    pub fn static_map(counts: Vec<u32>) -> Self {
        Self::from_counts(counts.into_iter().map(|c| c.max(1)).collect())
    }

    fn from_counts(blocks_per_feature: Vec<u32>) -> Self {
        let total: u32 = blocks_per_feature.iter().sum();
        let mut entries = Vec::with_capacity(total as usize);
        for (f, &nb) in blocks_per_feature.iter().enumerate() {
            for rel in 0..nb {
                entries.push((f as u32, rel));
            }
        }
        TaskMap {
            entries,
            blocks_per_feature,
        }
    }

    /// Grid size of the fused kernel.
    pub fn grid_blocks(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Validate structural invariants (used by tests and debug builds):
    /// every feature owns a contiguous run of `blocks_per_feature[f]`
    /// blocks with relative indices `0..n`.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![0u32; self.blocks_per_feature.len()];
        for &(f, rel) in &self.entries {
            let f = f as usize;
            if f >= seen.len() {
                return Err(format!("feature index {f} out of range"));
            }
            if rel != seen[f] {
                return Err(format!("feature {f}: rel_bidx {rel}, expected {}", seen[f]));
            }
            seen[f] += 1;
        }
        for (f, (&got, &want)) in seen.iter().zip(&self.blocks_per_feature).enumerate() {
            if got != want {
                return Err(format!("feature {f}: {got} blocks mapped, {want} declared"));
            }
        }
        Ok(())
    }
}

/// Compute static per-feature block counts from historical workloads.
///
/// `history` is indexed `[batch][feature]`. Returns, per feature, the mean
/// (for [`MappingStrategy::StaticAverage`]) or max (for
/// [`MappingStrategy::StaticMax`]) of the blocks the schedule would have
/// needed on each historical batch.
pub fn static_counts(
    schedules: &[ScheduleInstance],
    history: &[Vec<FeatureWorkload>],
    strategy: MappingStrategy,
) -> Vec<u32> {
    assert!(!history.is_empty(), "static mapping needs history");
    let nf = schedules.len();
    let mut counts = vec![0u32; nf];
    for (f, sched) in schedules.iter().enumerate() {
        let per_batch: Vec<u32> = history
            .iter()
            .map(|ws| sched.required_blocks(&ws[f]))
            .collect();
        counts[f] = match strategy {
            MappingStrategy::StaticAverage => {
                let sum: u64 = per_batch.iter().map(|&c| c as u64).sum();
                ((sum as f64 / per_batch.len() as f64).round() as u32).max(1)
            }
            MappingStrategy::StaticMax => per_batch.iter().copied().max().unwrap_or(1).max(1),
            MappingStrategy::Runtime => {
                unreachable!("runtime mapping does not use static counts")
            }
        };
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Batch, ModelPreset};
    use recflex_embedding::analyze_batch;
    use recflex_schedules::enumerate_candidates;

    fn setup() -> (Vec<ScheduleInstance>, Vec<FeatureWorkload>) {
        let m = ModelPreset::A.scaled(0.01);
        let batch = Batch::generate(&m, 64, 3);
        let ws = analyze_batch(&m, &batch);
        let schedules: Vec<ScheduleInstance> = m
            .features
            .iter()
            .enumerate()
            .map(|(i, f)| enumerate_candidates(i, f).unwrap().candidates[0])
            .collect();
        (schedules, ws)
    }

    #[test]
    fn runtime_map_is_exact_and_valid() {
        let (schedules, ws) = setup();
        let map = TaskMap::runtime(&schedules, &ws);
        map.validate().unwrap();
        for (f, s) in schedules.iter().enumerate() {
            assert_eq!(map.blocks_per_feature[f], s.required_blocks(&ws[f]));
        }
        assert_eq!(map.grid_blocks() as usize, map.entries.len());
    }

    #[test]
    fn static_counts_avg_and_max() {
        let (schedules, _) = setup();
        let m = ModelPreset::A.scaled(0.01);
        let history: Vec<Vec<FeatureWorkload>> = (0..4)
            .map(|i| analyze_batch(&m, &Batch::generate(&m, 32 + i * 32, 100 + i as u64)))
            .collect();
        let avg = static_counts(&schedules, &history, MappingStrategy::StaticAverage);
        let max = static_counts(&schedules, &history, MappingStrategy::StaticMax);
        for f in 0..schedules.len() {
            assert!(avg[f] <= max[f], "avg must not exceed max for feature {f}");
            assert!(avg[f] >= 1);
        }
        TaskMap::static_map(max).validate().unwrap();
    }

    #[test]
    fn validate_rejects_corruption() {
        let (schedules, ws) = setup();
        let mut map = TaskMap::runtime(&schedules, &ws);
        map.entries[0].1 = 99;
        assert!(map.validate().is_err());
        let mut map2 = TaskMap::runtime(&schedules, &ws);
        map2.blocks_per_feature[0] += 1;
        assert!(map2.validate().is_err());
    }

    #[test]
    fn map_deterministic() {
        let (schedules, ws) = setup();
        assert_eq!(
            TaskMap::runtime(&schedules, &ws),
            TaskMap::runtime(&schedules, &ws)
        );
    }
}
