//! The fused kernel object and its batch-bound executable form.

use std::collections::HashMap;

use rayon::prelude::*;
use recflex_data::{Batch, ModelConfig};
use recflex_embedding::{analyze_batch, FeatureWorkload, FusedOutput, TableSet};
use recflex_schedules::ScheduleInstance;
use recflex_sim::{
    launch, BlockProfile, BlockResources, GpuArch, LaunchConfig, LaunchReport, ProfileCtx,
    SimKernel,
};

use crate::thread_map::{static_counts, MappingStrategy, TaskMap};

/// How the fused kernel dispatches blocks to schedules (paper Section IV-B
/// "If-else branches vs function pointer array").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Block-level if-else chain; every schedule inlines, overhead is
    /// negligible even with thousands of branches. The paper's choice.
    #[default]
    IfElse,
    /// Indirect call through a `__device__` function-pointer array —
    /// prevents inlining and costs ~45 % on issue-bound kernels; kept for
    /// the ablation.
    FnPtrArray,
}

/// Compile-time inputs of the fusion compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedSpec {
    /// One selected schedule per feature (the tuner's output `s`).
    pub schedules: Vec<ScheduleInstance>,
    /// Explicit occupancy control (blocks/SM), the global-stage decision.
    pub occupancy_target: Option<u32>,
    /// Dispatch mechanism.
    pub dispatch: DispatchMode,
}

impl FusedSpec {
    /// Spec with runtime defaults (if-else dispatch, natural occupancy).
    pub fn new(schedules: Vec<ScheduleInstance>) -> Self {
        FusedSpec {
            schedules,
            occupancy_target: None,
            dispatch: DispatchMode::IfElse,
        }
    }
}

/// The compiled fused kernel: schedule dedup table, resource union and
/// launch parameters. Independent of any particular batch.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedKernelObject {
    /// The spec this object was compiled from.
    pub spec: FusedSpec,
    /// `feature_idx → unique schedule id` (Figure 8's `schedule_map`).
    /// Features with identical schedules share one device function,
    /// shrinking code size and compile time.
    pub schedule_map: Vec<usize>,
    /// The deduplicated schedules, in first-appearance order.
    pub unique: Vec<ScheduleInstance>,
    /// `__launch_bounds__` resource union: max threads, max registers,
    /// max shared memory (the smem union of Figure 8 lines 12–15).
    pub resources: BlockResources,
}

impl FusedKernelObject {
    /// Compile a spec: deduplicate schedules and take the resource union.
    pub fn compile(spec: FusedSpec) -> Self {
        assert!(!spec.schedules.is_empty(), "cannot fuse zero features");
        let mut unique: Vec<ScheduleInstance> = Vec::new();
        let mut by_inst: HashMap<ScheduleInstance, usize> = HashMap::new();
        let mut schedule_map = Vec::with_capacity(spec.schedules.len());
        for s in &spec.schedules {
            let id = *by_inst.entry(*s).or_insert_with(|| {
                unique.push(*s);
                unique.len() - 1
            });
            schedule_map.push(id);
        }
        let mut resources = unique
            .iter()
            .map(|s| s.resources())
            .reduce(|a, b| a.union(&b))
            .expect("at least one schedule");
        if spec.dispatch == DispatchMode::FnPtrArray {
            // Indirect calls block inlining: every schedule pays the ABI
            // register footprint, constraining the whole kernel's occupancy
            // (Section IV-B's 45 % penalty has two halves — this one and
            // the per-call issue overhead added in `profile_block`).
            resources.regs_per_thread = (resources.regs_per_thread + 26).min(255);
        }
        FusedKernelObject {
            spec,
            schedule_map,
            unique,
            resources,
        }
    }

    /// The launch configuration implied by the compile decisions.
    pub fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            occupancy_target: self.spec.occupancy_target,
            extra_l2_pressure: 0,
            issue_multiplier: match self.spec.dispatch {
                DispatchMode::IfElse => 1.0,
                DispatchMode::FnPtrArray => 1.45,
            },
        }
    }

    /// Bind to a live batch with **runtime thread mapping** (the RecFlex
    /// path): analyze the workload host-side, build the exact task map.
    pub fn bind<'a>(
        &'a self,
        model: &'a ModelConfig,
        tables: &'a TableSet,
        batch: &'a Batch,
    ) -> BoundFusedKernel<'a> {
        let workloads = analyze_batch(model, batch);
        let task_map = TaskMap::runtime(&self.spec.schedules, &workloads);
        BoundFusedKernel {
            obj: self,
            model,
            tables,
            batch,
            workloads,
            task_map,
        }
    }

    /// Bind with UVM-resident tables: lookups missing `plan`'s hot rows
    /// travel over the host interconnect (paper Section VII's hot-embedding
    /// cache composition).
    pub fn bind_uvm<'a>(
        &'a self,
        model: &'a ModelConfig,
        tables: &'a TableSet,
        batch: &'a Batch,
        plan: &recflex_embedding::CachePlan,
    ) -> BoundFusedKernel<'a> {
        let workloads: Vec<FeatureWorkload> = analyze_batch(model, batch)
            .into_iter()
            .enumerate()
            .map(|(f, w)| {
                let cold = plan.cold_fraction(f, &batch.features[f]);
                w.with_uvm_cold_frac(cold)
            })
            .collect();
        let task_map = TaskMap::runtime(&self.spec.schedules, &workloads);
        BoundFusedKernel {
            obj: self,
            model,
            tables,
            batch,
            workloads,
            task_map,
        }
    }

    /// Bind with a **static** mapping computed from historical workloads
    /// (the Figure 13 ablation). Allocated blocks serialize extra rounds
    /// when the live batch needs more; surplus blocks idle.
    pub fn bind_static<'a>(
        &'a self,
        model: &'a ModelConfig,
        tables: &'a TableSet,
        batch: &'a Batch,
        history: &[Vec<FeatureWorkload>],
        strategy: MappingStrategy,
    ) -> BoundFusedKernel<'a> {
        let workloads = analyze_batch(model, batch);
        let task_map = match strategy {
            MappingStrategy::Runtime => TaskMap::runtime(&self.spec.schedules, &workloads),
            s => TaskMap::static_map(static_counts(&self.spec.schedules, history, s)),
        };
        BoundFusedKernel {
            obj: self,
            model,
            tables,
            batch,
            workloads,
            task_map,
        }
    }

    /// Run one batch end to end: simulate the launch and execute
    /// functionally.
    pub fn run(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
        batch: &Batch,
        arch: &GpuArch,
    ) -> Result<(FusedOutput, LaunchReport), recflex_sim::launch::LaunchError> {
        let bound = self.bind(model, tables, batch);
        let report = launch(&bound, arch, &self.launch_config())?;
        Ok((bound.execute(), report))
    }
}

/// A fused kernel bound to one batch: implements [`SimKernel`] for timing
/// and executes functionally.
pub struct BoundFusedKernel<'a> {
    /// The compiled kernel.
    pub obj: &'a FusedKernelObject,
    /// The model (feature specs).
    pub model: &'a ModelConfig,
    /// Embedding tables.
    pub tables: &'a TableSet,
    /// The live batch.
    pub batch: &'a Batch,
    /// Host-side workload analysis of the batch.
    pub workloads: Vec<FeatureWorkload>,
    /// The thread mapping in force.
    pub task_map: TaskMap,
}

impl BoundFusedKernel<'_> {
    /// Functional execution: every feature pooled by its schedule, in
    /// parallel across features (disjoint output regions).
    pub fn execute(&self) -> FusedOutput {
        let mut out = FusedOutput::zeros(self.model, self.batch.batch_size);
        {
            let parts = out.split_features_mut();
            parts.into_par_iter().enumerate().for_each(|(f, dst)| {
                self.obj.spec.schedules[f].execute(
                    self.tables.table(f),
                    &self.batch.features[f],
                    dst,
                );
            });
        }
        out
    }
}

impl SimKernel for BoundFusedKernel<'_> {
    fn name(&self) -> &str {
        "recflex_fused"
    }

    fn grid_blocks(&self) -> u32 {
        self.task_map.grid_blocks()
    }

    fn resources(&self) -> BlockResources {
        self.obj.resources
    }

    fn profile_block(&self, block_idx: u32, ctx: &ProfileCtx) -> BlockProfile {
        let (f, rel) = self.task_map.entries[block_idx as usize];
        let f = f as usize;
        let sched = &self.obj.spec.schedules[f];
        let w = &self.workloads[f];
        let fb = &self.batch.features[f];
        let allocated = self.task_map.blocks_per_feature[f];
        let required = sched.required_blocks(w);
        if rel >= required {
            // Over-provisioned static mapping: this block finds no work.
            return BlockProfile::idle();
        }
        // Under-provisioned static mapping: block `rel` also executes the
        // work of logical blocks rel + allocated, rel + 2·allocated, …
        let mut p = sched.block_profile(fb, w, rel, ctx.reg_cap);
        let mut logical = rel + allocated;
        while logical < required {
            let extra = sched.block_profile(fb, w, logical, ctx.reg_cap);
            p.accumulate(&extra);
            logical += allocated;
        }
        match self.obj.spec.dispatch {
            // If-else dispatch: one comparison per preceding unique
            // schedule; inlined, so the cost is a handful of issue slots
            // (the paper measured it negligible even with thousands of
            // branches).
            DispatchMode::IfElse => p.issue_cycles += self.obj.schedule_map[f] as f64 * 0.05,
            // Function-pointer dispatch: call setup/teardown per block,
            // spilled ABI state, and no cross-call load reordering.
            DispatchMode::FnPtrArray => {
                p.issue_cycles += 60.0;
                p.mlp = (p.mlp * 0.6).max(1.0);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{Dataset, ModelPreset};
    use recflex_embedding::reference_model_output;
    use recflex_schedules::enumerate_candidates;

    fn compile_first_candidates(model: &ModelConfig) -> FusedKernelObject {
        let schedules: Vec<ScheduleInstance> = model
            .features
            .iter()
            .enumerate()
            .map(|(i, f)| enumerate_candidates(i, f).unwrap().candidates[0])
            .collect();
        FusedKernelObject::compile(FusedSpec::new(schedules))
    }

    #[test]
    fn dedup_shares_identical_schedules() {
        let m = ModelPreset::D.scaled(0.02); // uniform dim 8 → heavy sharing
        let obj = compile_first_candidates(&m);
        assert!(
            obj.unique.len() < m.features.len(),
            "uniform model must dedup"
        );
        assert_eq!(obj.schedule_map.len(), m.features.len());
        for (f, &id) in obj.schedule_map.iter().enumerate() {
            assert_eq!(obj.unique[id], obj.spec.schedules[f]);
        }
    }

    #[test]
    fn resource_union_bounds_every_schedule() {
        let m = ModelPreset::A.scaled(0.02);
        let obj = compile_first_candidates(&m);
        for s in &obj.unique {
            let r = s.resources();
            assert!(r.threads_per_block <= obj.resources.threads_per_block);
            assert!(r.regs_per_thread <= obj.resources.regs_per_thread);
            assert!(r.smem_per_block <= obj.resources.smem_per_block);
        }
    }

    #[test]
    fn fused_output_matches_reference() {
        let m = ModelPreset::A.scaled(0.02);
        let tables = TableSet::for_model(&m);
        let batch = Batch::generate(&m, 48, 17);
        let obj = compile_first_candidates(&m);
        let (out, report) = obj.run(&m, &tables, &batch, &GpuArch::v100()).unwrap();
        let golden = reference_model_output(&m, &tables, &batch);
        assert_eq!(out.max_abs_diff(&golden), 0.0);
        assert!(report.latency_us > 0.0);
    }

    #[test]
    fn runtime_binding_profiles_every_block_non_idle() {
        let m = ModelPreset::C.scaled(0.02);
        let tables = TableSet::for_model(&m);
        let batch = Batch::generate(&m, 64, 7);
        let obj = compile_first_candidates(&m);
        let bound = obj.bind(&m, &tables, &batch);
        let ctx = ProfileCtx::default();
        for b in 0..bound.grid_blocks() {
            let p = bound.profile_block(b, &ctx);
            assert!(
                !p.is_idle(),
                "runtime mapping never over-provisions (block {b})"
            );
        }
    }

    #[test]
    fn static_average_mapping_serializes_or_idles() {
        let m = ModelPreset::C.scaled(0.02);
        let tables = TableSet::for_model(&m);
        let ds = Dataset::synthesize(&m, 3, 64, 5);
        let history: Vec<Vec<FeatureWorkload>> =
            ds.batches().iter().map(|b| analyze_batch(&m, b)).collect();
        let big = Batch::generate(&m, 256, 99); // larger than history
        let obj = compile_first_candidates(&m);
        let rt = obj.bind(&m, &tables, &big);
        let avg = obj.bind_static(&m, &tables, &big, &history, MappingStrategy::StaticAverage);
        assert!(
            avg.grid_blocks() < rt.grid_blocks(),
            "avg mapping under-provisions"
        );
        // Total work must be conserved: the serialized blocks pick it up.
        let ctx = ProfileCtx::default();
        let rt_flops: u64 = (0..rt.grid_blocks())
            .map(|b| rt.profile_block(b, &ctx).flops)
            .sum();
        let avg_flops: u64 = (0..avg.grid_blocks())
            .map(|b| avg.profile_block(b, &ctx).flops)
            .sum();
        assert_eq!(
            rt_flops, avg_flops,
            "work is conserved under static mapping"
        );
    }

    #[test]
    fn static_max_mapping_idles_on_small_batches() {
        let m = ModelPreset::C.scaled(0.02);
        let tables = TableSet::for_model(&m);
        let ds = Dataset::synthesize(&m, 3, 256, 5);
        let history: Vec<Vec<FeatureWorkload>> =
            ds.batches().iter().map(|b| analyze_batch(&m, b)).collect();
        let small = Batch::generate(&m, 32, 1);
        let obj = compile_first_candidates(&m);
        let bound = obj.bind_static(&m, &tables, &small, &history, MappingStrategy::StaticMax);
        let ctx = ProfileCtx::default();
        let idle = (0..bound.grid_blocks())
            .filter(|&b| bound.profile_block(b, &ctx).is_idle())
            .count();
        assert!(
            idle > 0,
            "max mapping must leave idle blocks on small batches"
        );
    }

    #[test]
    fn fnptr_dispatch_raises_issue_multiplier() {
        let m = ModelPreset::A.scaled(0.01);
        let mut obj = compile_first_candidates(&m);
        assert_eq!(obj.launch_config().issue_multiplier, 1.0);
        obj.spec.dispatch = DispatchMode::FnPtrArray;
        assert!((obj.launch_config().issue_multiplier - 1.45).abs() < 1e-12);
    }

    #[test]
    fn occupancy_target_propagates() {
        let m = ModelPreset::A.scaled(0.01);
        let mut obj = compile_first_candidates(&m);
        obj.spec.occupancy_target = Some(4);
        assert_eq!(obj.launch_config().occupancy_target, Some(4));
        let tables = TableSet::for_model(&m);
        let batch = Batch::generate(&m, 32, 2);
        let bound = obj.bind(&m, &tables, &batch);
        let report = launch(&bound, &GpuArch::v100(), &obj.launch_config()).unwrap();
        assert!(report.occupancy.blocks_per_sm <= 4);
    }
}
