//! Warp-granularity thread mapping (paper Section IV-B).
//!
//! RecFlex chooses the thread *block* as its mapping unit for convenience
//! (separate shared memories, block-level intrinsics) but notes the design
//! "can be extended to other thread group structures like warps". This
//! module implements that extension for schedules that need no block-wide
//! shared memory or synchronization: warp *tasks* — one per
//! `samples_per_warp` samples of one feature — are packed densely into
//! physical blocks, so a feature needing 2.2 blocks' worth of warps no
//! longer rounds up to 3 whole blocks. The trade-offs are real on both
//! sides: finer packing (less fragmentation for small features, better for
//! small batches) versus one task-map read per *warp* instead of per block.

use recflex_data::{Batch, ModelConfig};
use recflex_embedding::{analyze_batch, FeatureWorkload, TableSet};
use recflex_schedules::ScheduleInstance;
use recflex_sim::{BlockProfile, BlockResources, ProfileCtx, SimKernel};

/// The warp-granularity task map: one entry per warp task.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpTaskMap {
    /// Per warp task: `(feature_idx, rel_widx)`.
    pub entries: Vec<(u32, u32)>,
    /// Warp tasks allocated per feature.
    pub warps_per_feature: Vec<u32>,
}

impl WarpTaskMap {
    /// Build the runtime warp map from the live workload analysis.
    ///
    /// Returns `None` if any schedule cannot be warp-mapped (block-wide
    /// shared memory / synchronization).
    pub fn runtime(schedules: &[ScheduleInstance], workloads: &[FeatureWorkload]) -> Option<Self> {
        if !schedules.iter().all(|s| s.supports_warp_mapping()) {
            return None;
        }
        let warps_per_feature: Vec<u32> = schedules
            .iter()
            .zip(workloads)
            .map(|(s, w)| s.required_warps(w))
            .collect();
        let total: u32 = warps_per_feature.iter().sum();
        let mut entries = Vec::with_capacity(total as usize);
        for (f, &n) in warps_per_feature.iter().enumerate() {
            for rel in 0..n {
                entries.push((f as u32, rel));
            }
        }
        Some(WarpTaskMap {
            entries,
            warps_per_feature,
        })
    }

    /// Total warp tasks.
    pub fn total_warps(&self) -> u32 {
        self.entries.len() as u32
    }
}

/// A fused kernel dispatched at warp granularity, bound to one batch.
pub struct WarpMappedKernel<'a> {
    /// One schedule per feature (all warp-mappable).
    pub schedules: &'a [ScheduleInstance],
    /// The live batch.
    pub batch: &'a Batch,
    /// Its workload analysis.
    pub workloads: Vec<FeatureWorkload>,
    /// The warp task map.
    pub map: WarpTaskMap,
    /// Warps per physical block.
    pub warps_per_block: u32,
    resources: BlockResources,
}

impl<'a> WarpMappedKernel<'a> {
    /// Bind `schedules` to a batch with runtime warp mapping. Returns
    /// `None` if any schedule is not warp-mappable.
    pub fn bind(
        schedules: &'a [ScheduleInstance],
        model: &ModelConfig,
        batch: &'a Batch,
    ) -> Option<Self> {
        let workloads = analyze_batch(model, batch);
        let map = WarpTaskMap::runtime(schedules, &workloads)?;
        let threads = schedules.iter().map(|s| s.params.threads_per_block).max()?;
        let regs = schedules.iter().map(|s| s.natural_regs()).max()?;
        let warps_per_block = (threads / 32).max(1);
        Some(WarpMappedKernel {
            schedules,
            batch,
            workloads,
            map,
            warps_per_block,
            resources: BlockResources::new(threads, regs, 0),
        })
    }

    /// Functional execution (identical semantics to block mapping).
    pub fn execute(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
    ) -> recflex_embedding::FusedOutput {
        let mut out = recflex_embedding::FusedOutput::zeros(model, self.batch.batch_size);
        {
            let parts = out.split_features_mut();
            for (f, dst) in parts.into_iter().enumerate() {
                self.schedules[f].execute(tables.table(f), &self.batch.features[f], dst);
            }
        }
        out
    }
}

impl SimKernel for WarpMappedKernel<'_> {
    fn name(&self) -> &str {
        "recflex_fused_warp_unit"
    }

    fn grid_blocks(&self) -> u32 {
        self.map.total_warps().div_ceil(self.warps_per_block).max(1)
    }

    fn resources(&self) -> BlockResources {
        self.resources
    }

    fn profile_block(&self, block_idx: u32, ctx: &ProfileCtx) -> BlockProfile {
        // The block hosts `warps_per_block` consecutive warp tasks, which
        // execute concurrently: traffic sums, the chain is the slowest's.
        let lo = block_idx * self.warps_per_block;
        let hi = (lo + self.warps_per_block).min(self.map.total_warps());
        let mut merged: Option<BlockProfile> = None;
        for t in lo..hi {
            let (f, rel) = self.map.entries[t as usize];
            let f = f as usize;
            let p = self.schedules[f].warp_profile(
                &self.batch.features[f],
                &self.workloads[f],
                rel,
                ctx.reg_cap,
            );
            match merged.as_mut() {
                None => merged = Some(p),
                Some(m) => m.merge_concurrent(&p),
            }
        }
        merged.unwrap_or_else(BlockProfile::idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::{FusedKernelObject, FusedSpec};
    use recflex_data::{ModelPreset, PoolingDist};
    use recflex_embedding::reference_model_output;
    use recflex_schedules::{ScheduleKind, ScheduleParams};
    use recflex_sim::{launch, GpuArch, LaunchConfig};

    fn warp_schedules(model: &ModelConfig) -> Vec<ScheduleInstance> {
        model
            .features
            .iter()
            .map(|f| ScheduleInstance {
                kind: ScheduleKind::SamplePerWarp,
                params: ScheduleParams {
                    threads_per_block: 256,
                    group_size: 32,
                    vector_width: 2.min(f.emb_dim),
                    unroll: 1,
                    stage_rows: 0,
                },
                emb_dim: f.emb_dim,
            })
            .collect()
    }

    #[test]
    fn warp_map_partitions_all_tasks() {
        let m = ModelPreset::A.scaled(0.01);
        let b = Batch::generate(&m, 48, 3);
        let schedules = warp_schedules(&m);
        let k = WarpMappedKernel::bind(&schedules, &m, &b).unwrap();
        let total: u32 = k.map.warps_per_feature.iter().sum();
        assert_eq!(total, k.map.total_warps());
        for (f, s) in schedules.iter().enumerate() {
            assert_eq!(
                k.map.warps_per_feature[f],
                s.required_warps(&k.workloads[f])
            );
        }
    }

    #[test]
    fn block_schedules_are_rejected() {
        let m = ModelPreset::A.scaled(0.01);
        let b = Batch::generate(&m, 48, 3);
        let mut schedules = warp_schedules(&m);
        schedules[0] = ScheduleInstance {
            kind: ScheduleKind::SamplePerBlock,
            params: schedules[0].params,
            emb_dim: schedules[0].emb_dim,
        };
        assert!(WarpMappedKernel::bind(&schedules, &m, &b).is_none());
    }

    #[test]
    fn warp_unit_packs_tighter_than_block_unit() {
        // Many features whose warp demand is a fraction of one block.
        let m = ModelPreset::B.scaled(0.02); // mostly one-hot: tiny features
        let b = Batch::generate(&m, 24, 3); // 24 samples → 24 warps/feature? no: spw 1 → 24
        let schedules = warp_schedules(&m);
        let warp_kernel = WarpMappedKernel::bind(&schedules, &m, &b).unwrap();
        let block_obj = FusedKernelObject::compile(FusedSpec::new(schedules.clone()));
        let tables = TableSet::for_model(&m);
        let block_bound = block_obj.bind(&m, &tables, &b);
        assert!(
            warp_kernel.grid_blocks() <= recflex_sim::SimKernel::grid_blocks(&block_bound),
            "warp packing must not fragment more than block packing"
        );
    }

    #[test]
    fn work_is_conserved_across_units() {
        let m = ModelPreset::A.scaled(0.01);
        let b = Batch::generate(&m, 64, 9);
        let schedules = warp_schedules(&m);
        let warp_kernel = WarpMappedKernel::bind(&schedules, &m, &b).unwrap();
        let ctx = ProfileCtx::default();
        let warp_flops: u64 = (0..warp_kernel.grid_blocks())
            .map(|blk| warp_kernel.profile_block(blk, &ctx).flops)
            .sum();
        let expected: u64 = m
            .features
            .iter()
            .zip(&b.features)
            .map(|(f, fb)| fb.total_lookups() as u64 * f.emb_dim as u64)
            .sum();
        assert_eq!(warp_flops, expected);
    }

    #[test]
    fn warp_unit_launches_and_matches_reference() {
        let m = ModelPreset::A.scaled(0.01);
        let tables = TableSet::for_model(&m);
        let b = Batch::generate(&m, 48, 5);
        let schedules = warp_schedules(&m);
        let k = WarpMappedKernel::bind(&schedules, &m, &b).unwrap();
        let report = launch(&k, &GpuArch::v100(), &LaunchConfig::default()).unwrap();
        assert!(report.latency_us > 0.0);
        let out = k.execute(&m, &tables);
        let golden = reference_model_output(&m, &tables, &b);
        assert_eq!(out.max_abs_diff(&golden), 0.0);
    }

    #[test]
    fn single_feature_tiny_batch_prefers_warp_unit() {
        // One feature, 4 samples: block unit burns a whole 8-warp block
        // per 8 samples anyway, but with many such features the packing
        // difference shows in the grid size.
        let spec = recflex_data::FeatureSpec {
            name: "tiny".into(),
            table_rows: 1000,
            emb_dim: 16,
            pooling: PoolingDist::Fixed(4),
            coverage: 1.0,
            row_skew: 0.0,
        };
        let m = ModelConfig {
            name: "tiny".into(),
            features: vec![spec; 32],
        };
        let b = Batch::generate(&m, 4, 3);
        let schedules = warp_schedules(&m);
        let warp_kernel = WarpMappedKernel::bind(&schedules, &m, &b).unwrap();
        // 32 features × 4 warp tasks = 128 tasks / 8 warps = 16 blocks,
        // versus 32 blocks (one per feature, mostly idle warps).
        assert_eq!(warp_kernel.grid_blocks(), 16);
        let block_obj = FusedKernelObject::compile(FusedSpec::new(schedules));
        let tables = TableSet::for_model(&m);
        let bound = block_obj.bind(&m, &tables, &b);
        assert_eq!(recflex_sim::SimKernel::grid_blocks(&bound), 32);
    }
}
