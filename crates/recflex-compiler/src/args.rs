//! Argument packing for the fused kernel.
//!
//! CUDA limits the parameter bytes of a single kernel, so a fused kernel
//! over thousands of features cannot take per-feature pointers directly.
//! RecFlex "passes an array of pointers on the GPU to the fused kernel,
//! which points to the real required arguments so that the schedules can
//! use specific indices to access their arguments" (paper Section IV-B).
//! This module builds that indirection: one contiguous device buffer with
//! an offset table, validated so every schedule's argument pack is aligned
//! and within bounds.

use recflex_data::{Batch, ModelConfig};

/// CUDA's kernel-parameter byte limit (4 KiB since CUDA 12, 256 B before;
/// we keep the conservative classic limit to justify the indirection).
pub const KERNEL_PARAM_LIMIT: usize = 4096;

/// One feature's argument pack, as laid out on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgEntry {
    /// Byte offset of the pack within the argument buffer.
    pub offset: usize,
    /// Byte length of the pack.
    pub len: usize,
}

/// The packed argument buffer of one fused launch: per-feature CSR
/// pointers, table pointers and sizes flattened into one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgPack {
    /// Per-feature entries (`arg_offsets` of Figure 8).
    pub entries: Vec<ArgEntry>,
    /// Total buffer bytes.
    pub total_bytes: usize,
}

/// Alignment of every argument pack (pointer alignment on the device).
pub const ARG_ALIGN: usize = 16;

/// Fields per feature pack: offsets ptr, indices ptr, table ptr, out ptr,
/// batch_size, emb_dim, table_rows, padding — 8 × 8 bytes.
const PACK_BYTES: usize = 64;

impl ArgPack {
    /// Lay out the argument packs for a model (one pack per feature).
    pub fn build(model: &ModelConfig) -> Self {
        let mut entries = Vec::with_capacity(model.features.len());
        let mut cursor = 0usize;
        for _ in &model.features {
            debug_assert_eq!(cursor % ARG_ALIGN, 0);
            entries.push(ArgEntry {
                offset: cursor,
                len: PACK_BYTES,
            });
            cursor += PACK_BYTES.next_multiple_of(ARG_ALIGN);
        }
        ArgPack {
            entries,
            total_bytes: cursor,
        }
    }

    /// Validate the layout: aligned, in-bounds, non-overlapping, ordered.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_end = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            if e.offset % ARG_ALIGN != 0 {
                return Err(format!("entry {i} misaligned at {}", e.offset));
            }
            if e.offset < prev_end {
                return Err(format!("entry {i} overlaps its predecessor"));
            }
            if e.offset + e.len > self.total_bytes {
                return Err(format!("entry {i} out of bounds"));
            }
            prev_end = e.offset + e.len;
        }
        Ok(())
    }

    /// Whether passing the packs *directly* as kernel parameters would
    /// exceed the CUDA limit — the reason the indirection exists.
    pub fn needs_indirection(&self) -> bool {
        self.total_bytes > KERNEL_PARAM_LIMIT
    }

    /// Host-side bytes that must be copied to the device per batch: the
    /// pointer packs only (the CSRs themselves live on the device already
    /// after input upload). This is part of the sub-0.1 % host overhead
    /// budget of Section VI-E.
    pub fn upload_bytes(&self, _batch: &Batch) -> usize {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;

    #[test]
    fn layout_is_valid_for_all_presets() {
        for preset in ModelPreset::TABLE1 {
            let m = preset.scaled(0.02);
            let pack = ArgPack::build(&m);
            pack.validate().unwrap();
            assert_eq!(pack.entries.len(), m.features.len());
        }
    }

    #[test]
    fn thousand_feature_model_needs_indirection() {
        let m = ModelPreset::A.build();
        let pack = ArgPack::build(&m);
        assert!(
            pack.needs_indirection(),
            "1000 × 64B packs exceed the param limit"
        );
        // A small model would fit as direct parameters.
        let small = ModelPreset::A.scaled(0.004);
        assert!(!ArgPack::build(&small).needs_indirection());
    }

    #[test]
    fn packs_are_dense_and_ordered() {
        let m = ModelPreset::C.scaled(0.02);
        let pack = ArgPack::build(&m);
        for w in pack.entries.windows(2) {
            assert!(w[0].offset < w[1].offset);
        }
        assert_eq!(pack.total_bytes, pack.entries.len() * 64);
    }

    #[test]
    fn validate_rejects_corruption() {
        let m = ModelPreset::A.scaled(0.01);
        let mut pack = ArgPack::build(&m);
        pack.entries[1].offset = 3; // misaligned
        assert!(pack.validate().is_err());
        let mut pack2 = ArgPack::build(&m);
        pack2.entries[0].len = pack2.total_bytes + 1;
        assert!(pack2.validate().is_err());
    }
}
