//! Integration tests for the two request-path extensions the pipeline
//! tier leans on:
//!
//! * [`ShardedServeRuntime::serve_with_deadlines`] /
//!   [`ServeRuntime::serve_with_deadlines`] — per-request admission
//!   deadlines overriding the tier-level SLO, used to thread per-stage
//!   [`DeadlineBudget`](recflex_serve::DeadlineBudget) shares through a
//!   pipeline;
//! * [`CanaryConfig::split_traffic`] — serving the canaried fraction
//!   from the candidate engine under real queueing instead of shadowing
//!   it, with the default (`false`) staying bit-identical to shadow
//!   mode.

use recflex_baselines::{Backend, TorchRecBackend};
use recflex_data::{Batch, ModelConfig, ModelPreset, Placement};
use recflex_embedding::TableSet;
use recflex_serve::{
    BatchPolicy, CanaryConfig, DriftConfig, LifecycleConfig, OutcomePlan, RetuneOutcome,
    ServeConfig, ServeError, ServeRuntime, ShardedRetunePolicy, ShardedServeRuntime, ShedReason,
    TunedCandidate, WorkloadSpec,
};
use recflex_sim::{GpuArch, Interconnect};

fn setup() -> (ModelConfig, GpuArch) {
    (ModelPreset::A.scaled(0.01), GpuArch::v100())
}

fn config(slo: Option<f64>) -> ServeConfig {
    ServeConfig {
        streams: 4,
        policy: BatchPolicy::Split { cap: 256 },
        slo_deadline_us: slo,
        closed_loop: false,
        hot_shard_cap: None,
    }
}

fn tier<'a>(model: &'a ModelConfig, arch: &'a GpuArch, shards: usize) -> ShardedServeRuntime<'a> {
    ShardedServeRuntime::build(
        model,
        arch,
        Placement::balance(model, shards),
        config(None),
        Interconnect::nvlink(),
        |m| Box::new(TorchRecBackend::compile(m)),
    )
}

#[test]
fn unbounded_deadlines_match_a_tier_without_an_slo_bit_for_bit() -> Result<(), ServeError> {
    let (m, arch) = setup();
    let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 42);
    let rt = tier(&m, &arch, 2);
    let plain = rt.serve(&reqs)?;
    let deadlines = vec![f64::INFINITY; reqs.len()];
    let budgeted = rt.serve_with_deadlines(&reqs, &deadlines)?;
    assert_eq!(
        serde_json::to_string(&plain).ok(),
        serde_json::to_string(&budgeted).ok(),
        "an unbounded deadline must not perturb the run"
    );
    Ok(())
}

#[test]
fn zero_window_deadlines_shed_queued_requests_at_admission() -> Result<(), ServeError> {
    let (m, arch) = setup();
    // Everything arrives at once: whoever finds backlog must shed.
    let reqs: Vec<recflex_serve::Request> = (0..12)
        .map(|i| recflex_serve::Request {
            id: i,
            arrival_us: 0.0,
            batch: Batch::generate(&m, 256, 900 + i),
        })
        .collect();
    let rt = tier(&m, &arch, 2);
    let deadlines = vec![0.0; reqs.len()];
    let report = rt.serve_with_deadlines(&reqs, &deadlines)?;
    let shed = report
        .records
        .iter()
        .filter(|r| r.base.shed != ShedReason::None)
        .count();
    assert!(shed > 0, "zero admission window under backlog must shed");
    // The first-admitted request saw an empty tier and survives.
    assert!(
        shed < reqs.len(),
        "an empty tier admits a zero-window request"
    );
    Ok(())
}

#[test]
fn deadline_vector_length_must_match_the_stream() {
    let (m, arch) = setup();
    let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 4, 1);
    let rt = tier(&m, &arch, 2);
    assert!(matches!(
        rt.serve_with_deadlines(&reqs, &[1_000.0]),
        Err(ServeError::Policy(_))
    ));
    let backend = TorchRecBackend::compile(&m);
    let tables = TableSet::for_model(&m);
    let single = ServeRuntime {
        backend: &backend,
        model: &m,
        tables: &tables,
        arch: &arch,
        config: config(None),
    };
    assert!(matches!(
        single.serve_with_deadlines(&reqs, &[1_000.0]),
        Err(ServeError::Policy(_))
    ));
}

#[test]
fn single_device_deadlines_override_the_config_slo() -> Result<(), ServeError> {
    let (m, arch) = setup();
    let backend = TorchRecBackend::compile(&m);
    let tables = TableSet::for_model(&m);
    let reqs: Vec<recflex_serve::Request> = (0..10)
        .map(|i| recflex_serve::Request {
            id: i,
            arrival_us: i as f64,
            batch: Batch::generate(&m, 256, 300 + i),
        })
        .collect();
    // A tight tier-level SLO sheds under this burst…
    let tight = ServeRuntime {
        backend: &backend,
        model: &m,
        tables: &tables,
        arch: &arch,
        config: config(Some(500.0)),
    };
    let slo_report = tight.serve(&reqs)?;
    assert!(slo_report.shed_rate() > 0.0);
    // …but generous per-request deadlines on the same config admit
    // everything: the vector overrides the tier SLO.
    let deadlines: Vec<f64> = reqs.iter().map(|r| r.arrival_us + 1e9).collect();
    let open = tight.serve_with_deadlines(&reqs, &deadlines)?;
    assert_eq!(open.shed_rate(), 0.0);
    Ok(())
}

/// In-distribution head, heavily shifted tail — drifts the monitor
/// partway through (same shape as the lifecycle tests).
fn drifting_stream(m: &ModelConfig) -> Vec<recflex_serve::Request> {
    let shifted = recflex_data::shift_distribution(m, 2.5, 0.0);
    let mut reqs = WorkloadSpec::long_tail(400.0).stream(m, 16, 5);
    let mut tail = WorkloadSpec::long_tail(400.0).stream(&shifted, 24, 6);
    let t0 = reqs.last().map_or(0.0, |r| r.arrival_us);
    for (k, r) in tail.iter_mut().enumerate() {
        r.arrival_us += t0;
        r.id = 16 + k as u64;
    }
    reqs.append(&mut tail);
    reqs
}

fn canary_policy(split_traffic: bool, outcomes: OutcomePlan) -> ShardedRetunePolicy<'static> {
    ShardedRetunePolicy {
        drift: DriftConfig {
            window: 8,
            threshold: 0.3,
            feature_threshold: 0.5,
        },
        retune_latency_us: 1_000.0,
        stagger_us: 0.0,
        lifecycle: LifecycleConfig {
            outcomes,
            canary: Some(CanaryConfig {
                shadow_fraction: 1.0,
                window: 4,
                min_win_margin: 0.0,
                split_traffic,
            }),
            ..LifecycleConfig::default()
        },
        retuner: Box::new(|sm: &ModelConfig, _: &[Batch]| {
            TunedCandidate::from(Box::new(TorchRecBackend::compile(sm)) as Box<dyn Backend>)
        }),
    }
}

#[test]
fn split_traffic_off_is_bit_identical_to_shadow_mode() -> Result<(), ServeError> {
    let (m, arch) = setup();
    let reqs = drifting_stream(&m);
    let regressed = || OutcomePlan::scripted(vec![RetuneOutcome::Regression { slowdown: 4.0 }; 8]);
    let shadow =
        tier(&m, &arch, 2).serve_with_retune(&reqs, &mut canary_policy(false, regressed()))?;
    let plain = tier(&m, &arch, 2).serve(&reqs)?;
    // Shadow canarying never touches the served path: request records
    // match a tier that never retuned, exactly as before the flag.
    assert_eq!(shadow.records, plain.records);
    Ok(())
}

#[test]
fn split_traffic_serves_the_canaried_fraction_from_the_candidate() -> Result<(), ServeError> {
    let (m, arch) = setup();
    let reqs = drifting_stream(&m);
    let regressed = || OutcomePlan::scripted(vec![RetuneOutcome::Regression { slowdown: 4.0 }; 8]);
    let shadow =
        tier(&m, &arch, 2).serve_with_retune(&reqs, &mut canary_policy(false, regressed()))?;
    let split =
        tier(&m, &arch, 2).serve_with_retune(&reqs, &mut canary_policy(true, regressed()))?;
    // The 4x-slower candidate actually serves the canaried chunks, so
    // the split run's latencies diverge from shadow mode…
    assert_ne!(split.records, shadow.records);
    assert!(
        split.percentile_us(1.0) > shadow.percentile_us(1.0),
        "a regressed candidate on the serving path must stretch the tail: {} vs {}",
        split.percentile_us(1.0),
        shadow.percentile_us(1.0)
    );
    // …and the verdict still rolls the regression back.
    assert_eq!(split.lifecycle.retunes_promoted, 0);
    assert!(split.lifecycle.retunes_rolled_back >= 1);
    assert!(split.lifecycle.canary_shadow_chunks > 0);
    Ok(())
}
