//! Fleet-scale workload composition.
//!
//! A fleet serves several model scenarios at once, each with its own
//! traffic shape: production recommendation traffic follows a diurnal
//! curve (DeepRecSys observes ~2× peak-to-trough swings over a day) and
//! is punctuated by flash crowds. This module composes per-scenario
//! request streams — each a time-shaped variant of the Poisson process in
//! [`WorkloadSpec`] — into one merged,
//! deterministic arrival trace for the fleet event loop.
//!
//! Determinism contract: every scenario stream is a pure function of
//! `(fleet seed, scenario index, spec)`, and the merge orders events by
//! `(arrival_us, scenario index, request id)` — the fleet tie-break
//! documented in DESIGN.md §8g. A scenario with a flat
//! [`TrafficShape`] reproduces `WorkloadSpec::stream` byte for byte
//! (the shaping divides each gap by a multiplier of exactly 1.0, an IEEE
//! identity), so the degenerate one-scenario fleet inherits the serving
//! stack's bit-identity guarantees.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recflex_data::{Batch, ModelConfig};

use crate::request::{Request, WorkloadSpec};

/// A seeded diurnal traffic curve: a sinusoid with mean multiplier 1, so
/// shaping changes *when* requests land, not how many there are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Length of one traffic "day" in simulated µs.
    pub period_us: f64,
    /// Peak rate divided by trough rate (> 1; DeepRecSys-style diurnal
    /// swing is ~2).
    pub peak_to_trough: f64,
    /// Phase offset in periods (`0.25` starts the scenario at peak) —
    /// staggering phases across scenarios models fleets spanning time
    /// zones.
    pub phase: f64,
}

impl DiurnalCurve {
    /// Instantaneous rate multiplier at time `t`. With peak/trough ratio
    /// `r` the curve is `1 + a·sin(2π(t/T + φ))` with `a = (r−1)/(r+1)`,
    /// which has mean 1 and max/min exactly `r`.
    pub fn multiplier(&self, t_us: f64) -> f64 {
        let a = (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0);
        1.0 + a * (std::f64::consts::TAU * (t_us / self.period_us + self.phase)).sin()
    }
}

/// A flash crowd: the arrival rate jumps by `multiplier` over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Window start, µs.
    pub start_us: f64,
    /// Window length, µs.
    pub duration_us: f64,
    /// Rate multiplier inside the window (> 1 for a crowd; < 1 models a
    /// partial upstream outage).
    pub multiplier: f64,
}

impl FlashCrowd {
    /// Instantaneous rate multiplier at time `t`.
    pub fn multiplier(&self, t_us: f64) -> f64 {
        if self.start_us <= t_us && t_us < self.start_us + self.duration_us {
            self.multiplier
        } else {
            1.0
        }
    }
}

/// The composed time-shaping of one scenario's arrival process: the
/// product of an optional diurnal curve and any number of flash crowds,
/// clamped to a small positive floor so a pathological composition can
/// never stall the stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrafficShape {
    /// The diurnal baseline, if any.
    pub diurnal: Option<DiurnalCurve>,
    /// Flash-crowd windows layered on top.
    pub flash_crowds: Vec<FlashCrowd>,
}

impl TrafficShape {
    /// A flat shape: multiplier 1.0 everywhere. Streams shaped by it are
    /// byte-identical to unshaped [`WorkloadSpec::stream`] output.
    pub fn flat() -> Self {
        TrafficShape::default()
    }

    /// True when no shaping is configured at all.
    pub fn is_flat(&self) -> bool {
        self.diurnal.is_none() && self.flash_crowds.is_empty()
    }

    /// The composed rate multiplier at time `t`.
    pub fn multiplier(&self, t_us: f64) -> f64 {
        let mut m = self.diurnal.map_or(1.0, |d| d.multiplier(t_us));
        for fc in &self.flash_crowds {
            m *= fc.multiplier(t_us);
        }
        m.max(1e-3)
    }
}

/// One model scenario in the fleet: its traffic statistics, its time
/// shape, and how many requests it contributes to the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (usually the model name), for reports.
    pub name: String,
    /// Per-request statistics: mean gap, size distribution, size unit.
    pub workload: WorkloadSpec,
    /// Time-of-day shaping applied to the arrival rate.
    pub shape: TrafficShape,
    /// Requests this scenario contributes.
    pub requests: usize,
    /// Scenario priority for fleet brownout shedding: when the fleet
    /// brownout ladder reaches its load-shedding rung, scenarios at the
    /// fleet's *lowest* priority are shed first. Larger is more
    /// important. Purely advisory outside the chaos path — the plain
    /// fleet runtime never reads it.
    pub priority: u32,
}

/// One arrival in the merged fleet trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetArrival {
    /// Index of the scenario (model) this request belongs to.
    pub scenario: usize,
    /// The request itself (ids are scenario-local).
    pub request: Request,
}

/// The fleet's composed workload: several scenarios, one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetWorkload {
    /// The scenarios, in fleet order (index = scenario id everywhere).
    pub scenarios: Vec<ScenarioSpec>,
    /// Root seed; per-scenario seeds derive from it.
    pub seed: u64,
}

impl FleetWorkload {
    /// The seed scenario `idx` streams from. Scenario 0 keeps the root
    /// seed itself, so a one-scenario fleet is byte-identical to calling
    /// [`WorkloadSpec::stream`] with the fleet seed — the degenerate
    /// identity the tests gate on.
    pub fn scenario_seed(&self, idx: usize) -> u64 {
        self.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Synthesize scenario `idx`'s stream against `model`. Mirrors
    /// [`WorkloadSpec::stream`] draw for draw — same RNG construction,
    /// same draw order, same batch seeds — with one difference: each
    /// exponential gap is divided by the shape's rate multiplier at the
    /// current time. A flat shape divides by exactly 1.0, leaving every
    /// bit unchanged.
    pub fn scenario_stream(&self, idx: usize, model: &ModelConfig) -> Vec<Request> {
        let sc = &self.scenarios[idx];
        let spec = &sc.workload;
        let seed = self.scenario_seed(idx);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_57EA);
        let mut t = 0.0f64;
        (0..sc.requests)
            .map(|i| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let gap = -spec.mean_interarrival_us * (1.0 - u).ln();
                t += gap / sc.shape.multiplier(t);
                let batch_size = (spec.size_dist.sample(&mut rng) * spec.size_unit).max(1);
                let batch_seed = seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(i as u64)
                    .rotate_left(23);
                Request {
                    id: i as u64,
                    arrival_us: t,
                    batch: Batch::generate(model, batch_size, batch_seed),
                }
            })
            .collect()
    }

    /// Compose every scenario's stream into one merged arrival trace.
    /// `models[idx]` is the model scenario `idx` generates batches for.
    /// The merge is a stable sort by `(arrival_us, scenario, id)` — the
    /// fleet event tie-break — so the trace is a pure function of
    /// `(self, models)`.
    pub fn merged(&self, models: &[&ModelConfig]) -> Vec<FleetArrival> {
        assert_eq!(models.len(), self.scenarios.len());
        let mut all: Vec<FleetArrival> = Vec::new();
        for (idx, model) in models.iter().enumerate() {
            all.extend(
                self.scenario_stream(idx, model)
                    .into_iter()
                    .map(|request| FleetArrival {
                        scenario: idx,
                        request,
                    }),
            );
        }
        all.sort_by(|a, b| {
            a.request
                .arrival_us
                .total_cmp(&b.request.arrival_us)
                .then(a.scenario.cmp(&b.scenario))
                .then(a.request.id.cmp(&b.request.id))
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use recflex_data::ModelPreset;

    fn scenario(name: &str, gap: f64, shape: TrafficShape, n: usize) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            workload: WorkloadSpec::long_tail(gap),
            shape,
            requests: n,
            priority: 1,
        }
    }

    fn spicy_shape(period: f64) -> TrafficShape {
        TrafficShape {
            diurnal: Some(DiurnalCurve {
                period_us: period,
                peak_to_trough: 2.0,
                phase: 0.25,
            }),
            flash_crowds: vec![FlashCrowd {
                start_us: period * 0.4,
                duration_us: period * 0.1,
                multiplier: 3.0,
            }],
        }
    }

    #[test]
    fn diurnal_curve_has_unit_mean_and_exact_ratio() {
        let d = DiurnalCurve {
            period_us: 10_000.0,
            peak_to_trough: 2.0,
            phase: 0.0,
        };
        let samples: Vec<f64> = (0..10_000).map(|i| d.multiplier(i as f64 * 1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 1e-3, "mean multiplier {mean}");
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        assert!((max / min - 2.0).abs() < 1e-2, "ratio {}", max / min);
    }

    #[test]
    fn flat_shape_reproduces_workload_spec_stream_byte_for_byte() {
        let m = ModelPreset::A.scaled(0.01);
        let fleet = FleetWorkload {
            scenarios: vec![scenario("a", 300.0, TrafficShape::flat(), 40)],
            seed: 42,
        };
        let shaped = fleet.scenario_stream(0, &m);
        let plain = WorkloadSpec::long_tail(300.0).stream(&m, 40, 42);
        assert_eq!(shaped, plain, "flat shaping must be the identity");
    }

    #[test]
    fn flash_crowd_compresses_gaps_inside_its_window() {
        let m = ModelPreset::A.scaled(0.01);
        let crowd = FlashCrowd {
            start_us: 0.0,
            duration_us: 1e12,
            multiplier: 4.0,
        };
        let flat = FleetWorkload {
            scenarios: vec![scenario("a", 300.0, TrafficShape::flat(), 60)],
            seed: 9,
        };
        let crowded = FleetWorkload {
            scenarios: vec![scenario(
                "a",
                300.0,
                TrafficShape {
                    diurnal: None,
                    flash_crowds: vec![crowd],
                },
                60,
            )],
            seed: 9,
        };
        let a = flat.scenario_stream(0, &m);
        let b = crowded.scenario_stream(0, &m);
        // Same draws, 4× the rate: every arrival lands at exactly a
        // quarter of the flat timestamp.
        for (x, y) in a.iter().zip(&b) {
            assert!((y.arrival_us - x.arrival_us / 4.0).abs() < 1e-9);
            assert_eq!(x.batch, y.batch, "shaping must not touch payloads");
        }
    }

    #[test]
    fn merged_trace_is_sorted_by_the_fleet_tie_break() {
        let (ma, mb) = (ModelPreset::A.scaled(0.01), ModelPreset::B.scaled(0.01));
        let fleet = FleetWorkload {
            scenarios: vec![
                scenario("a", 200.0, spicy_shape(8_000.0), 30),
                scenario("b", 350.0, TrafficShape::flat(), 20),
            ],
            seed: 7,
        };
        let merged = fleet.merged(&[&ma, &mb]);
        assert_eq!(merged.len(), 50);
        for w in merged.windows(2) {
            let (x, y) = (&w[0], &w[1]);
            let key = |e: &FleetArrival| (e.request.arrival_us, e.scenario, e.request.id);
            assert!(
                key(x).0 < key(y).0
                    || (key(x).0 == key(y).0 && (key(x).1, key(x).2) <= (key(y).1, key(y).2)),
                "merge order violated"
            );
        }
    }

    proptest! {
        /// Same seed + spec ⇒ identical merged arrival trace; a
        /// different seed changes it.
        #[test]
        fn merged_traces_are_deterministic(seed in 0u64..1000) {
            let (ma, mb) = (ModelPreset::A.scaled(0.01), ModelPreset::C.scaled(0.01));
            let mk = |seed| FleetWorkload {
                scenarios: vec![
                    scenario("a", 250.0, spicy_shape(6_000.0), 16),
                    scenario("c", 400.0, TrafficShape::flat(), 12),
                ],
                seed,
            };
            let a = mk(seed).merged(&[&ma, &mb]);
            let b = mk(seed).merged(&[&ma, &mb]);
            prop_assert_eq!(&a, &b);
            let c = mk(seed ^ 0xDEAD_BEEF).merged(&[&ma, &mb]);
            prop_assert!(a != c, "different seeds must change the trace");
        }

        /// Diurnal/flash-crowd composition moves arrivals in time but
        /// never creates or destroys them: filtering the merged trace by
        /// scenario recovers each scenario's own stream exactly.
        #[test]
        fn composition_preserves_per_scenario_arrival_counts(
            seed in 0u64..1000,
            n_a in 1usize..24,
            n_b in 1usize..24,
        ) {
            let (ma, mb) = (ModelPreset::A.scaled(0.01), ModelPreset::D.scaled(0.01));
            let fleet = FleetWorkload {
                scenarios: vec![
                    scenario("a", 300.0, spicy_shape(5_000.0), n_a),
                    scenario("d", 200.0, spicy_shape(9_000.0), n_b),
                ],
                seed,
            };
            let merged = fleet.merged(&[&ma, &mb]);
            prop_assert_eq!(merged.len(), n_a + n_b);
            for (idx, model, n) in [(0usize, &ma, n_a), (1, &mb, n_b)] {
                let got: Vec<Request> = merged
                    .iter()
                    .filter(|e| e.scenario == idx)
                    .map(|e| e.request.clone())
                    .collect();
                prop_assert_eq!(&got, &fleet.scenario_stream(idx, model));
                prop_assert_eq!(got.len(), n);
            }
        }
    }
}
