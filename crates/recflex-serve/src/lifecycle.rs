//! The schedule-lifecycle state machine.
//!
//! The paper's online story (Section VI-C) makes drift trigger a
//! background retune whose schedule is hot-swapped in — but a real
//! autotuner is fallible: compilation of the winning schedule can fail,
//! the search can hang, and single-candidate measurements taken under
//! the interference effects of Sections III–IV can crown a schedule that
//! is *slower* than the incumbent. Production serving stacks gate model
//! pushes behind validation for exactly this reason. This module makes
//! the retune pipeline a supervised, replayable state machine:
//!
//! ```text
//!            drift fires                retune completes
//!  Steady ───────────────▶ Retuning ───────────────────▶ Canary
//!    ▲                        │ compile-fail /              │
//!    │                        │ stall past deadline         │ window decided
//!    │                        ▼                             ▼
//!    │◀── cooldown ── Backoff ◀──────────────── rolled back (lost) /
//!    │    expires       │  next attempt          Rollout (won, staged
//!    │                  ▼                        shard-by-shard)
//!    └───────────── give up after                      │
//!                   bounded attempts            Promoted (version += 1)
//! ```
//!
//! * every attempt's outcome is drawn from a seeded [`OutcomePlan`]
//!   (mirroring [`crate::FaultPlan`]), so a flaky-tuner run replays
//!   bit-for-bit,
//! * a successful candidate is **canaried**: it shadow-executes a
//!   configurable fraction of admitted device chunks (simulated cost
//!   accounted, results unused) and is promoted only if its measured
//!   device time beats the incumbent by a configurable margin over the
//!   canary window — otherwise it is rolled back,
//! * failures and rollbacks feed a bounded retry schedule with
//!   exponential backoff, and a cooldown after every episode keeps
//!   drift re-fires from thrashing retunes,
//! * in the sharded tier a winning canary is promoted *staged*,
//!   shard-by-shard; any regression observed at a rollout step rolls
//!   every shard back to the incumbent.
//!
//! With the default [`LifecycleConfig`] — every outcome a success, no
//! canary, no cooldown — the machine walks Steady → Retuning → Promoted
//! with the exact timestamps of the old unconditional hot swap, so the
//! no-failure path is bit-identical to the pre-lifecycle runtime.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use recflex_baselines::{Backend, BackendError, BackendRun};
use recflex_data::{Batch, ModelConfig};
use recflex_embedding::TableSet;
use recflex_sim::GpuArch;

/// What one retune attempt turns out to be.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum RetuneOutcome {
    /// The tuner returns a working engine that performs as measured.
    Success,
    /// The winning schedule fails to compile; no engine materializes.
    /// Resolves at the retune latency (the failure is discovered when
    /// the build finishes).
    CompileFail,
    /// The tuner hangs. The attempt resolves only when the configured
    /// [`LifecycleConfig::retune_deadline_us`] watchdog abandons it;
    /// without a deadline the attempt is wedged forever, exactly like a
    /// hung tuner with no watchdog.
    Stall,
    /// The tuner returns an engine, but interference-polluted
    /// measurements picked a schedule `slowdown`× slower than claimed.
    Regression {
        /// Device-time multiplier the regressed engine actually costs
        /// (≥ 1).
        slowdown: f64,
    },
}

/// A replayable schedule of per-attempt retune outcomes — the lifecycle
/// analogue of [`crate::FaultPlan`]. The k-th retune attempt of a run
/// (0-based, across episodes) draws `outcomes[k]`; attempts past the end
/// of the list succeed, so the empty plan ([`OutcomePlan::none`]) is the
/// infallible tuner the pre-lifecycle runtime assumed.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct OutcomePlan {
    /// Outcome of each attempt, in attempt order.
    pub outcomes: Vec<RetuneOutcome>,
}

impl OutcomePlan {
    /// The empty plan: every retune succeeds.
    pub fn none() -> Self {
        OutcomePlan::default()
    }

    /// A hand-written plan.
    pub fn scripted(outcomes: Vec<RetuneOutcome>) -> Self {
        OutcomePlan { outcomes }
    }

    /// The outcome of the `attempt`-th retune (0-based).
    pub fn outcome_of(&self, attempt: u32) -> RetuneOutcome {
        self.outcomes
            .get(attempt as usize)
            .copied()
            .unwrap_or(RetuneOutcome::Success)
    }

    /// True when no attempt can fail.
    pub fn is_all_success(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, RetuneOutcome::Success))
    }
}

/// The statistical shape of a seeded outcome schedule — the lifecycle
/// analogue of [`crate::FaultSpec`]. Outcomes are drawn independently
/// per attempt by weight; identical `(spec, attempts, seed)` replays a
/// bit-identical [`OutcomePlan`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OutcomeSpec {
    /// Relative draw weight of a clean success.
    pub success_weight: f64,
    /// Relative draw weight of a compile failure.
    pub compile_fail_weight: f64,
    /// Relative draw weight of a stalled tuner.
    pub stall_weight: f64,
    /// Relative draw weight of a regressed engine.
    pub regression_weight: f64,
    /// Device-time multiplier a regressed engine costs (≥ 1).
    pub regression_slowdown: f64,
}

impl OutcomeSpec {
    /// A tuner that mostly works but exhibits every failure mode.
    pub fn flaky() -> Self {
        OutcomeSpec {
            success_weight: 5.0,
            compile_fail_weight: 1.0,
            stall_weight: 1.0,
            regression_weight: 2.0,
            regression_slowdown: 3.0,
        }
    }

    /// Draw the outcome of the first `attempts` retunes from `seed`.
    /// Identical arguments produce byte-identical plans.
    pub fn plan(&self, attempts: usize, seed: u64) -> OutcomePlan {
        let total = self.success_weight
            + self.compile_fail_weight
            + self.stall_weight
            + self.regression_weight;
        if total <= 0.0 {
            return OutcomePlan::none();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0011_FEC7_C1E5);
        let outcomes = (0..attempts)
            .map(|_| {
                let pick = rng.gen_range(0.0..total);
                if pick < self.success_weight {
                    RetuneOutcome::Success
                } else if pick < self.success_weight + self.compile_fail_weight {
                    RetuneOutcome::CompileFail
                } else if pick < self.success_weight + self.compile_fail_weight + self.stall_weight
                {
                    RetuneOutcome::Stall
                } else {
                    RetuneOutcome::Regression {
                        slowdown: self.regression_slowdown.max(1.0),
                    }
                }
            })
            .collect();
        OutcomePlan::scripted(outcomes)
    }
}

/// How a successful candidate must prove itself before promotion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanaryConfig {
    /// Fraction of admitted device chunks the candidate shadow-executes,
    /// in `(0, 1]`. Shadow cost is accounted in
    /// [`LifecycleStats::canary_overhead_us`], never submitted to the
    /// device, so canarying does not perturb serving latencies.
    pub shadow_fraction: f64,
    /// Shadowed chunks that make one canary verdict (≥ 1).
    pub window: usize,
    /// Relative device-time margin the candidate must win by:
    /// promoted iff `candidate ≤ incumbent × (1 − margin)` summed over
    /// the window (0.0 promotes on a tie — two identical engines pass).
    pub min_win_margin: f64,
    /// Split-traffic canarying: when `true`, the canaried fraction of
    /// chunks is **served by the candidate** — its device time enters
    /// the real queue (actual queueing, not side-by-side shadow cost)
    /// and the incumbent's cost for the same chunk becomes the free
    /// comparator. `false` (the default) keeps the original shadow
    /// mode, where the candidate's cost is accounted but never queued,
    /// so default configs replay bit-identically.
    pub split_traffic: bool,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        CanaryConfig {
            shadow_fraction: 0.25,
            window: 8,
            min_win_margin: 0.0,
            split_traffic: false,
        }
    }
}

/// Retry-with-backoff and hysteresis against retune thrash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts allowed per drift episode (≥ 1) before giving up.
    pub max_attempts: u32,
    /// Backoff before the retry after the first failure, µs.
    pub base_backoff_us: f64,
    /// Backoff growth per consecutive failure (exponential).
    pub backoff_multiplier: f64,
    /// After a promotion, a rollback that exhausted the episode, or a
    /// give-up: drift fires are ignored for this long. Zero keeps the
    /// pre-lifecycle behavior where a fresh drift verdict may retune
    /// immediately.
    pub cooldown_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 5_000.0,
            backoff_multiplier: 2.0,
            cooldown_us: 0.0,
        }
    }
}

/// Full lifecycle configuration. The default — all-success outcomes, no
/// canary, zero cooldown, no deadline — reproduces the pre-lifecycle
/// blind hot swap bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LifecycleConfig {
    /// Per-attempt outcomes; default all-success.
    pub outcomes: OutcomePlan,
    /// Canarying; `None` installs a completed retune unconditionally
    /// (the pre-lifecycle blind swap).
    pub canary: Option<CanaryConfig>,
    /// Retry/backoff/cooldown schedule.
    pub retry: RetryPolicy,
    /// Watchdog for a retune attempt, µs after launch: an attempt still
    /// unresolved then (a stalled tuner, or a build outliving its
    /// budget) is abandoned. `None` trusts the tuner to return.
    pub retune_deadline_us: Option<f64>,
}

impl LifecycleConfig {
    /// True when the machinery cannot alter the blind-swap path: every
    /// outcome succeeds and no canary gates promotion.
    pub fn is_blind_swap(&self) -> bool {
        self.outcomes.is_all_success() && self.canary.is_none()
    }
}

/// Why a retune attempt died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FailReason {
    /// The winning schedule failed to compile.
    CompileFail,
    /// The watchdog abandoned the attempt at the deadline.
    StallAbandoned,
    /// The canary measured the candidate slower than the incumbent (or
    /// the candidate refused a shadow batch).
    CanaryRegression,
}

/// One entry of the lifecycle trace. The trace is part of the report, so
/// replay tests can assert two runs of the same seed walked the same
/// machine path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum LifecycleEvent {
    /// Attempt `attempt` (1-based, across episodes) launched.
    RetuneStarted {
        /// Launch timestamp, µs.
        t_us: f64,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Attempt `attempt` died without a canary verdict.
    RetuneFailed {
        /// Failure timestamp, µs.
        t_us: f64,
        /// 1-based attempt number.
        attempt: u32,
        /// What killed it.
        reason: FailReason,
    },
    /// The candidate of attempt `attempt` entered its canary.
    CanaryStarted {
        /// Canary start timestamp, µs.
        t_us: f64,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The canary lost (or a rollout step regressed): every promoted
    /// shard was restored to the incumbent.
    RolledBack {
        /// Rollback timestamp, µs.
        t_us: f64,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// One shard switched to the candidate during a staged rollout.
    ShardPromoted {
        /// Promotion timestamp, µs.
        t_us: f64,
        /// The shard that switched.
        shard: usize,
    },
    /// The candidate became the incumbent on every shard.
    Promoted {
        /// Promotion timestamp, µs.
        t_us: f64,
        /// The engine version now serving (starts at 0, +1 per
        /// promotion).
        version: u32,
    },
    /// The episode exhausted its attempt budget.
    GaveUp {
        /// Give-up timestamp, µs.
        t_us: f64,
        /// Attempts the episode burned.
        attempts: u32,
    },
}

/// How one tuning run was produced — reported by retuners that tune
/// through the profile vault, aggregated into [`LifecycleStats`] and
/// surfaced per fleet member.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EngineTuning {
    /// Whether the run warm-started from a stored vault profile.
    pub warm_started: bool,
    /// Kernel launches the tuning run cost.
    pub tuner_evaluations: u64,
}

/// Lifecycle counters, reported per run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct LifecycleStats {
    /// Retune attempts launched (all episodes).
    pub retunes_attempted: u32,
    /// Attempts that died before a canary verdict (compile fail, stall).
    pub retunes_failed: u32,
    /// Candidates rolled back by the canary or a rollout recheck.
    pub retunes_rolled_back: u32,
    /// Candidates promoted to incumbent.
    pub retunes_promoted: u32,
    /// Device chunks the candidate shadow-executed.
    pub canary_shadow_chunks: u64,
    /// Simulated device time spent on shadow execution, µs (accounted,
    /// never submitted — canarying does not perturb serving latencies).
    pub canary_overhead_us: f64,
    /// The engine version serving at the end of the run (0 = the engine
    /// the runtime was built with).
    pub engine_version: u32,
    /// Kernel launches spent across every tuning run reported to this
    /// machine (zero when the retuner does not report tuning costs).
    pub tuner_evaluations: u64,
    /// Tuning runs that warm-started from a stored vault profile.
    pub warm_starts: u32,
}

/// The timing skeleton of a staged rollout, extracted from the §8f
/// shard-by-shard promotion machinery so other controllers (the fleet
/// elasticity drain in [`crate::elastic`]) can stage *their* multi-step
/// transitions on the same abortable cadence: `stages` steps starting
/// at `start_us`, spaced `stagger_us` apart. Step `k` commits at
/// [`stage_us(k)`](Self::stage_us); the whole transition is complete at
/// [`complete_us`](Self::complete_us). A controller that checks each
/// stage timestamp against an abort predicate before committing gets
/// exactly the lifecycle rollout's abort semantics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StagedSchedule {
    /// When stage 0 commits, µs.
    pub start_us: f64,
    /// Number of stages (shards to drain, lanes to promote, …).
    pub stages: usize,
    /// Gap between consecutive stages, µs.
    pub stagger_us: f64,
}

impl StagedSchedule {
    /// A schedule of `stages` steps from `start_us`, `stagger_us`
    /// apart. Negative staggers collapse to zero (all stages commit at
    /// `start_us`, like a single-shard rollout).
    pub fn new(start_us: f64, stages: usize, stagger_us: f64) -> Self {
        StagedSchedule {
            start_us,
            stages: stages.max(1),
            stagger_us: stagger_us.max(0.0),
        }
    }

    /// The timestamp stage `k` commits at.
    pub fn stage_us(&self, k: usize) -> f64 {
        self.start_us + self.stagger_us * k as f64
    }

    /// When the final stage has committed.
    pub fn complete_us(&self) -> f64 {
        self.stage_us(self.stages - 1)
    }
}

/// What the runtime must do when a lifecycle timer fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerAction {
    /// An uncanaried retune completed: install the candidate on every
    /// shard now (the blind swap).
    PromoteAll,
    /// The retune completed and canarying is on: keep the candidate
    /// shadowing; promotion is decided by canary observations.
    BeginCanary,
    /// The attempt failed (compile fail or stall): drop the candidate.
    /// Any retry is scheduled internally.
    DropCandidate,
    /// Backoff expired: launch the next retune attempt.
    Retry,
    /// Staged rollout: switch this shard to the candidate now.
    PromoteShard(usize),
    /// A rollout recheck regressed: restore the incumbent on every
    /// promoted shard and drop the candidate.
    RollBackAll,
    /// No timer was actually due.
    Noop,
}

/// The verdict of one canary observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanaryVerdict {
    /// The window is still filling.
    Pending,
    /// The candidate won; a staged rollout begins (promotions arrive as
    /// [`TimerAction::PromoteShard`] timer events).
    Promote,
    /// The candidate lost: restore every promoted shard and drop it.
    RollBack,
}

/// How an in-flight attempt resolves.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Resolution {
    /// The tuner returns a candidate at this timestamp.
    Succeeds(f64),
    /// The build fails at this timestamp.
    FailsCompile(f64),
    /// The tuner never returns; only the deadline resolves it.
    Stalls,
}

#[derive(Debug, Clone, PartialEq)]
enum State {
    Steady,
    Cooldown {
        until_us: f64,
    },
    Backoff {
        until_us: f64,
    },
    Retuning {
        resolution: Resolution,
        deadline_us: f64,
    },
    Canary {
        incumbent_us: Vec<f64>,
        candidate_us: Vec<f64>,
        observed: usize,
    },
    Rollout {
        incumbent_us: Vec<f64>,
        candidate_us: Vec<f64>,
        /// Shards `0..next_shard` already run the candidate.
        next_shard: usize,
        next_at_us: f64,
    },
}

/// The deterministic lifecycle driver. The runtime owns the engines; the
/// machine owns the state, timers, counters and trace, and tells the
/// runtime what to do via [`TimerAction`] and [`CanaryVerdict`].
#[derive(Debug, Clone)]
pub struct LifecycleMachine {
    config: LifecycleConfig,
    retune_latency_us: f64,
    /// Gap between consecutive shard promotions in a staged rollout, µs.
    stagger_us: f64,
    num_shards: usize,
    state: State,
    stats: LifecycleStats,
    trace: Vec<LifecycleEvent>,
    /// Attempts burned in the current episode.
    episode_attempts: u32,
    /// Deterministic fraction sampler for shadow execution.
    shadow_acc: f64,
}

impl LifecycleMachine {
    /// A machine driving `num_shards` engine slots. `stagger_us` spaces
    /// the per-shard promotions of a staged rollout (irrelevant with one
    /// shard).
    pub fn new(
        config: LifecycleConfig,
        retune_latency_us: f64,
        num_shards: usize,
        stagger_us: f64,
    ) -> Self {
        LifecycleMachine {
            config,
            retune_latency_us,
            stagger_us: stagger_us.max(0.0),
            num_shards: num_shards.max(1),
            state: State::Steady,
            stats: LifecycleStats::default(),
            trace: Vec::new(),
            episode_attempts: 0,
            shadow_acc: 0.0,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> LifecycleStats {
        self.stats
    }

    /// Record how a tuning run was produced (vault-aware retuners only).
    pub fn record_tuning(&mut self, tuning: EngineTuning) {
        self.stats.tuner_evaluations += tuning.tuner_evaluations;
        if tuning.warm_started {
            self.stats.warm_starts += 1;
        }
    }

    /// The trace so far.
    pub fn trace(&self) -> &[LifecycleEvent] {
        &self.trace
    }

    /// Consume the machine into its report fields.
    pub fn into_parts(self) -> (LifecycleStats, Vec<LifecycleEvent>) {
        (self.stats, self.trace)
    }

    /// The next timestamp at which [`Self::on_timer`] must run, if any.
    pub fn next_timer_us(&self) -> Option<f64> {
        match &self.state {
            State::Retuning {
                resolution,
                deadline_us,
            } => match *resolution {
                Resolution::Succeeds(at) | Resolution::FailsCompile(at) => {
                    Some(at.min(*deadline_us))
                }
                Resolution::Stalls => deadline_us.is_finite().then_some(*deadline_us),
            },
            State::Backoff { until_us } => Some(*until_us),
            State::Rollout { next_at_us, .. } => Some(*next_at_us),
            State::Steady | State::Cooldown { .. } | State::Canary { .. } => None,
        }
    }

    /// Whether a drift verdict at `now` should launch a retune. True
    /// only in steady state; an in-flight attempt, canary, backoff or
    /// cooldown absorbs the fire (the hysteresis that keeps drift
    /// re-fires from thrashing retunes). Lazily expires the cooldown.
    pub fn wants_drift_retune(&mut self, now: f64) -> bool {
        if let State::Cooldown { until_us } = self.state {
            if now >= until_us {
                self.state = State::Steady;
            }
        }
        matches!(self.state, State::Steady)
    }

    /// Launch a retune attempt at `now` and return its (injected)
    /// outcome so the caller can build — or not build — the candidate:
    /// [`RetuneOutcome::Success`] and [`RetuneOutcome::Regression`]
    /// produce an engine (wrap the latter in [`RegressedBackend`]);
    /// compile failures and stalls produce none.
    pub fn begin_attempt(&mut self, now: f64) -> RetuneOutcome {
        let outcome = self
            .config
            .outcomes
            .outcome_of(self.stats.retunes_attempted);
        self.stats.retunes_attempted += 1;
        self.episode_attempts += 1;
        self.trace.push(LifecycleEvent::RetuneStarted {
            t_us: now,
            attempt: self.stats.retunes_attempted,
        });
        let deadline_us = now + self.config.retune_deadline_us.unwrap_or(f64::INFINITY);
        let resolution = match outcome {
            RetuneOutcome::Success | RetuneOutcome::Regression { .. } => {
                Resolution::Succeeds(now + self.retune_latency_us)
            }
            RetuneOutcome::CompileFail => Resolution::FailsCompile(now + self.retune_latency_us),
            RetuneOutcome::Stall => Resolution::Stalls,
        };
        self.state = State::Retuning {
            resolution,
            deadline_us,
        };
        outcome
    }

    /// Advance the machine at a due timer.
    pub fn on_timer(&mut self, now: f64) -> TimerAction {
        match self.state.clone() {
            State::Retuning {
                resolution,
                deadline_us,
            } => match resolution {
                Resolution::Succeeds(at) if at <= deadline_us && now >= at => {
                    if self.config.canary.is_some() {
                        self.shadow_acc = 0.0;
                        self.trace.push(LifecycleEvent::CanaryStarted {
                            t_us: now,
                            attempt: self.stats.retunes_attempted,
                        });
                        self.state = State::Canary {
                            incumbent_us: vec![0.0; self.num_shards],
                            candidate_us: vec![0.0; self.num_shards],
                            observed: 0,
                        };
                        TimerAction::BeginCanary
                    } else {
                        self.promote(now);
                        TimerAction::PromoteAll
                    }
                }
                Resolution::FailsCompile(at) if at <= deadline_us && now >= at => {
                    self.conclude_failure(now, FailReason::CompileFail);
                    TimerAction::DropCandidate
                }
                _ if now >= deadline_us => {
                    self.conclude_failure(now, FailReason::StallAbandoned);
                    TimerAction::DropCandidate
                }
                _ => TimerAction::Noop,
            },
            State::Backoff { until_us } if now >= until_us => TimerAction::Retry,
            State::Rollout {
                incumbent_us,
                candidate_us,
                next_shard,
                next_at_us,
            } if now >= next_at_us => {
                // Recheck before every step: a regression observed since
                // the verdict (shadowing continues on unpromoted shards)
                // aborts the rollout.
                if !shard_wins(
                    &incumbent_us,
                    &candidate_us,
                    next_shard,
                    self.canary_margin(),
                ) {
                    self.roll_back(now);
                    return TimerAction::RollBackAll;
                }
                self.trace.push(LifecycleEvent::ShardPromoted {
                    t_us: now,
                    shard: next_shard,
                });
                if next_shard + 1 == self.num_shards {
                    self.promote(now);
                } else {
                    self.state = State::Rollout {
                        incumbent_us,
                        candidate_us,
                        next_shard: next_shard + 1,
                        next_at_us: now + self.stagger_us,
                    };
                }
                TimerAction::PromoteShard(next_shard)
            }
            _ => TimerAction::Noop,
        }
    }

    /// Whether the machine is in a phase where the candidate shadows
    /// admitted chunks (canary window or staged rollout).
    pub fn in_canary(&self) -> bool {
        matches!(self.state, State::Canary { .. } | State::Rollout { .. })
    }

    /// Shards already switched to the candidate (`0..k` during a staged
    /// rollout, else 0).
    pub fn promoted_shards(&self) -> usize {
        match self.state {
            State::Rollout { next_shard, .. } => next_shard,
            _ => 0,
        }
    }

    /// Whether canaried chunks are routed to the candidate under real
    /// queueing ([`CanaryConfig::split_traffic`]) instead of
    /// shadow-executed side-by-side.
    pub fn split_traffic(&self) -> bool {
        self.config.canary.is_some_and(|c| c.split_traffic)
    }

    /// Deterministically sample whether the next admitted chunk is
    /// shadowed (an accumulator over the configured fraction).
    pub fn should_shadow(&mut self) -> bool {
        if !self.in_canary() {
            return false;
        }
        let fraction = self
            .config
            .canary
            .map(|c| c.shadow_fraction.clamp(0.0, 1.0))
            .unwrap_or(0.0);
        self.shadow_acc += fraction;
        if self.shadow_acc >= 1.0 - 1e-9 {
            self.shadow_acc -= 1.0;
            true
        } else {
            false
        }
    }

    /// Record one shadowed chunk: per-shard device time of the incumbent
    /// and the candidate (promoted shards contribute zeros). Returns the
    /// verdict once the canary window fills; during a rollout the sums
    /// keep accumulating and the verdict is re-checked at each
    /// promotion step instead.
    pub fn observe_canary(
        &mut self,
        now: f64,
        incumbent_us: &[f64],
        candidate_us: &[f64],
    ) -> CanaryVerdict {
        let margin = self.canary_margin();
        let window = self.config.canary.map(|c| c.window.max(1)).unwrap_or(1);
        match &mut self.state {
            State::Canary {
                incumbent_us: inc,
                candidate_us: cand,
                observed,
            } => {
                accumulate(inc, incumbent_us);
                accumulate(cand, candidate_us);
                *observed += 1;
                self.stats.canary_shadow_chunks += 1;
                self.stats.canary_overhead_us += candidate_us.iter().sum::<f64>();
                if *observed < window {
                    return CanaryVerdict::Pending;
                }
                let all_win = (0..self.num_shards).all(|s| shard_wins(inc, cand, s, margin));
                if all_win {
                    self.state = State::Rollout {
                        incumbent_us: std::mem::take(inc),
                        candidate_us: std::mem::take(cand),
                        next_shard: 0,
                        next_at_us: now,
                    };
                    CanaryVerdict::Promote
                } else {
                    self.roll_back(now);
                    CanaryVerdict::RollBack
                }
            }
            State::Rollout {
                incumbent_us: inc,
                candidate_us: cand,
                ..
            } => {
                accumulate(inc, incumbent_us);
                accumulate(cand, candidate_us);
                self.stats.canary_shadow_chunks += 1;
                self.stats.canary_overhead_us += candidate_us.iter().sum::<f64>();
                CanaryVerdict::Pending
            }
            _ => CanaryVerdict::Pending,
        }
    }

    /// Abort the canary/rollout immediately (e.g. the candidate refused
    /// a shadow batch). No-op outside a canary phase.
    pub fn force_rollback(&mut self, now: f64) {
        if self.in_canary() {
            self.roll_back(now);
        }
    }

    fn canary_margin(&self) -> f64 {
        self.config
            .canary
            .map(|c| c.min_win_margin.clamp(0.0, 1.0))
            .unwrap_or(0.0)
    }

    fn promote(&mut self, now: f64) {
        self.stats.retunes_promoted += 1;
        self.stats.engine_version += 1;
        self.trace.push(LifecycleEvent::Promoted {
            t_us: now,
            version: self.stats.engine_version,
        });
        self.end_episode(now);
    }

    fn roll_back(&mut self, now: f64) {
        self.stats.retunes_rolled_back += 1;
        self.trace.push(LifecycleEvent::RolledBack {
            t_us: now,
            attempt: self.stats.retunes_attempted,
        });
        self.retry_or_give_up(now);
    }

    fn conclude_failure(&mut self, now: f64, reason: FailReason) {
        self.stats.retunes_failed += 1;
        self.trace.push(LifecycleEvent::RetuneFailed {
            t_us: now,
            attempt: self.stats.retunes_attempted,
            reason,
        });
        self.retry_or_give_up(now);
    }

    fn retry_or_give_up(&mut self, now: f64) {
        let retry = self.config.retry;
        if self.episode_attempts < retry.max_attempts.max(1) {
            let exponent = self.episode_attempts.saturating_sub(1);
            let backoff = retry.base_backoff_us.max(0.0)
                * retry.backoff_multiplier.max(1.0).powi(exponent as i32);
            self.state = State::Backoff {
                until_us: now + backoff,
            };
        } else {
            self.trace.push(LifecycleEvent::GaveUp {
                t_us: now,
                attempts: self.episode_attempts,
            });
            self.end_episode(now);
        }
    }

    fn end_episode(&mut self, now: f64) {
        self.episode_attempts = 0;
        let cooldown = self.config.retry.cooldown_us.max(0.0);
        self.state = if cooldown > 0.0 {
            State::Cooldown {
                until_us: now + cooldown,
            }
        } else {
            State::Steady
        };
    }
}

fn accumulate(sums: &mut [f64], xs: &[f64]) {
    for (s, &x) in sums.iter_mut().zip(xs) {
        *s += x;
    }
}

/// Whether the candidate wins shard `s`: summed candidate device time at
/// or below the incumbent's, less the margin. Empty sums (a shard with
/// zero-cost shadow chunks) count as a win.
fn shard_wins(incumbent_us: &[f64], candidate_us: &[f64], s: usize, margin: f64) -> bool {
    candidate_us[s] <= incumbent_us[s] * (1.0 - margin)
}

/// A tuner-produced engine whose real device time is `slowdown`× what
/// the tuner measured — the [`RetuneOutcome::Regression`] failure mode
/// made executable, so a blind swap demonstrably serves slower while a
/// canary catches it.
pub struct RegressedBackend {
    inner: Box<dyn Backend>,
    slowdown: f64,
}

impl RegressedBackend {
    /// Wrap `inner`, stretching its latency by `slowdown` (clamped ≥ 1).
    pub fn new(inner: Box<dyn Backend>, slowdown: f64) -> Self {
        RegressedBackend {
            inner,
            slowdown: slowdown.max(1.0),
        }
    }
}

impl Backend for RegressedBackend {
    fn name(&self) -> &'static str {
        "Regressed"
    }

    fn supports(&self, model: &ModelConfig) -> bool {
        self.inner.supports(model)
    }

    fn run(
        &self,
        model: &ModelConfig,
        tables: &TableSet,
        batch: &Batch,
        arch: &GpuArch,
    ) -> Result<BackendRun, BackendError> {
        let mut run = self.inner.run(model, tables, batch, arch)?;
        run.latency_us *= self.slowdown;
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(config: LifecycleConfig) -> LifecycleMachine {
        LifecycleMachine::new(config, 1_000.0, 1, 0.0)
    }

    #[test]
    fn default_config_walks_the_blind_swap_path() {
        let mut m = machine(LifecycleConfig::default());
        assert!(m.wants_drift_retune(0.0));
        assert_eq!(m.begin_attempt(100.0), RetuneOutcome::Success);
        assert!(!m.wants_drift_retune(500.0), "in-flight attempt absorbs");
        assert_eq!(m.next_timer_us(), Some(1_100.0));
        assert_eq!(m.on_timer(1_100.0), TimerAction::PromoteAll);
        let stats = m.stats();
        assert_eq!(stats.retunes_attempted, 1);
        assert_eq!(stats.retunes_promoted, 1);
        assert_eq!(stats.engine_version, 1);
        assert_eq!(stats.retunes_failed, 0);
        assert!(m.wants_drift_retune(1_100.0), "no cooldown by default");
    }

    #[test]
    fn compile_fail_retries_with_exponential_backoff_then_gives_up() {
        let cfg = LifecycleConfig {
            outcomes: OutcomePlan::scripted(vec![RetuneOutcome::CompileFail; 5]),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_us: 1_000.0,
                backoff_multiplier: 2.0,
                cooldown_us: 10_000.0,
            },
            ..Default::default()
        };
        let mut m = machine(cfg);
        m.begin_attempt(0.0);
        assert_eq!(m.on_timer(1_000.0), TimerAction::DropCandidate);
        // First failure: backoff = base.
        assert_eq!(m.next_timer_us(), Some(2_000.0));
        assert_eq!(m.on_timer(2_000.0), TimerAction::Retry);
        m.begin_attempt(2_000.0);
        assert_eq!(m.on_timer(3_000.0), TimerAction::DropCandidate);
        // Second failure: backoff doubles.
        assert_eq!(m.next_timer_us(), Some(5_000.0));
        assert_eq!(m.on_timer(5_000.0), TimerAction::Retry);
        m.begin_attempt(5_000.0);
        assert_eq!(m.on_timer(6_000.0), TimerAction::DropCandidate);
        // Third failure exhausts the episode: cooldown, no more timers.
        assert_eq!(m.next_timer_us(), None);
        assert!(!m.wants_drift_retune(10_000.0), "cooling down");
        assert!(m.wants_drift_retune(16_000.0), "cooldown expired");
        let stats = m.stats();
        assert_eq!(stats.retunes_attempted, 3);
        assert_eq!(stats.retunes_failed, 3);
        assert_eq!(stats.retunes_promoted, 0);
        assert_eq!(stats.engine_version, 0);
        assert!(m
            .trace()
            .iter()
            .any(|e| matches!(e, LifecycleEvent::GaveUp { attempts: 3, .. })));
    }

    #[test]
    fn stall_is_abandoned_only_by_the_watchdog() {
        let cfg = LifecycleConfig {
            outcomes: OutcomePlan::scripted(vec![RetuneOutcome::Stall]),
            retune_deadline_us: Some(4_000.0),
            retry: RetryPolicy {
                max_attempts: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut m = machine(cfg);
        m.begin_attempt(0.0);
        assert_eq!(m.next_timer_us(), Some(4_000.0), "only the deadline");
        assert_eq!(m.on_timer(4_000.0), TimerAction::DropCandidate);
        assert_eq!(m.stats().retunes_failed, 1);
        assert!(matches!(
            m.trace().last(),
            Some(LifecycleEvent::GaveUp { .. })
        ));
    }

    #[test]
    fn stall_without_a_deadline_wedges_forever() {
        let cfg = LifecycleConfig {
            outcomes: OutcomePlan::scripted(vec![RetuneOutcome::Stall]),
            ..Default::default()
        };
        let mut m = machine(cfg);
        m.begin_attempt(0.0);
        assert_eq!(m.next_timer_us(), None, "no watchdog, no timer");
        assert!(!m.wants_drift_retune(1e9), "wedged attempt absorbs drift");
    }

    #[test]
    fn canary_promotes_a_winner_and_rolls_back_a_loser() {
        let cfg = LifecycleConfig {
            canary: Some(CanaryConfig {
                shadow_fraction: 1.0,
                window: 2,
                min_win_margin: 0.0,
                split_traffic: false,
            }),
            ..Default::default()
        };
        // Winner: candidate strictly faster.
        let mut m = machine(cfg.clone());
        m.begin_attempt(0.0);
        assert_eq!(m.on_timer(1_000.0), TimerAction::BeginCanary);
        assert!(m.in_canary());
        assert!(m.should_shadow(), "fraction 1.0 shadows every chunk");
        assert_eq!(
            m.observe_canary(1_100.0, &[10.0], &[8.0]),
            CanaryVerdict::Pending
        );
        assert!(m.should_shadow());
        assert_eq!(
            m.observe_canary(1_200.0, &[10.0], &[8.0]),
            CanaryVerdict::Promote
        );
        assert_eq!(m.next_timer_us(), Some(1_200.0), "rollout starts now");
        assert_eq!(m.on_timer(1_200.0), TimerAction::PromoteShard(0));
        assert_eq!(m.stats().retunes_promoted, 1);
        assert_eq!(m.stats().engine_version, 1);
        assert_eq!(m.stats().canary_shadow_chunks, 2);
        assert!((m.stats().canary_overhead_us - 16.0).abs() < 1e-9);

        // Loser: candidate slower — rolled back, never promoted.
        let mut m = machine(cfg);
        m.begin_attempt(0.0);
        m.on_timer(1_000.0);
        m.should_shadow();
        m.observe_canary(1_100.0, &[10.0], &[12.0]);
        m.should_shadow();
        assert_eq!(
            m.observe_canary(1_200.0, &[10.0], &[12.0]),
            CanaryVerdict::RollBack
        );
        assert_eq!(m.stats().retunes_rolled_back, 1);
        assert_eq!(m.stats().engine_version, 0);
    }

    #[test]
    fn win_margin_demands_a_real_improvement() {
        let cfg = LifecycleConfig {
            canary: Some(CanaryConfig {
                shadow_fraction: 1.0,
                window: 1,
                min_win_margin: 0.10,
                split_traffic: false,
            }),
            retry: RetryPolicy {
                max_attempts: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut m = machine(cfg);
        m.begin_attempt(0.0);
        m.on_timer(1_000.0);
        m.should_shadow();
        // 5% faster is not 10% faster.
        assert_eq!(
            m.observe_canary(1_100.0, &[100.0], &[95.0]),
            CanaryVerdict::RollBack
        );
    }

    #[test]
    fn staged_rollout_promotes_shard_by_shard_and_aborts_on_regression() {
        let cfg = LifecycleConfig {
            canary: Some(CanaryConfig {
                shadow_fraction: 1.0,
                window: 1,
                min_win_margin: 0.0,
                split_traffic: false,
            }),
            retry: RetryPolicy {
                max_attempts: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        // Clean staged rollout over 3 shards.
        let mut m = LifecycleMachine::new(cfg.clone(), 1_000.0, 3, 500.0);
        m.begin_attempt(0.0);
        m.on_timer(1_000.0);
        m.should_shadow();
        assert_eq!(
            m.observe_canary(1_100.0, &[5.0, 5.0, 5.0], &[4.0, 4.0, 4.0]),
            CanaryVerdict::Promote
        );
        assert_eq!(m.on_timer(1_100.0), TimerAction::PromoteShard(0));
        assert_eq!(m.promoted_shards(), 1);
        assert_eq!(m.next_timer_us(), Some(1_600.0), "stagger spaces steps");
        assert_eq!(m.on_timer(1_600.0), TimerAction::PromoteShard(1));
        assert_eq!(m.on_timer(2_100.0), TimerAction::PromoteShard(2));
        assert_eq!(m.stats().retunes_promoted, 1);
        assert!(!m.in_canary(), "rollout complete");

        // Regression surfacing mid-rollout aborts everything.
        let mut m = LifecycleMachine::new(cfg, 1_000.0, 3, 500.0);
        m.begin_attempt(0.0);
        m.on_timer(1_000.0);
        m.should_shadow();
        m.observe_canary(1_100.0, &[5.0, 5.0, 5.0], &[4.0, 4.0, 4.0]);
        assert_eq!(m.on_timer(1_100.0), TimerAction::PromoteShard(0));
        // Shadowing continues on unpromoted shards; shard 1 regresses.
        m.should_shadow();
        m.observe_canary(1_300.0, &[0.0, 5.0, 5.0], &[0.0, 50.0, 4.0]);
        assert_eq!(m.on_timer(1_600.0), TimerAction::RollBackAll);
        assert_eq!(m.stats().retunes_rolled_back, 1);
        assert_eq!(m.stats().retunes_promoted, 0);
        assert_eq!(m.promoted_shards(), 0);
    }

    #[test]
    fn shadow_fraction_samples_deterministically() {
        let cfg = LifecycleConfig {
            canary: Some(CanaryConfig {
                shadow_fraction: 0.5,
                window: 100,
                min_win_margin: 0.0,
                split_traffic: false,
            }),
            ..Default::default()
        };
        let mut m = machine(cfg);
        m.begin_attempt(0.0);
        m.on_timer(1_000.0);
        let pattern: Vec<bool> = (0..6).map(|_| m.should_shadow()).collect();
        assert_eq!(pattern, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn outcome_plans_replay_bit_for_bit() {
        let spec = OutcomeSpec::flaky();
        let a = spec.plan(32, 7);
        let b = spec.plan(32, 7);
        assert_eq!(a, b);
        assert_ne!(a, spec.plan(32, 8), "different seed differs");
        assert!(
            a.outcomes
                .iter()
                .any(|o| !matches!(o, RetuneOutcome::Success)),
            "a flaky tuner must fail somewhere in 32 draws"
        );
        assert!(OutcomePlan::none().is_all_success());
        assert_eq!(
            OutcomePlan::none().outcome_of(17),
            RetuneOutcome::Success,
            "attempts past the plan succeed"
        );
    }

    #[test]
    fn regressed_backend_stretches_latency_only() {
        use recflex_baselines::TorchRecBackend;
        use recflex_data::ModelPreset;
        use recflex_embedding::TableSet;

        let m = ModelPreset::A.scaled(0.01);
        let t = TableSet::for_model(&m);
        let arch = GpuArch::v100();
        let batch = Batch::generate(&m, 64, 3);
        let clean = TorchRecBackend::compile(&m);
        let base = clean.run(&m, &t, &batch, &arch).unwrap();
        let slow = RegressedBackend::new(Box::new(TorchRecBackend::compile(&m)), 3.0);
        let run = slow.run(&m, &t, &batch, &arch).unwrap();
        assert!((run.latency_us - 3.0 * base.latency_us).abs() < 1e-9);
        assert_eq!(run.kernel_launches, base.kernel_launches);
        assert_eq!(run.output, base.output);
    }

    #[test]
    fn staged_schedule_spaces_stages_like_a_rollout() {
        let s = StagedSchedule::new(1_000.0, 3, 250.0);
        assert_eq!(s.stage_us(0), 1_000.0);
        assert_eq!(s.stage_us(1), 1_250.0);
        assert_eq!(s.stage_us(2), 1_500.0);
        assert_eq!(s.complete_us(), 1_500.0);
    }

    #[test]
    fn staged_schedule_clamps_degenerate_inputs() {
        let s = StagedSchedule::new(500.0, 0, -10.0);
        assert_eq!(s.stages, 1, "at least one stage always commits");
        assert_eq!(s.stagger_us, 0.0);
        assert_eq!(s.complete_us(), 500.0);
    }
}
