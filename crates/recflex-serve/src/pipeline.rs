//! Deadline-budgeted multi-stage serving pipelines.
//!
//! Real recommendation serving is a cascade, not a single scoring call:
//! a cheap **retrieval** stage fans a request out into a candidate set,
//! an optional **filtering** stage prunes it, and an expensive
//! **ranking** stage scores what survives (DeepRecSys / RecPipe). Each
//! stage here is backed by its own tuned [`ShardedServeRuntime`] with
//! its own batch policy and candidate count, and owns a *share* of the
//! end-to-end SLO: a [`DeadlineBudget`] is threaded through the request
//! path, every stage consumes measured time from what remains, and the
//! surplus of a fast stage rolls forward to the stages behind it.
//!
//! Stage fan-out is also where naive robustness goes metastable: a
//! transient stall plus unbounded per-stage retries turns into a retry
//! storm that outlives the fault. The [`StagePolicy`] therefore decides
//! — deterministically, from the seeded event timeline — what a late or
//! faulted stage attempt does:
//!
//! * **retry** under a token-bucket [`RetryBudget`] that caps
//!   fleet-wide retry amplification, shrinking the candidate count
//!   along the stage's degradation ladder;
//! * **fall back** once the per-stage [`CircuitBreaker`] trips
//!   (closed → open → half-open on the leaky-bucket
//!   [`PressureSignal`](crate::PressureSignal) idiom): ranking falls
//!   back to retrieval-order scores, filtering is skipped — the answer
//!   arrives *within its budget share*, flagged in the per-stage
//!   `degraded` mask, instead of shedding.
//!
//! Determinism: stage attempts are served by the (bit-replayable)
//! sharded tier, and all policy decisions run over the resulting
//! completion/shed events in `(time, id)` order, so a pipeline run is a
//! pure function of `(spec, stage tiers, stream)`. The degenerate
//! 1-stage pipeline takes the plain [`ShardedServeRuntime::serve`] path
//! and reproduces it byte-for-byte.
//!
//! Modeling note: retry waves are served as fresh passes over the stage
//! tier at their absolute timestamps — retries see the stage's fault
//! windows and their own admission gates, but not queueing contention
//! from the wave before them. Amplification is therefore accounted in
//! execution counts (what the retry-storm gate bounds), not in
//! cross-wave queue growth.

use crate::faults::{PressureSignal, PressureTracker};
use crate::request::Request;
use crate::runtime::ServeError;
use crate::sharded::ShardedServeRuntime;
use crate::stats::{ShardedReport, ShedReason};
use recflex_data::{Batch, BreakerStateStat, PipelineReport, StageStats};

/// Attempt waves per stage the runtime will serve before forcing an
/// outcome — a determinism backstop, far above any sane retry policy.
const MAX_WAVES: u32 = 16;

/// What a pipeline stage computes, which fixes its fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Candidate generation. No fallback exists — a request whose
    /// retrieval ultimately fails is shed.
    Retrieval,
    /// Candidate pruning. Fallback: skip the stage (serve unfiltered).
    Filtering,
    /// Candidate scoring. Fallback: keep retrieval-order scores.
    Ranking,
}

impl StageKind {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Retrieval => "retrieval",
            StageKind::Filtering => "filtering",
            StageKind::Ranking => "ranking",
        }
    }

    /// Whether a tripped breaker / exhausted retry budget can answer
    /// from a fallback instead of shedding.
    pub fn has_fallback(self) -> bool {
        !matches!(self, StageKind::Retrieval)
    }
}

/// One stage of a [`PipelineSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// What the stage computes (fixes its fallback semantics).
    pub kind: StageKind,
    /// Candidate count the stage scores at full quality — the batch
    /// size of the stage's derived request (≥ 1). The quality-vs-
    /// latency knob of the pipeline.
    pub candidates: u32,
    /// The stage's share of the end-to-end SLO, as a fraction. Shares
    /// are clamped and, when they sum past 1, normalized by
    /// [`DeadlineBudget::stage_shares`] so budgets never over-commit.
    pub budget_frac: f64,
    /// Candidate counts successive retries degrade through (first
    /// retry uses `degrade_ladder[0]`, …; past the end, the last rung
    /// repeats). Empty keeps retries at full `candidates`.
    pub degrade_ladder: Vec<u32>,
}

impl StageSpec {
    /// A retrieval stage.
    pub fn retrieval(candidates: u32, budget_frac: f64) -> Self {
        StageSpec {
            kind: StageKind::Retrieval,
            candidates,
            budget_frac,
            degrade_ladder: Vec::new(),
        }
    }

    /// A filtering stage.
    pub fn filtering(candidates: u32, budget_frac: f64) -> Self {
        StageSpec {
            kind: StageKind::Filtering,
            candidates,
            budget_frac,
            degrade_ladder: Vec::new(),
        }
    }

    /// A ranking stage.
    pub fn ranking(candidates: u32, budget_frac: f64) -> Self {
        StageSpec {
            kind: StageKind::Ranking,
            candidates,
            budget_frac,
            degrade_ladder: Vec::new(),
        }
    }

    /// Attach a degradation ladder.
    pub fn with_ladder(mut self, ladder: Vec<u32>) -> Self {
        self.degrade_ladder = ladder;
        self
    }

    /// The candidate count attempt `attempt` runs at (attempt 0 is the
    /// first try).
    fn candidates_at(&self, attempt: u32) -> u32 {
        if attempt == 0 || self.degrade_ladder.is_empty() {
            return self.candidates.max(1);
        }
        let i = (attempt as usize - 1).min(self.degrade_ladder.len() - 1);
        self.degrade_ladder[i].max(1)
    }
}

/// Per-request deadline-budget arithmetic: a fixed end-to-end total,
/// consumed by measured stage time, never negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineBudget {
    total_us: f64,
    spent_us: f64,
}

impl DeadlineBudget {
    /// A fresh budget of `total_us` (clamped at ≥ 0).
    pub fn new(total_us: f64) -> Self {
        DeadlineBudget {
            total_us: total_us.max(0.0),
            spent_us: 0.0,
        }
    }

    /// The end-to-end total, µs.
    pub fn total_us(&self) -> f64 {
        self.total_us
    }

    /// Time consumed so far, µs.
    pub fn spent_us(&self) -> f64 {
        self.spent_us
    }

    /// What is left, µs — clamped at 0, never negative.
    pub fn remaining_us(&self) -> f64 {
        (self.total_us - self.spent_us).max(0.0)
    }

    /// Consume `us` of measured time (negative charges are ignored —
    /// time does not flow backwards).
    pub fn consume(&mut self, us: f64) {
        self.spent_us += us.max(0.0);
    }

    /// True once the budget is fully spent.
    pub fn is_exhausted(&self) -> bool {
        self.remaining_us() <= 0.0
    }

    /// Split `total_us` into per-stage shares from the stages' budget
    /// fractions. Each fraction is clamped to `[0, 1]`; when the
    /// clamped fractions sum past 1 they are normalized, so the shares
    /// always sum to ≤ `total_us` and no stage can over-commit the SLO.
    pub fn stage_shares(total_us: f64, fracs: &[f64]) -> Vec<f64> {
        let total_us = total_us.max(0.0);
        let clamped: Vec<f64> = fracs
            .iter()
            .map(|f| {
                if f.is_finite() {
                    f.clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect();
        let sum: f64 = clamped.iter().sum();
        let scale = if sum > 1.0 { 1.0 / sum } else { 1.0 };
        clamped.iter().map(|f| f * scale * total_us).collect()
    }
}

/// Token-bucket cap on fleet-wide retry amplification: every retry
/// spends one token; tokens refill at a fixed rate up to a burst cap.
/// All draw is in simulated time, so grants replay deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Bucket capacity, tokens (≥ 0).
    pub burst: f64,
    /// Refill rate, tokens per simulated millisecond.
    pub refill_per_ms: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            burst: 4.0,
            refill_per_ms: 0.5,
        }
    }
}

/// The live token bucket (one per pipeline run, shared by all stages —
/// the budget is fleet-wide, not per-stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    config: RetryBudgetConfig,
    tokens: f64,
    last_us: f64,
}

impl RetryBudget {
    /// A full bucket.
    pub fn new(config: RetryBudgetConfig) -> Self {
        RetryBudget {
            config,
            tokens: config.burst.max(0.0),
            last_us: 0.0,
        }
    }

    /// Take one token at simulated instant `now`; `false` means the
    /// retry is denied. Out-of-order instants refill conservatively
    /// (elapsed time below the high-water mark counts as zero).
    pub fn take(&mut self, now: f64) -> bool {
        let dt = (now - self.last_us).max(0.0);
        self.tokens = (self.tokens + dt * self.config.refill_per_ms / 1_000.0)
            .min(self.config.burst.max(0.0));
        self.last_us = self.last_us.max(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// How failure observations (1.0 = failure, 0.0 = success) fold
    /// into pressure. [`PressureSignal::Instantaneous`] trips on the
    /// first failure; the leaky bucket needs sustained failure.
    pub signal: PressureSignal,
    /// Pressure at or above which a closed breaker opens (in `[0, 1]`
    /// for the failure signal).
    pub trip_threshold: f64,
    /// How long an open breaker waits before letting one half-open
    /// probe through, µs.
    pub cooldown_us: f64,
}

impl BreakerConfig {
    /// A sensible default scaled to an end-to-end SLO: leaky-bucket
    /// failure pressure with `tau = slo/2`, trip at 0.5, cooldown one
    /// SLO.
    pub fn for_slo(slo_us: f64) -> Self {
        BreakerConfig {
            signal: PressureSignal::LeakyBucket {
                tau_us: (slo_us / 2.0).max(1.0),
            },
            trip_threshold: 0.5,
            cooldown_us: slo_us.max(1.0),
        }
    }
}

/// Per-stage circuit breaker: closed → open on failure pressure, open →
/// half-open after the cooldown (one probe), half-open → closed on a
/// probe success or back to open on a probe failure.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    tracker: PressureTracker,
    state: BreakerStateStat,
    opened_at_us: f64,
    trips: u64,
    /// `(instant, entered state)`, in observation order.
    transitions: Vec<(f64, BreakerStateStat)>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            tracker: PressureTracker::default(),
            state: BreakerStateStat::Closed,
            opened_at_us: 0.0,
            trips: 0,
            transitions: Vec::new(),
        }
    }

    /// Fold in one attempt outcome at `now`. Closed: trips when the
    /// pressure crosses the threshold. Half-open: the observation *is*
    /// the probe verdict — success closes (and drains the bucket),
    /// failure re-opens.
    pub fn observe(&mut self, now: f64, failure: bool) {
        let raw = if failure { 1.0 } else { 0.0 };
        let pressure = self.tracker.observe(now, raw, self.config.signal);
        match self.state {
            BreakerStateStat::Closed if pressure >= self.config.trip_threshold => {
                self.trip(now);
            }
            BreakerStateStat::HalfOpen => {
                if failure {
                    self.trip(now);
                } else {
                    self.tracker = PressureTracker::default();
                    self.enter(now, BreakerStateStat::Closed);
                }
            }
            _ => {}
        }
    }

    /// Whether a retry may execute at `now`. Closed admits; open admits
    /// nothing until the cooldown elapses, then flips half-open and
    /// admits exactly one probe; half-open admits nothing further until
    /// the probe's outcome is observed.
    pub fn admits_retry(&mut self, now: f64) -> bool {
        match self.state {
            BreakerStateStat::Closed => true,
            BreakerStateStat::Open => {
                if now >= self.opened_at_us + self.config.cooldown_us {
                    self.enter(now, BreakerStateStat::HalfOpen);
                    true
                } else {
                    false
                }
            }
            BreakerStateStat::HalfOpen => false,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerStateStat {
        self.state
    }

    /// Closed → open trips so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The full `(instant, entered state)` transition log.
    pub fn transitions(&self) -> &[(f64, BreakerStateStat)] {
        &self.transitions
    }

    fn trip(&mut self, now: f64) {
        self.trips += 1;
        self.opened_at_us = now;
        self.enter(now, BreakerStateStat::Open);
    }

    fn enter(&mut self, now: f64, state: BreakerStateStat) {
        self.state = state;
        self.transitions.push((now, state));
    }
}

/// How late/faulted stage attempts are handled.
#[derive(Debug, Clone, PartialEq)]
pub enum StagePolicy {
    /// Retry every failure until the attempt cap, at full candidate
    /// count, with no breaker and no fallback — the metastable baseline
    /// the budgeted policy is graded against. A request whose attempts
    /// exhaust keeps its earliest (late) completion if any attempt
    /// finished at all, else sheds.
    NaiveRetry {
        /// Attempts per (request, stage), ≥ 1.
        max_attempts: u32,
        /// Delay before re-offering an admission-shed attempt, µs
        /// (late attempts retry at their timeout instant).
        shed_backoff_us: f64,
    },
    /// Retries gated by the token-bucket [`RetryBudget`] and the
    /// per-stage [`CircuitBreaker`], degrading along the stage ladder;
    /// fallback instead of shed once retries are denied or the breaker
    /// is open.
    Budgeted(BudgetedPolicy),
}

/// Tuning of [`StagePolicy::Budgeted`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetedPolicy {
    /// The fleet-wide retry token bucket.
    pub retry: RetryBudgetConfig,
    /// Per-stage breaker tuning.
    pub breaker: BreakerConfig,
    /// Attempts per (request, stage), ≥ 1.
    pub max_attempts: u32,
    /// Delay before re-offering an admission-shed attempt, µs.
    pub shed_backoff_us: f64,
}

impl BudgetedPolicy {
    /// Defaults scaled to an end-to-end SLO.
    pub fn for_slo(slo_us: f64) -> Self {
        BudgetedPolicy {
            retry: RetryBudgetConfig::default(),
            breaker: BreakerConfig::for_slo(slo_us),
            max_attempts: 2,
            shed_backoff_us: (slo_us / 16.0).max(1.0),
        }
    }
}

/// The full pipeline shape: stages, their SLO shares, and the failure
/// policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// End-to-end SLO every answer is measured against, µs.
    pub slo_us: f64,
    /// The stages, in request order (1–3).
    pub stages: Vec<StageSpec>,
    /// What late/faulted attempts do.
    pub policy: StagePolicy,
    /// Seed deriving per-(stage, request, attempt) candidate batches.
    pub seed: u64,
}

/// One per-request outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRecord {
    /// Stream-unique request id.
    pub id: u64,
    /// Arrival instant, µs.
    pub arrival_us: f64,
    /// Final answer instant, µs (arrival for shed requests).
    pub done_us: f64,
    /// True when the pipeline produced no answer.
    pub shed: bool,
    /// Per-stage degradation mask: `degraded_stages[k]` is set when
    /// stage `k` answered from its fallback or a shrunken candidate
    /// count.
    pub degraded_stages: Vec<bool>,
    /// Stage executions this request consumed (attempts, all stages).
    pub attempts: u32,
}

impl PipelineRecord {
    /// End-to-end latency, µs (0 for shed requests).
    pub fn latency_us(&self) -> f64 {
        if self.shed {
            0.0
        } else {
            self.done_us - self.arrival_us
        }
    }

    /// True when any stage answered degraded.
    pub fn degraded(&self) -> bool {
        self.degraded_stages.iter().any(|&d| d)
    }
}

/// Everything a pipeline run produced.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The end-to-end SLO, µs.
    pub slo_us: f64,
    /// Per-request outcomes, in offered order.
    pub records: Vec<PipelineRecord>,
    /// Per-stage aggregate statistics, in pipeline order.
    pub stage_stats: Vec<StageStats>,
    /// Each stage's first-attempt (wave-0) tier report. For a 1-stage
    /// pipeline, `stage_wave0[0]` is byte-identical to what
    /// [`ShardedServeRuntime::serve`] returns on the same stream.
    pub stage_wave0: Vec<ShardedReport>,
}

impl PipelineOutcome {
    /// Fraction of offered requests answered within the SLO (degraded
    /// answers count; late and shed ones do not).
    pub fn availability(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| !r.shed && r.latency_us() <= self.slo_us + 1e-9)
            .count();
        ok as f64 / self.records.len() as f64
    }

    /// Nearest-rank latency percentile over answered requests, µs.
    pub fn percentile_us(&self, q: f64) -> f64 {
        let mut lat: Vec<f64> = self
            .records
            .iter()
            .filter(|r| !r.shed)
            .map(PipelineRecord::latency_us)
            .collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(f64::total_cmp);
        let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    }

    /// Distill into the plain [`PipelineReport`] the benches serialize.
    pub fn report(&self) -> PipelineReport {
        let offered = self.records.len() as u64;
        let answered = self.records.iter().filter(|r| !r.shed).count() as u64;
        let answered_in_slo = self
            .records
            .iter()
            .filter(|r| !r.shed && r.latency_us() <= self.slo_us + 1e-9)
            .count() as u64;
        let degraded_answers = self
            .records
            .iter()
            .filter(|r| !r.shed && r.degraded())
            .count() as u64;
        let total_executions: u64 = self.stage_stats.iter().map(|s| s.executions).sum();
        let total_admitted: u64 = self.stage_stats.iter().map(|s| s.admitted).sum();
        let makespan_us = self
            .records
            .iter()
            .map(|r| r.done_us)
            .fold(0.0f64, f64::max);
        PipelineReport {
            slo_us: self.slo_us,
            offered,
            answered,
            answered_in_slo,
            degraded_answers,
            availability: self.availability(),
            p50_us: self.percentile_us(0.5),
            p99_us: self.percentile_us(0.99),
            makespan_us,
            total_executions,
            total_admitted,
            amplification: if total_admitted == 0 {
                1.0
            } else {
                total_executions as f64 / total_admitted as f64
            },
            stages: self.stage_stats.clone(),
        }
    }
}

/// A staged serving pipeline: one sharded tier per stage plus the spec
/// tying their budgets and failure policy together.
pub struct PipelineRuntime<'a> {
    spec: PipelineSpec,
    tiers: Vec<ShardedServeRuntime<'a>>,
}

/// One in-flight stage attempt.
#[derive(Debug, Clone)]
struct Entry {
    /// Index into the offered request stream.
    ri: usize,
    /// The request's stream id.
    id: u64,
    /// When the attempt's input is available, µs.
    ready_us: f64,
    /// Candidate count this attempt runs at.
    candidates: u32,
    /// 0 for the first try.
    attempt: u32,
}

/// Per-request pipeline state while stages run.
#[derive(Debug, Clone)]
struct LiveReq {
    ready_us: f64,
    budget: DeadlineBudget,
    degraded: Vec<bool>,
    attempts: u32,
    /// Earliest completion of a late attempt (naive keeps it as the
    /// answer when retries exhaust), ∞ when none finished.
    best_late_done_us: f64,
    shed: bool,
}

/// What one served attempt turned into.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AttemptOutcome {
    /// Finished within its deadline share at `done`.
    Success { done_us: f64 },
    /// Finished, but past its share — detected at the timeout instant.
    Late { done_us: f64, detect_us: f64 },
    /// Shed at admission — detected immediately.
    Shed { detect_us: f64 },
}

impl<'a> PipelineRuntime<'a> {
    /// Validate and assemble a pipeline. `tiers[k]` serves stage `k` of
    /// `spec.stages`.
    pub fn new(
        spec: PipelineSpec,
        tiers: Vec<ShardedServeRuntime<'a>>,
    ) -> Result<Self, ServeError> {
        if spec.stages.is_empty() || spec.stages.len() > 3 {
            return Err(ServeError::Policy("a pipeline has 1 to 3 stages"));
        }
        if spec.stages.len() != tiers.len() {
            return Err(ServeError::Policy("one serving tier per pipeline stage"));
        }
        if !spec.slo_us.is_finite() || spec.slo_us <= 0.0 {
            return Err(ServeError::Policy(
                "pipeline slo_us must be finite and positive",
            ));
        }
        for stage in &spec.stages {
            if stage.candidates == 0 {
                return Err(ServeError::Policy(
                    "stage candidate count must be at least 1",
                ));
            }
            if !stage.budget_frac.is_finite() || stage.budget_frac <= 0.0 {
                return Err(ServeError::Policy(
                    "stage budget fraction must be finite and positive",
                ));
            }
            if stage.degrade_ladder.contains(&0) {
                return Err(ServeError::Policy(
                    "degradation ladder rungs must be at least 1",
                ));
            }
        }
        match &spec.policy {
            StagePolicy::NaiveRetry { max_attempts, .. } => {
                if *max_attempts == 0 {
                    return Err(ServeError::Policy("max_attempts must be at least 1"));
                }
            }
            StagePolicy::Budgeted(b) => {
                if b.max_attempts == 0 {
                    return Err(ServeError::Policy("max_attempts must be at least 1"));
                }
            }
        }
        Ok(PipelineRuntime { spec, tiers })
    }

    /// The spec this pipeline runs.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The per-stage serving tiers.
    pub fn tiers(&self) -> &[ShardedServeRuntime<'a>] {
        &self.tiers
    }

    /// Mutable access to one stage's tier (for swapping fault plans
    /// between scenario cells, like the chaos benches do).
    pub fn tier_mut(&mut self, stage: usize) -> Option<&mut ShardedServeRuntime<'a>> {
        self.tiers.get_mut(stage)
    }

    /// Swap the failure policy between sweep cells (tiers stay built).
    pub fn set_policy(&mut self, policy: StagePolicy) {
        self.spec.policy = policy;
    }

    /// Swap one stage's fault plan between scenario cells.
    pub fn set_stage_plan(&mut self, stage: usize, plan: crate::faults::FaultPlan) {
        if let Some(tier) = self.tiers.get_mut(stage) {
            tier.resilience.plan = plan;
        }
    }

    /// Re-point one stage's full-quality candidate count (the sweep
    /// knob). Rejects 0 like [`PipelineRuntime::new`] does.
    pub fn set_stage_candidates(
        &mut self,
        stage: usize,
        candidates: u32,
    ) -> Result<(), ServeError> {
        if candidates == 0 {
            return Err(ServeError::Policy(
                "stage candidate count must be at least 1",
            ));
        }
        if let Some(s) = self.spec.stages.get_mut(stage) {
            s.candidates = candidates;
        }
        Ok(())
    }

    /// Serve an offered request stream end to end.
    pub fn serve(&self, requests: &[Request]) -> Result<PipelineOutcome, ServeError> {
        if self.spec.stages.len() == 1 {
            return self.serve_degenerate(requests);
        }
        self.serve_staged(requests)
    }

    /// The 1-stage fast path: exactly [`ShardedServeRuntime::serve`],
    /// wrapped — no deadline plumbing, no policy machinery, so the
    /// report is byte-identical to the plain tier's.
    fn serve_degenerate(&self, requests: &[Request]) -> Result<PipelineOutcome, ServeError> {
        let report = self.tiers[0].serve(requests)?;
        let mut stats = StageStats::named(self.spec.stages[0].kind.label());
        let mut records = Vec::with_capacity(report.records.len());
        let mut in_budget = 0u64;
        for rec in &report.records {
            let shed = rec.base.shed != ShedReason::None;
            if shed {
                stats.faulted += 1;
            } else {
                stats.admitted += 1;
                stats.executions += 1;
                let lat = rec.base.done_us - rec.base.arrival_us;
                if lat <= self.spec.slo_us + 1e-9 {
                    in_budget += 1;
                } else {
                    stats.late += 1;
                }
            }
            records.push(PipelineRecord {
                id: rec.base.id,
                arrival_us: rec.base.arrival_us,
                done_us: rec.base.done_us,
                shed,
                degraded_stages: vec![rec.degraded],
                attempts: u32::from(!shed),
            });
        }
        stats.attainment = if stats.admitted == 0 {
            1.0
        } else {
            in_budget as f64 / stats.admitted as f64
        };
        Ok(PipelineOutcome {
            slo_us: self.spec.slo_us,
            records,
            stage_stats: vec![stats],
            stage_wave0: vec![report],
        })
    }

    fn serve_staged(&self, requests: &[Request]) -> Result<PipelineOutcome, ServeError> {
        let num_stages = self.spec.stages.len();
        let shares = DeadlineBudget::stage_shares(
            self.spec.slo_us,
            &self
                .spec
                .stages
                .iter()
                .map(|s| s.budget_frac)
                .collect::<Vec<_>>(),
        );
        let mut live: Vec<LiveReq> = requests
            .iter()
            .map(|r| LiveReq {
                ready_us: r.arrival_us,
                budget: DeadlineBudget::new(self.spec.slo_us),
                degraded: vec![false; num_stages],
                attempts: 0,
                best_late_done_us: f64::INFINITY,
                shed: false,
            })
            .collect();
        let mut retry_budget = match &self.spec.policy {
            StagePolicy::Budgeted(b) => Some(RetryBudget::new(b.retry)),
            StagePolicy::NaiveRetry { .. } => None,
        };
        let mut stage_stats = Vec::with_capacity(num_stages);
        let mut stage_wave0 = Vec::with_capacity(num_stages);

        for (k, stage) in self.spec.stages.iter().enumerate() {
            let mut stats = StageStats::named(stage.kind.label());
            let mut breaker = match &self.spec.policy {
                StagePolicy::Budgeted(b) => Some(CircuitBreaker::new(b.breaker)),
                StagePolicy::NaiveRetry { .. } => None,
            };
            // Where each surviving request stood when it entered the
            // stage, for per-stage budget attainment.
            let entry_ready: Vec<f64> = live.iter().map(|l| l.ready_us).collect();

            let mut wave: Vec<Entry> = live
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.shed)
                .map(|(ri, l)| Entry {
                    ri,
                    id: requests[ri].id,
                    ready_us: l.ready_us,
                    candidates: stage.candidates_at(0),
                    attempt: 0,
                })
                .collect();
            stats.admitted += wave.len() as u64;
            let mut wave_no = 0u32;

            while !wave.is_empty() && wave_no < MAX_WAVES {
                wave.sort_by(|a, b| a.ready_us.total_cmp(&b.ready_us).then(a.id.cmp(&b.id)));
                let mut stream = Vec::with_capacity(wave.len());
                let mut deadlines = Vec::with_capacity(wave.len());
                for e in &wave {
                    let share = shares[k].min(live[e.ri].budget.remaining_us());
                    stream.push(Request {
                        id: e.id,
                        arrival_us: e.ready_us,
                        batch: self.stage_batch(k, e, requests),
                    });
                    deadlines.push(e.ready_us + share);
                }
                let report = self.tiers[k].serve_with_deadlines(&stream, &deadlines)?;
                stats.executions += wave.len() as u64;
                if wave_no > 0 {
                    stats.retries += wave.len() as u64;
                }
                for e in &wave {
                    live[e.ri].attempts += 1;
                }

                // Policy decisions run over the wave's outcomes in
                // (event time, id) order, so breaker and token-bucket
                // state evolve on one deterministic timeline.
                let mut events: Vec<(f64, usize)> = Vec::with_capacity(wave.len());
                let mut outcomes: Vec<AttemptOutcome> = Vec::with_capacity(wave.len());
                for (j, rec) in report.records.iter().enumerate() {
                    let outcome = if rec.base.shed != ShedReason::None {
                        AttemptOutcome::Shed {
                            detect_us: rec.base.done_us,
                        }
                    } else if rec.base.done_us > deadlines[j] + 1e-9 {
                        AttemptOutcome::Late {
                            done_us: rec.base.done_us,
                            detect_us: deadlines[j],
                        }
                    } else {
                        AttemptOutcome::Success {
                            done_us: rec.base.done_us,
                        }
                    };
                    let t = match outcome {
                        AttemptOutcome::Success { done_us } => done_us,
                        AttemptOutcome::Late { detect_us, .. } => detect_us,
                        AttemptOutcome::Shed { detect_us } => detect_us,
                    };
                    events.push((t, j));
                    outcomes.push(outcome);
                }
                events.sort_by(|a, b| a.0.total_cmp(&b.0).then(wave[a.1].id.cmp(&wave[b.1].id)));

                let mut next_wave = Vec::new();
                for (t, j) in events {
                    let e = &wave[j];
                    let outcome = outcomes[j];
                    match outcome {
                        AttemptOutcome::Success { done_us } => {
                            if let Some(b) = breaker.as_mut() {
                                b.observe(done_us, false);
                            }
                            let l = &mut live[e.ri];
                            l.budget.consume(done_us - l.ready_us);
                            l.ready_us = done_us;
                            if e.attempt > 0 && e.candidates < stage.candidates {
                                l.degraded[k] = true;
                            }
                            // Record a degraded full-quality answer when
                            // a prior attempt shrank the ladder but this
                            // one recovered: nothing to flag.
                        }
                        AttemptOutcome::Late { .. } | AttemptOutcome::Shed { .. } => {
                            if let AttemptOutcome::Late { done_us, .. } = outcome {
                                live[e.ri].best_late_done_us =
                                    live[e.ri].best_late_done_us.min(done_us);
                                stats.late += 1;
                            } else {
                                stats.faulted += 1;
                            }
                            if let Some(b) = breaker.as_mut() {
                                b.observe(t, true);
                            }
                            self.decide_failure(
                                k,
                                stage,
                                t,
                                e,
                                &mut live,
                                &mut stats,
                                breaker.as_mut(),
                                retry_budget.as_mut(),
                                &mut next_wave,
                            );
                        }
                    }
                }
                wave = next_wave;
                wave_no += 1;
            }
            // Waves exhausted with attempts still pending (the MAX_WAVES
            // backstop): force each survivor's terminal outcome.
            for e in wave {
                self.finalize_exhausted(k, stage, &mut live, &mut stats, &e);
            }

            if let Some(b) = breaker {
                stats.breaker_trips = b.trips();
                stats.breaker_final = b.state();
            }
            let mut in_budget = 0u64;
            let mut entered = 0u64;
            for (ri, l) in live.iter().enumerate() {
                if l.shed {
                    continue;
                }
                entered += 1;
                if l.ready_us - entry_ready[ri] <= shares[k] + 1e-9 {
                    in_budget += 1;
                }
            }
            stats.attainment = if entered == 0 {
                1.0
            } else {
                in_budget as f64 / entered as f64
            };
            stage_stats.push(stats);
            stage_wave0.push(ShardedReport::default());
            // wave-0 reports are informational for multi-stage runs;
            // the placeholder keeps the vec aligned without cloning a
            // full report per stage. The degenerate path stores the
            // real one.
        }

        let records = requests
            .iter()
            .enumerate()
            .map(|(ri, r)| {
                let l = &live[ri];
                PipelineRecord {
                    id: r.id,
                    arrival_us: r.arrival_us,
                    done_us: if l.shed { r.arrival_us } else { l.ready_us },
                    shed: l.shed,
                    degraded_stages: l.degraded.clone(),
                    attempts: l.attempts,
                }
            })
            .collect();
        Ok(PipelineOutcome {
            slo_us: self.spec.slo_us,
            records,
            stage_stats,
            stage_wave0,
        })
    }

    /// The policy's verdict on one failed attempt: retry, fall back, or
    /// shed.
    #[allow(clippy::too_many_arguments)]
    fn decide_failure(
        &self,
        k: usize,
        stage: &StageSpec,
        detect_us: f64,
        e: &Entry,
        live: &mut [LiveReq],
        stats: &mut StageStats,
        breaker: Option<&mut CircuitBreaker>,
        retry_budget: Option<&mut RetryBudget>,
        next_wave: &mut Vec<Entry>,
    ) {
        match &self.spec.policy {
            StagePolicy::NaiveRetry {
                max_attempts,
                shed_backoff_us,
            } => {
                let l = &mut live[e.ri];
                l.budget.consume(detect_us - l.ready_us);
                if e.attempt + 1 < *max_attempts {
                    let ready = detect_us + shed_backoff_us.max(0.0);
                    l.budget.consume(ready - detect_us);
                    l.ready_us = ready;
                    next_wave.push(Entry {
                        ri: e.ri,
                        id: e.id,
                        ready_us: ready,
                        candidates: stage.candidates,
                        attempt: e.attempt + 1,
                    });
                } else {
                    Self::naive_terminal(k, l);
                }
            }
            StagePolicy::Budgeted(b) => {
                let l = &mut live[e.ri];
                l.budget.consume(detect_us - l.ready_us);
                let breaker_admits = breaker.is_some_and(|br| br.admits_retry(detect_us));
                let attempts_left = e.attempt + 1 < b.max_attempts;
                let budget_left = !l.budget.is_exhausted();
                let granted = breaker_admits
                    && attempts_left
                    && budget_left
                    && retry_budget.is_some_and(|rb| {
                        let ok = rb.take(detect_us);
                        if !ok {
                            stats.retries_denied += 1;
                        }
                        ok
                    });
                if granted {
                    let ready = detect_us + b.shed_backoff_us.max(0.0);
                    l.budget.consume(ready - detect_us);
                    l.ready_us = ready;
                    next_wave.push(Entry {
                        ri: e.ri,
                        id: e.id,
                        ready_us: ready,
                        candidates: stage.candidates_at(e.attempt + 1),
                        attempt: e.attempt + 1,
                    });
                } else {
                    Self::fall_back(k, stage, detect_us, l, stats);
                }
            }
        }
    }

    /// Terminal outcome for a naive request out of attempts: keep the
    /// earliest late completion as the (late) answer, else shed.
    fn naive_terminal(k: usize, l: &mut LiveReq) {
        if l.best_late_done_us.is_finite() {
            let done = l.best_late_done_us;
            l.budget.consume(done - l.ready_us);
            l.ready_us = l.ready_us.max(done);
            l.degraded[k] = false;
        } else {
            l.shed = true;
        }
    }

    /// Serve the stage from its fallback at `now`: ranking keeps
    /// retrieval-order scores, filtering is skipped — both at zero
    /// stage cost — and retrieval, which has no fallback, sheds.
    fn fall_back(k: usize, stage: &StageSpec, now: f64, l: &mut LiveReq, stats: &mut StageStats) {
        if stage.kind.has_fallback() {
            stats.fallbacks += 1;
            l.budget.consume(now - l.ready_us);
            l.ready_us = l.ready_us.max(now);
            l.degraded[k] = true;
        } else {
            l.shed = true;
        }
    }

    /// Forced terminal outcome when the wave backstop fires.
    fn finalize_exhausted(
        &self,
        k: usize,
        stage: &StageSpec,
        live: &mut [LiveReq],
        stats: &mut StageStats,
        e: &Entry,
    ) {
        let l = &mut live[e.ri];
        match &self.spec.policy {
            StagePolicy::NaiveRetry { .. } => Self::naive_terminal(k, l),
            StagePolicy::Budgeted(_) => Self::fall_back(k, stage, l.ready_us, l, stats),
        }
    }

    /// The derived batch stage `k` scores for attempt `e`: the original
    /// request payload for stage 0, a seeded candidate batch of the
    /// attempt's candidate count for later stages.
    fn stage_batch(&self, k: usize, e: &Entry, requests: &[Request]) -> Batch {
        if k == 0 {
            return requests[e.ri].batch.clone();
        }
        let seed = self
            .spec
            .seed
            .wrapping_add((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ e.id.wrapping_mul(0x2545_F491_4F6C_DD1D)
            ^ (u64::from(e.attempt) << 56);
        Batch::generate(self.tiers[k].model, e.candidates, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultKind, FaultPlan, ResilienceConfig};
    use crate::request::WorkloadSpec;
    use crate::runtime::{BatchPolicy, ServeConfig};
    use proptest::prelude::*;
    use recflex_baselines::TorchRecBackend;
    use recflex_data::{ModelConfig, ModelPreset, Placement};
    use recflex_sim::{GpuArch, Interconnect};

    fn setup() -> (ModelConfig, GpuArch) {
        (ModelPreset::A.scaled(0.01), GpuArch::v100())
    }

    fn stage_config() -> ServeConfig {
        ServeConfig {
            streams: 4,
            policy: BatchPolicy::Split { cap: 256 },
            // Admission runs off the pipeline's per-attempt deadlines,
            // not a tier-level SLO.
            slo_deadline_us: None,
            closed_loop: false,
            hot_shard_cap: None,
        }
    }

    fn stage_tier<'a>(
        model: &'a ModelConfig,
        arch: &'a GpuArch,
        shards: usize,
        plan: FaultPlan,
    ) -> ShardedServeRuntime<'a> {
        ShardedServeRuntime::build_resilient(
            model,
            arch,
            Placement::balance(model, shards),
            stage_config(),
            Interconnect::nvlink(),
            ResilienceConfig {
                plan,
                ..ResilienceConfig::default()
            },
            &vec![1.0; model.features.len()],
            |m| Box::new(TorchRecBackend::compile(m)),
        )
    }

    fn stall(shard: usize, start: f64, end: f64) -> Fault {
        Fault {
            start_us: start,
            end_us: end,
            kind: FaultKind::Stall { shard },
        }
    }

    fn budgeted_spec(slo_us: f64, stages: Vec<StageSpec>) -> PipelineSpec {
        PipelineSpec {
            slo_us,
            stages,
            policy: StagePolicy::Budgeted(BudgetedPolicy::for_slo(slo_us)),
            seed: 11,
        }
    }

    #[test]
    fn one_stage_pipeline_is_byte_identical_to_the_plain_tier() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 42);
        let plain = stage_tier(&m, &arch, 2, FaultPlan::none()).serve(&reqs)?;
        let pipe = PipelineRuntime::new(
            budgeted_spec(50_000.0, vec![StageSpec::retrieval(64, 1.0)]),
            vec![stage_tier(&m, &arch, 2, FaultPlan::none())],
        )?;
        let out = pipe.serve(&reqs)?;
        assert_eq!(
            serde_json::to_string(&plain).ok(),
            serde_json::to_string(&out.stage_wave0[0]).ok(),
            "degenerate pipeline must reproduce the tier byte-for-byte"
        );
        assert_eq!(out.records.len(), reqs.len());
        for (rec, plain_rec) in out.records.iter().zip(&plain.records) {
            assert_eq!(rec.id, plain_rec.base.id);
            assert_eq!(rec.done_us, plain_rec.base.done_us);
            assert_eq!(rec.shed, plain_rec.base.shed != ShedReason::None);
        }
        Ok(())
    }

    #[test]
    fn multi_stage_clean_run_answers_everything_without_amplification() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(400.0).stream(&m, 24, 7);
        let spec = budgeted_spec(
            60_000.0,
            vec![
                StageSpec::retrieval(64, 0.3),
                StageSpec::filtering(48, 0.2),
                StageSpec::ranking(32, 0.5).with_ladder(vec![16, 8]),
            ],
        );
        let mk = || {
            PipelineRuntime::new(
                spec.clone(),
                vec![
                    stage_tier(&m, &arch, 2, FaultPlan::none()),
                    stage_tier(&m, &arch, 2, FaultPlan::none()),
                    stage_tier(&m, &arch, 2, FaultPlan::none()),
                ],
            )
        };
        let a = mk()?.serve(&reqs)?;
        let b = mk()?.serve(&reqs)?;
        let report = a.report();
        assert_eq!(report.offered, 24);
        assert_eq!(report.answered, 24);
        assert_eq!(report.degraded_answers, 0);
        assert!((report.amplification - 1.0).abs() < 1e-12);
        assert!(report.availability >= 0.95, "{}", report.availability);
        // Stage order is preserved and budgets propagate: every answer
        // lands within the end-to-end SLO.
        for rec in &a.records {
            assert!(rec.latency_us() <= spec.slo_us + 1e-9);
            assert!(rec.done_us >= rec.arrival_us);
        }
        assert_eq!(a.records, b.records, "pipeline runs replay bit-for-bit");
        assert_eq!(a.stage_stats, b.stage_stats);
        Ok(())
    }

    #[test]
    fn budgeted_policy_beats_naive_retry_under_a_ranking_stall() -> Result<(), ServeError> {
        let (m, arch) = setup();
        let reqs = WorkloadSpec::long_tail(300.0).stream(&m, 32, 42);
        let span = reqs.last().map_or(0.0, |r| r.arrival_us);
        let slo_us = 8_000.0;
        let stages = vec![
            StageSpec::retrieval(64, 0.4),
            StageSpec::ranking(32, 0.6).with_ladder(vec![16]),
        ];
        let rank_fault = FaultPlan::scripted(vec![stall(0, 0.2 * span, 0.9 * span)]);
        let run = |policy: StagePolicy| {
            let pipe = PipelineRuntime::new(
                PipelineSpec {
                    slo_us,
                    stages: stages.clone(),
                    policy,
                    seed: 11,
                },
                vec![
                    stage_tier(&m, &arch, 2, FaultPlan::none()),
                    stage_tier(&m, &arch, 2, rank_fault.clone()),
                ],
            )?;
            Ok::<_, ServeError>(pipe.serve(&reqs)?.report())
        };
        let naive = run(StagePolicy::NaiveRetry {
            max_attempts: 6,
            shed_backoff_us: 100.0,
        })?;
        let budgeted = run(StagePolicy::Budgeted(BudgetedPolicy::for_slo(slo_us)))?;

        assert!(
            budgeted.availability >= 0.95,
            "budgeted availability {}",
            budgeted.availability
        );
        assert!(
            budgeted.availability > naive.availability,
            "budgeted {} vs naive {}",
            budgeted.availability,
            naive.availability
        );
        assert!(
            budgeted.p99_us < naive.p99_us,
            "budgeted p99 {} vs naive {}",
            budgeted.p99_us,
            naive.p99_us
        );
        assert!(
            budgeted.amplification <= 1.2,
            "budgeted amplification {}",
            budgeted.amplification
        );
        assert!(
            naive.amplification > budgeted.amplification,
            "naive {} vs budgeted {}",
            naive.amplification,
            budgeted.amplification
        );
        let rank = &budgeted.stages[1];
        assert!(rank.fallbacks > 0, "the stall must force fallbacks");
        assert!(rank.breaker_trips >= 1, "sustained failure must trip");
        assert!(budgeted.degraded_answers > 0);
        Ok(())
    }

    #[test]
    fn breaker_walks_closed_open_half_open_and_back() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            signal: PressureSignal::Instantaneous,
            trip_threshold: 1.0,
            cooldown_us: 100.0,
        });
        assert_eq!(b.state(), BreakerStateStat::Closed);
        b.observe(10.0, false);
        assert_eq!(b.state(), BreakerStateStat::Closed);
        b.observe(20.0, true);
        assert_eq!(b.state(), BreakerStateStat::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.admits_retry(50.0), "cooldown blocks retries");
        assert!(b.admits_retry(130.0), "cooldown elapsed: one probe");
        assert_eq!(b.state(), BreakerStateStat::HalfOpen);
        assert!(!b.admits_retry(131.0), "only one probe in flight");
        b.observe(140.0, true);
        assert_eq!(b.state(), BreakerStateStat::Open, "probe failure reopens");
        assert_eq!(b.trips(), 2);
        assert!(b.admits_retry(260.0));
        b.observe(270.0, false);
        assert_eq!(b.state(), BreakerStateStat::Closed, "probe success closes");
        let states: Vec<BreakerStateStat> = b.transitions().iter().map(|&(_, s)| s).collect();
        assert_eq!(
            states,
            vec![
                BreakerStateStat::Open,
                BreakerStateStat::HalfOpen,
                BreakerStateStat::Open,
                BreakerStateStat::HalfOpen,
                BreakerStateStat::Closed,
            ]
        );
    }

    #[test]
    fn retry_budget_spends_and_refills_tokens() {
        let mut rb = RetryBudget::new(RetryBudgetConfig {
            burst: 2.0,
            refill_per_ms: 1.0,
        });
        assert!(rb.take(0.0));
        assert!(rb.take(0.0));
        assert!(!rb.take(0.0), "bucket empty");
        assert!(!rb.take(500.0), "half a token refilled: still denied");
        assert!(rb.take(1_000.0), "a full token refilled");
        assert!(!rb.take(1_000.0));
        // Refill never overshoots the burst cap.
        assert!(rb.take(1_000_000.0));
        assert!(rb.take(1_000_000.0));
        assert!(!rb.take(1_000_000.0));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let (m, arch) = setup();
        let mk_spec = |stages: Vec<StageSpec>| budgeted_spec(10_000.0, stages);
        let err = |spec: PipelineSpec, n_tiers: usize| {
            let tiers = (0..n_tiers)
                .map(|_| stage_tier(&m, &arch, 2, FaultPlan::none()))
                .collect();
            PipelineRuntime::new(spec, tiers).err()
        };
        assert!(err(mk_spec(vec![]), 0).is_some(), "no stages");
        assert!(
            err(mk_spec(vec![StageSpec::retrieval(8, 0.25); 4]), 4).is_some(),
            "too many stages"
        );
        assert!(
            err(mk_spec(vec![StageSpec::retrieval(8, 0.5)]), 2).is_some(),
            "tier count mismatch"
        );
        assert!(
            err(mk_spec(vec![StageSpec::retrieval(0, 0.5)]), 1).is_some(),
            "zero candidates"
        );
        assert!(
            err(mk_spec(vec![StageSpec::retrieval(8, 0.0)]), 1).is_some(),
            "zero budget fraction"
        );
        assert!(
            err(
                mk_spec(vec![StageSpec::ranking(8, 0.5).with_ladder(vec![4, 0])]),
                1
            )
            .is_some(),
            "zero ladder rung"
        );
        let mut bad_slo = mk_spec(vec![StageSpec::retrieval(8, 0.5)]);
        bad_slo.slo_us = f64::NAN;
        assert!(err(bad_slo, 1).is_some(), "non-finite slo");
    }

    proptest! {
        /// Budget shares never over-commit: for any fraction vector the
        /// per-stage shares are non-negative and sum to at most the
        /// end-to-end total.
        #[test]
        fn stage_shares_sum_to_at_most_the_slo(
            total in 0.0f64..100_000.0,
            len in 1usize..4,
            seed in 0u64..u64::MAX,
        ) {
            let mut rng = proptest::TestRng::for_case("stage_shares", seed);
            let fracs: Vec<f64> = (0..len).map(|_| rng.next_f64() * 4.0).collect();
            let shares = DeadlineBudget::stage_shares(total, &fracs);
            prop_assert_eq!(shares.len(), fracs.len());
            for s in &shares {
                prop_assert!(*s >= 0.0);
            }
            let sum: f64 = shares.iter().sum();
            prop_assert!(sum <= total * (1.0 + 1e-12) + 1e-9, "{} > {}", sum, total);
        }

        /// An exhausted budget never goes negative, no matter what gets
        /// consumed (including bogus negative charges).
        #[test]
        fn budget_remaining_is_never_negative(
            total in 0.0f64..50_000.0,
            len in 0usize..12,
            seed in 0u64..u64::MAX,
        ) {
            let mut rng = proptest::TestRng::for_case("budget_charges", seed);
            // Charges in [-1000, 20000): bogus negative charges included.
            let charges: Vec<f64> = (0..len).map(|_| rng.next_f64() * 21_000.0 - 1_000.0).collect();
            let mut budget = DeadlineBudget::new(total);
            let mut prev = budget.remaining_us();
            for c in charges {
                budget.consume(c);
                let rem = budget.remaining_us();
                prop_assert!(rem >= 0.0, "remaining {} < 0", rem);
                prop_assert!(rem <= prev + 1e-12, "remaining must be monotone");
                prev = rem;
            }
            prop_assert!(budget.spent_us() >= 0.0);
            prop_assert!(budget.total_us() >= 0.0);
        }
    }
}
