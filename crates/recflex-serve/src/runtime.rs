//! The discrete-event serving runtime.
//!
//! Ties the pieces together: a seeded request stream enters an admission
//! gate (SLO-aware load shedding), flows through the batching policy
//! (forward unsplit, split at a cap, or coalesce dynamically), executes
//! on the multi-stream processor-sharing device, and leaves a full
//! latency record behind. A drift monitor watches admitted traffic and
//! can trigger a *background* retune — supervised by the
//! [`LifecycleMachine`](crate::lifecycle): the attempt
//! may fail or stall, a successful candidate may be canaried against the
//! incumbent before promotion, and failures retry with exponential
//! backoff — all at later simulated timestamps, so serving never pauses.
//!
//! Everything is event-driven over simulated time. Simultaneous events
//! resolve in a fixed priority (completion, then lifecycle transition,
//! then arrival, then batcher flush), so a run is a pure function of
//! `(config, request stream, backend, lifecycle plan)` — replaying the
//! same seed yields a bit-identical [`ServeReport`].

use std::collections::HashMap;

use recflex_baselines::{Backend, BackendError};
use recflex_data::{Batch, ModelConfig};
use recflex_embedding::TableSet;
use recflex_sim::GpuArch;

use crate::drift::{DriftConfig, DriftMonitor};
use crate::executor::DeviceExecutor;
use crate::lifecycle::{
    CanaryVerdict, EngineTuning, LifecycleConfig, LifecycleMachine, RegressedBackend,
    RetuneOutcome, TimerAction,
};
use crate::request::Request;
use crate::stats::{RequestRecord, ServeReport, ShedReason};

/// How the runtime shapes request batches before launching them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Forward every request as one device batch (DeepRecSys-style,
    /// Section VI-D: long-tail requests hit the device whole).
    Unsplit,
    /// Split requests into chunks of at most `cap` samples (the
    /// industrial practice of Section VI-D).
    Split {
        /// Maximum chunk size, samples (≥ 1).
        cap: u32,
    },
    /// Dynamic batching: coalesce small requests into one device batch
    /// up to `max_batch` samples, flushing when the batch fills, when
    /// the oldest member has waited `max_wait_us`, or as soon as the
    /// device goes idle (the batcher is work-conserving — it never
    /// holds work while the device has nothing to do). Oversized
    /// requests are split into chunks of at most `max_batch`.
    Dynamic {
        /// Target coalesced batch size, samples (≥ 1).
        max_batch: u32,
        /// Longest a request may wait in the batcher, µs.
        max_wait_us: f64,
    },
    /// [`BatchPolicy::Dynamic`] with padding-free partial merges: when a
    /// request straddles the `max_batch` boundary, the head samples top
    /// the open batch off to *exactly* `max_batch` and the tail rolls
    /// into the next coalesced batch ([`Batch::split`] wired into the
    /// merge path). `Dynamic` instead flushes the open batch short and
    /// starts the request fresh — tight packing costs a request a second
    /// chunk boundary, so it is opt-in and `Dynamic` keeps the old
    /// behavior bit-for-bit.
    DynamicPacked {
        /// Exact coalesced batch size to fill, samples (≥ 1).
        max_batch: u32,
        /// Longest a request may wait in the batcher, µs.
        max_wait_us: f64,
    },
}

/// Static configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Concurrent device streams (kernels resident at once).
    pub streams: u32,
    /// Batch shaping policy.
    pub policy: BatchPolicy,
    /// SLO deadline, µs: a request arriving while the device backlog
    /// already exceeds this is shed immediately (it could not possibly
    /// finish in time). `None` admits everything.
    pub slo_deadline_us: Option<f64>,
    /// Closed-loop mode: ignore arrival timestamps and admit each
    /// request the moment the previous one finished — the offline
    /// semantics of `ServingSimulator`. Open-loop (`false`) replays the
    /// stream's own arrival times.
    pub closed_loop: bool,
    /// Sharded-tier straggler cap: chunks bigger than this are re-split
    /// into sub-chunks of at most `cap` samples *after* the batching
    /// policy shapes them, narrowing the per-chunk work the hottest
    /// shard gates on. `Some(0)` is rejected at run start. `None` (the
    /// default) reproduces the un-capped tier bit-for-bit; the
    /// single-device runtime ignores the knob entirely.
    pub hot_shard_cap: Option<u32>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            streams: 4,
            policy: BatchPolicy::Unsplit,
            slo_deadline_us: None,
            closed_loop: false,
            hot_shard_cap: None,
        }
    }
}

/// Drift-triggered background retuning.
///
/// When the [`DriftMonitor`] fires, `retuner` is handed the most recent
/// window of admitted batches and must produce a freshly tuned backend.
/// The retune costs `retune_latency_us` of simulated wall time — the old
/// engine keeps serving meanwhile. What happens when it completes is
/// governed by `lifecycle`: with the default [`LifecycleConfig`] the new
/// engine is swapped in unconditionally at the completion timestamp (the
/// historical blind swap, bit-for-bit); otherwise the attempt may fail,
/// stall, canary against the incumbent, roll back and retry with
/// backoff.
pub struct RetunePolicy<'a> {
    /// Drift-detection window and threshold.
    pub drift: DriftConfig,
    /// Simulated cost of one background retune, µs.
    pub retune_latency_us: f64,
    /// Outcome injection, canarying, and retry/backoff for each attempt.
    pub lifecycle: LifecycleConfig,
    /// Builds a new backend from recent traffic.
    #[allow(clippy::type_complexity)]
    pub retuner: Box<dyn FnMut(&[Batch]) -> TunedCandidate + 'a>,
}

/// What a retuner hands back: the freshly tuned backend, plus how the
/// tuning was produced when it went through the profile vault. Plain
/// retuners convert a bare backend with `.into()` — accounting stays
/// opt-in and the no-vault path is unchanged.
pub struct TunedCandidate {
    /// The freshly tuned backend.
    pub backend: Box<dyn Backend>,
    /// Vault accounting (warm start, evaluation count), if reported.
    pub tuning: Option<EngineTuning>,
}

impl From<Box<dyn Backend>> for TunedCandidate {
    fn from(backend: Box<dyn Backend>) -> Self {
        TunedCandidate {
            backend,
            tuning: None,
        }
    }
}

/// Why a serving run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The active backend refused a chunk.
    Backend(BackendError),
    /// The configuration is unusable (e.g. a zero batch cap).
    Policy(&'static str),
    /// The event schedule reached a state that should be unreachable
    /// (e.g. a completion for a chunk nobody owns). Surfaced as an error
    /// so a malformed schedule degrades instead of aborting the process.
    Internal(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Backend(e) => write!(f, "backend error: {e}"),
            ServeError::Policy(m) => write!(f, "invalid serving policy: {m}"),
            ServeError::Internal(m) => write!(f, "inconsistent event schedule: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BackendError> for ServeError {
    fn from(e: BackendError) -> Self {
        ServeError::Backend(e)
    }
}

/// The serving runtime: one backend, one model, one device.
pub struct ServeRuntime<'a> {
    /// Engine serving the traffic (may be hot-swapped by a retune).
    pub backend: &'a dyn Backend,
    /// The model served.
    pub model: &'a ModelConfig,
    /// Its embedding tables.
    pub tables: &'a TableSet,
    /// The simulated device.
    pub arch: &'a GpuArch,
    /// Runtime configuration.
    pub config: ServeConfig,
}

/// The engine currently serving: the caller's borrowed backend until a
/// retune completes, then the owned replacement.
enum Active<'a> {
    Borrowed(&'a dyn Backend),
    Owned(Box<dyn Backend>),
}

impl Active<'_> {
    fn get(&self) -> &dyn Backend {
        match self {
            Active::Borrowed(b) => *b,
            Active::Owned(b) => b.as_ref(),
        }
    }
}

/// Which event fires next; declaration order is tie-break priority.
/// `Lifecycle` sits in the slot the engine swap used to occupy, so the
/// all-success no-canary path fires its promotion at the exact priority
/// of the historical blind swap.
#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
enum EventKind {
    Completion,
    Lifecycle,
    Arrival,
    Flush,
}

impl ServeRuntime<'_> {
    /// Serve a request stream with a fixed engine.
    pub fn serve(&self, requests: &[Request]) -> Result<ServeReport, ServeError> {
        self.run(requests, None, None)
    }

    /// Serve with a per-request **absolute** admission deadline
    /// (`deadlines[i]` is the wall-clock µs instant request `i` must
    /// finish by). Overrides the uniform [`ServeConfig::slo_deadline_us`]
    /// gate: a request whose remaining time is already spent, or whose
    /// remaining time the device backlog exceeds, sheds at admission.
    /// The plumbing a pipeline stage uses to thread its share of the
    /// end-to-end SLO through this runtime.
    pub fn serve_with_deadlines(
        &self,
        requests: &[Request],
        deadlines: &[f64],
    ) -> Result<ServeReport, ServeError> {
        if deadlines.len() != requests.len() {
            return Err(ServeError::Policy(
                "deadlines must be given for every request",
            ));
        }
        self.run(requests, None, Some(deadlines))
    }

    /// Serve a request stream with drift-triggered background retuning.
    pub fn serve_with_retune(
        &self,
        requests: &[Request],
        retune: &mut RetunePolicy<'_>,
    ) -> Result<ServeReport, ServeError> {
        self.run(requests, Some(retune), None)
    }

    fn run(
        &self,
        requests: &[Request],
        mut retune: Option<&mut RetunePolicy<'_>>,
        deadlines: Option<&[f64]>,
    ) -> Result<ServeReport, ServeError> {
        match self.config.policy {
            BatchPolicy::Split { cap: 0 } => {
                return Err(ServeError::Policy("split cap must be at least 1"))
            }
            BatchPolicy::Dynamic {
                max_batch,
                max_wait_us,
            }
            | BatchPolicy::DynamicPacked {
                max_batch,
                max_wait_us,
            } => {
                if max_batch == 0 {
                    return Err(ServeError::Policy("dynamic max_batch must be at least 1"));
                }
                if !max_wait_us.is_finite() || max_wait_us < 0.0 {
                    return Err(ServeError::Policy(
                        "dynamic max_wait_us must be finite and >= 0",
                    ));
                }
            }
            _ => {}
        }

        let n = requests.len();
        let mut st = RunState {
            executor: DeviceExecutor::new(self.config.streams),
            records: vec![None; n],
            remaining_chunks: vec![0u32; n],
            first_start_us: vec![f64::INFINITY; n],
            last_done_us: vec![0.0f64; n],
            arrival_eff_us: requests.iter().map(|r| r.arrival_us).collect(),
            chunk_owners: HashMap::new(),
            next_job: 0,
            launches: 0,
            buffer: Vec::new(),
            buffer_size: 0,
            buffer_oldest_us: f64::INFINITY,
            active: Active::Borrowed(self.backend),
            monitor: retune
                .as_ref()
                .map(|r| DriftMonitor::for_model(r.drift, self.model)),
            recent: Vec::new(),
            machine: retune
                .as_ref()
                .map(|r| LifecycleMachine::new(r.lifecycle.clone(), r.retune_latency_us, 1, 0.0)),
            candidate: None,
            retunes: 0,
        };

        let mut cursor = 0usize;
        let mut now = 0.0f64;

        loop {
            // Candidate events, probed in tie-break priority order.
            let mut next: Option<(f64, EventKind)> = None;
            let mut consider = |t: Option<f64>, kind: EventKind| {
                if let Some(t) = t {
                    if next.is_none_or(|(bt, _)| t < bt) {
                        next = Some((t, kind));
                    }
                }
            };
            consider(st.executor.next_completion_us(), EventKind::Completion);
            consider(
                st.machine
                    .as_ref()
                    .and_then(LifecycleMachine::next_timer_us),
                EventKind::Lifecycle,
            );
            let arrival_t = if cursor < n {
                if self.config.closed_loop {
                    // Admit only when the previous request fully drained.
                    (st.executor.is_idle() && st.buffer.is_empty()).then_some(now)
                } else {
                    Some(requests[cursor].arrival_us.max(now))
                }
            } else {
                None
            };
            consider(arrival_t, EventKind::Arrival);
            let flush_t = match self.config.policy {
                BatchPolicy::Dynamic { max_wait_us, .. }
                | BatchPolicy::DynamicPacked { max_wait_us, .. }
                    if !st.buffer.is_empty() =>
                {
                    Some((st.buffer_oldest_us + max_wait_us).max(now))
                }
                _ => None,
            };
            consider(flush_t, EventKind::Flush);

            let Some((t, kind)) = next else { break };
            now = t;

            match kind {
                EventKind::Completion => {
                    st.executor.advance_to(now);
                    st.note_starts();
                    let done = st.executor.drain_completed();
                    for (t_done, job) in done {
                        let owners = st
                            .chunk_owners
                            .remove(&job)
                            .ok_or(ServeError::Internal("completion for unknown chunk"))?;
                        for ri in owners {
                            st.remaining_chunks[ri] -= 1;
                            st.last_done_us[ri] = st.last_done_us[ri].max(t_done);
                            if st.remaining_chunks[ri] == 0 {
                                st.finalize(ri, requests);
                            }
                        }
                    }
                    // Work-conserving: an idle device drains the batcher.
                    if st.executor.is_idle() && !st.buffer.is_empty() {
                        st.flush_buffer(now, self, requests)?;
                    }
                }
                EventKind::Lifecycle => {
                    let action = match st.machine.as_mut() {
                        Some(m) => m.on_timer(now),
                        None => TimerAction::Noop,
                    };
                    match action {
                        TimerAction::PromoteAll | TimerAction::PromoteShard(_) => {
                            st.install_candidate()?;
                        }
                        TimerAction::DropCandidate | TimerAction::RollBackAll => {
                            st.candidate = None;
                        }
                        TimerAction::Retry => {
                            if let Some(policy) = retune.as_deref_mut() {
                                st.launch_attempt(now, policy);
                            }
                        }
                        TimerAction::BeginCanary | TimerAction::Noop => {}
                    }
                }
                EventKind::Arrival => {
                    st.admit(cursor, now, self, requests, &mut retune, deadlines)?;
                    cursor += 1;
                }
                EventKind::Flush => {
                    st.flush_buffer(now, self, requests)?;
                }
            }
        }

        debug_assert!(st.records.iter().all(Option::is_some));
        let (lifecycle, lifecycle_trace) = st
            .machine
            .map(LifecycleMachine::into_parts)
            .unwrap_or_default();
        Ok(ServeReport {
            records: st.records.into_iter().flatten().collect(),
            kernel_launches: st.launches,
            retunes: st.retunes,
            makespan_us: now,
            lifecycle,
            lifecycle_trace,
        })
    }
}

/// Mutable state of one run, split out so admission/flush helpers can
/// borrow it whole while the runtime stays shared.
struct RunState<'a> {
    executor: DeviceExecutor,
    records: Vec<Option<RequestRecord>>,
    remaining_chunks: Vec<u32>,
    first_start_us: Vec<f64>,
    last_done_us: Vec<f64>,
    arrival_eff_us: Vec<f64>,
    chunk_owners: HashMap<u64, Vec<usize>>,
    next_job: u64,
    launches: u64,
    /// Requests waiting in the dynamic batcher: owner index plus the
    /// samples it has parked there (the whole batch under `Dynamic`, a
    /// boundary-split head or tail under `DynamicPacked`).
    buffer: Vec<(usize, Batch)>,
    buffer_size: u32,
    buffer_oldest_us: f64,
    active: Active<'a>,
    monitor: Option<DriftMonitor>,
    /// Most recent admitted batches (drift window), oldest first.
    recent: Vec<Batch>,
    /// The lifecycle state machine (present iff retuning is on). Owns
    /// the timers: an in-flight retune, a backoff, a staged promotion.
    machine: Option<LifecycleMachine>,
    /// The engine the current attempt produced, awaiting canary verdict
    /// or promotion.
    candidate: Option<Box<dyn Backend>>,
    retunes: u32,
}

impl RunState<'_> {
    fn admit(
        &mut self,
        ri: usize,
        now: f64,
        rt: &ServeRuntime<'_>,
        requests: &[Request],
        retune: &mut Option<&mut RetunePolicy<'_>>,
        deadlines: Option<&[f64]>,
    ) -> Result<(), ServeError> {
        let req = &requests[ri];
        self.arrival_eff_us[ri] = if rt.config.closed_loop {
            now
        } else {
            req.arrival_us
        };

        // SLO admission: if the device already owes more work than the
        // deadline, this request cannot finish in time — shed it now
        // rather than poison the queue for everyone behind it. A
        // per-request absolute deadline (the pipeline's remaining
        // budget share) overrides the uniform config gate.
        let admission_window = match deadlines {
            Some(d) => Some(d[ri] - self.arrival_eff_us[ri]),
            None => rt.config.slo_deadline_us,
        };
        if let Some(deadline) = admission_window {
            if deadline < 0.0 || self.executor.backlog_us() > deadline {
                self.records[ri] = Some(RequestRecord {
                    id: req.id,
                    batch_size: req.batch.batch_size,
                    arrival_us: self.arrival_eff_us[ri],
                    queue_us: 0.0,
                    service_us: 0.0,
                    done_us: self.arrival_eff_us[ri],
                    shed: ShedReason::Admission,
                });
                return Ok(());
            }
        }

        // Drift monitoring sees every admitted batch.
        if let Some(policy) = retune.as_deref_mut() {
            self.recent.push(req.batch.clone());
            let window = policy.drift.window.max(1);
            if self.recent.len() > window {
                self.recent.drain(..self.recent.len() - window);
            }
            let drifted = self
                .monitor
                .as_mut()
                .map(|m| m.observe(&req.batch))
                .unwrap_or(false);
            // The machine absorbs fires while an attempt, canary,
            // backoff or cooldown is active — drift re-firing every
            // window cannot launch overlapping retunes.
            let wants = drifted
                && self
                    .machine
                    .as_mut()
                    .is_some_and(|m| m.wants_drift_retune(now));
            if wants {
                self.launch_attempt(now, policy);
            }
        }

        match rt.config.policy {
            BatchPolicy::Unsplit => {
                self.submit_chunk(req.batch.clone(), vec![ri], now, rt, requests)?;
            }
            BatchPolicy::Split { cap } => {
                let chunks = req
                    .batch
                    .split(cap)
                    .map_err(|_| ServeError::Policy("split cap must be at least 1"))?;
                if chunks.is_empty() {
                    self.finalize_empty(ri, now, requests);
                } else {
                    for chunk in chunks {
                        self.submit_chunk(chunk, vec![ri], now, rt, requests)?;
                    }
                }
            }
            BatchPolicy::Dynamic { max_batch, .. } => {
                if req.batch.batch_size == 0 {
                    self.finalize_empty(ri, now, requests);
                } else if req.batch.batch_size >= max_batch {
                    // Oversized: flush waiting small requests first so
                    // device order stays FIFO, then split the big one.
                    self.flush_buffer(now, rt, requests)?;
                    let chunks = req
                        .batch
                        .split(max_batch)
                        .map_err(|_| ServeError::Policy("dynamic max_batch must be at least 1"))?;
                    for chunk in chunks {
                        self.submit_chunk(chunk, vec![ri], now, rt, requests)?;
                    }
                } else {
                    if self.buffer_size + req.batch.batch_size > max_batch {
                        self.flush_buffer(now, rt, requests)?;
                    }
                    self.buffer.push((ri, req.batch.clone()));
                    self.buffer_size += req.batch.batch_size;
                    self.buffer_oldest_us = self.buffer_oldest_us.min(self.arrival_eff_us[ri]);
                    if self.buffer_size == max_batch || self.executor.is_idle() {
                        self.flush_buffer(now, rt, requests)?;
                    }
                }
            }
            BatchPolicy::DynamicPacked { max_batch, .. } => {
                if req.batch.batch_size == 0 {
                    self.finalize_empty(ri, now, requests);
                } else {
                    // Padding-free coalescing: top the open batch off to
                    // exactly `max_batch`, rolling the remainder of a
                    // boundary-straddling request into the next batch.
                    // The invariant `buffer_size < max_batch` holds on
                    // entry and exit, so `room >= 1` always.
                    let mut part = req.batch.clone();
                    loop {
                        let room = max_batch - self.buffer_size;
                        if part.batch_size < room {
                            self.buffer_size += part.batch_size;
                            self.buffer.push((ri, part));
                            self.buffer_oldest_us =
                                self.buffer_oldest_us.min(self.arrival_eff_us[ri]);
                            break;
                        }
                        let mut pieces = part
                            .split(room)
                            .map_err(|_| {
                                ServeError::Policy("dynamic max_batch must be at least 1")
                            })?
                            .into_iter();
                        let head = pieces.next().ok_or(ServeError::Internal(
                            "split of a non-empty batch yielded nothing",
                        ))?;
                        self.buffer.push((ri, head));
                        self.buffer_size = max_batch;
                        self.buffer_oldest_us = self.buffer_oldest_us.min(self.arrival_eff_us[ri]);
                        self.flush_buffer(now, rt, requests)?;
                        let rest: Vec<Batch> = pieces.collect();
                        if rest.is_empty() {
                            break;
                        }
                        part = Batch::merge(&rest);
                    }
                    if !self.buffer.is_empty() && self.executor.is_idle() {
                        self.flush_buffer(now, rt, requests)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn flush_buffer(
        &mut self,
        now: f64,
        rt: &ServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let entries = std::mem::take(&mut self.buffer);
        self.buffer_size = 0;
        self.buffer_oldest_us = f64::INFINITY;
        let owners: Vec<usize> = entries.iter().map(|&(ri, _)| ri).collect();
        let parts: Vec<Batch> = entries.into_iter().map(|(_, b)| b).collect();
        let merged = Batch::merge(&parts);
        self.submit_chunk(merged, owners, now, rt, requests)
    }

    fn submit_chunk(
        &mut self,
        batch: Batch,
        owners: Vec<usize>,
        now: f64,
        rt: &ServeRuntime<'_>,
        requests: &[Request],
    ) -> Result<(), ServeError> {
        let run = self
            .active
            .get()
            .run(rt.model, rt.tables, &batch, rt.arch)?;
        self.launches += u64::from(run.kernel_launches);
        // Canary: the candidate sees a deterministic fraction of chunks.
        // In shadow mode (the default) its cost is accounted in the
        // lifecycle stats, never submitted to the device — shadowing
        // cannot perturb latencies. In split-traffic mode
        // ([`CanaryConfig::split_traffic`]) the canaried chunk is
        // *served by the candidate*: its device time enters the real
        // queue, so the verdict reflects the candidate under actual
        // queueing, while the incumbent's cost for the same chunk is a
        // free cost-model query used only as the comparator.
        let wants_shadow = self
            .machine
            .as_mut()
            .is_some_and(LifecycleMachine::should_shadow);
        let mut served_latency_us = run.latency_us;
        if wants_shadow {
            let shadow_run = self
                .candidate
                .as_ref()
                .map(|c| c.run(rt.model, rt.tables, &batch, rt.arch));
            let split = self
                .machine
                .as_ref()
                .is_some_and(LifecycleMachine::split_traffic);
            if let (Some(machine), Some(result)) = (self.machine.as_mut(), shadow_run) {
                match result {
                    Ok(cand_run) => {
                        let verdict =
                            machine.observe_canary(now, &[run.latency_us], &[cand_run.latency_us]);
                        if split {
                            served_latency_us = cand_run.latency_us;
                        }
                        if verdict == CanaryVerdict::RollBack {
                            self.candidate = None;
                        }
                        // Promote arrives as a lifecycle timer event at
                        // this same timestamp.
                    }
                    Err(_) => {
                        // A candidate that refuses traffic loses its
                        // canary on the spot.
                        machine.force_rollback(now);
                        self.candidate = None;
                    }
                }
            }
        }
        for &ri in &owners {
            self.remaining_chunks[ri] += 1;
        }
        let job = self.next_job;
        self.next_job += 1;
        self.chunk_owners.insert(job, owners);
        self.executor.submit(now, job, served_latency_us);
        self.note_starts();
        // Zero-cost chunks retire inside `submit`; collect them here so
        // their owners don't wait for a completion event that may never
        // have a distinct timestamp.
        let done = self.executor.drain_completed();
        for (t_done, job) in done {
            let owners = self
                .chunk_owners
                .remove(&job)
                .ok_or(ServeError::Internal("completion for unknown chunk"))?;
            for ri in owners {
                self.remaining_chunks[ri] -= 1;
                self.last_done_us[ri] = self.last_done_us[ri].max(t_done);
                if self.remaining_chunks[ri] == 0 {
                    self.finalize(ri, requests);
                }
            }
        }
        Ok(())
    }

    /// Launch a retune attempt: draw its injected outcome, build the
    /// candidate when the tuner "returns" one (wrapping regressions so
    /// they really serve slower), and start the lifecycle timers.
    fn launch_attempt(&mut self, now: f64, policy: &mut RetunePolicy<'_>) {
        let outcome = match self.machine.as_mut() {
            Some(m) => m.begin_attempt(now),
            None => return,
        };
        // A fresh observation window: the verdict that follows should
        // reflect traffic seen after this attempt launched.
        if let Some(mon) = self.monitor.as_mut() {
            mon.reset_window();
        }
        self.candidate = match outcome {
            RetuneOutcome::Success | RetuneOutcome::Regression { .. } => {
                let tuned = (policy.retuner)(&self.recent);
                if let (Some(t), Some(m)) = (tuned.tuning, self.machine.as_mut()) {
                    m.record_tuning(t);
                }
                Some(match outcome {
                    RetuneOutcome::Regression { slowdown } => {
                        Box::new(RegressedBackend::new(tuned.backend, slowdown))
                    }
                    _ => tuned.backend,
                })
            }
            RetuneOutcome::CompileFail | RetuneOutcome::Stall => None,
        };
    }

    /// Promote the candidate: it becomes the active engine and the drift
    /// monitor rebases onto the traffic it was tuned for.
    fn install_candidate(&mut self) -> Result<(), ServeError> {
        let backend = self
            .candidate
            .take()
            .ok_or(ServeError::Internal("promotion without a candidate engine"))?;
        self.active = Active::Owned(backend);
        self.retunes += 1;
        if let Some(mon) = self.monitor.as_mut() {
            // The new engine is tuned on recent traffic; its reference
            // is what that traffic actually looked like.
            let (lk, sm) = self.recent.iter().fold((0.0, 0.0), |(l, s), b| {
                (l + b.total_lookups() as f64, s + b.batch_size as f64)
            });
            if sm > 0.0 {
                mon.rebase(lk / sm);
            }
        }
        Ok(())
    }

    /// Fold freshly drained kernel-start events into per-request first
    /// start times, so `queue_us` covers batching delay *and* stream
    /// queueing.
    fn note_starts(&mut self) {
        for (t_start, job) in self.executor.drain_started() {
            if let Some(owners) = self.chunk_owners.get(&job) {
                for &ri in owners {
                    self.first_start_us[ri] = self.first_start_us[ri].min(t_start);
                }
            }
        }
    }

    fn finalize(&mut self, ri: usize, requests: &[Request]) {
        let arrival = self.arrival_eff_us[ri];
        let first = self.first_start_us[ri];
        let done = self.last_done_us[ri];
        self.records[ri] = Some(RequestRecord {
            id: requests[ri].id,
            batch_size: requests[ri].batch.batch_size,
            arrival_us: arrival,
            queue_us: first - arrival,
            service_us: done - first,
            done_us: done,
            shed: ShedReason::None,
        });
    }

    fn finalize_empty(&mut self, ri: usize, now: f64, requests: &[Request]) {
        self.records[ri] = Some(RequestRecord {
            id: requests[ri].id,
            batch_size: 0,
            arrival_us: self.arrival_eff_us[ri],
            queue_us: 0.0,
            service_us: 0.0,
            done_us: now,
            shed: ShedReason::None,
        });
    }
}
