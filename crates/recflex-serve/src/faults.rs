//! Deterministic fault injection and the graceful-degradation policy.
//!
//! Production recommendation serving treats degraded hardware and tail
//! stragglers as first-class (Hercules provisions around heterogeneous,
//! partially-failed capacity; DeepRecSys schedules around tail-latency
//! SLAs). This module gives the simulated tier the same vocabulary, with
//! the same determinism contract as [`crate::WorkloadSpec`]: a
//! [`FaultSpec`] plus a seed replays to a bit-identical [`FaultPlan`],
//! so a chaotic run is still a pure function of its inputs.
//!
//! Four fault kinds, all timed windows over simulated µs:
//!
//! * [`FaultKind::Slowdown`] — a shard's executor retires work at a
//!   fraction of its healthy throughput (thermal throttling, a noisy
//!   neighbor on the host),
//! * [`FaultKind::Stall`] — the lane stops draining entirely until the
//!   window closes (driver hiccup, PCIe reset),
//! * [`FaultKind::Crash`] — the lane is dead until a recovery timestamp;
//!   in-flight work is lost and must be re-executed or degraded,
//! * [`FaultKind::LinkDegrade`] — the all-gather bandwidth is cut by a
//!   factor (flaky switch, congested fabric).
//!
//! The response side is configured by [`ResilienceConfig`]: per-chunk
//! shard deadlines with hedged re-execution on a standby replica lane
//! ([`ReplicationPolicy`]), crash failover that re-projects a dead
//! shard's work onto its replica or the least-loaded survivor, and a
//! [`LadderConfig`] that under sustained backlog pressure first drops
//! the hedge, then serves chunks touched by a crashed shard with partial
//! (zero-pooled) embeddings instead of shedding — availability degrades
//! before goodput does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use recflex_data::Placement;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultKind {
    /// Shard `shard` retires work at `rate` (in `(0, 1)`) of healthy
    /// throughput for the fault window.
    Slowdown { shard: usize, rate: f64 },
    /// Shard `shard` stops draining entirely; queued and resident work
    /// freezes in place and resumes at the window end.
    Stall { shard: usize },
    /// Shard `shard` is dead until the window end (its recovery
    /// timestamp). In-flight work is lost, not paused.
    Crash { shard: usize },
    /// Every all-gather started inside the window sees its bandwidth cut
    /// by `factor` (≥ 1).
    LinkDegrade { factor: f64 },
}

impl FaultKind {
    /// The shard this fault pins down, if it is shard-scoped.
    pub fn shard(&self) -> Option<usize> {
        match *self {
            FaultKind::Slowdown { shard, .. }
            | FaultKind::Stall { shard }
            | FaultKind::Crash { shard } => Some(shard),
            FaultKind::LinkDegrade { .. } => None,
        }
    }
}

/// One timed fault window: active on `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fault {
    /// When the fault begins, µs.
    pub start_us: f64,
    /// When the fault clears (a crash's recovery timestamp), µs.
    pub end_us: f64,
    /// What breaks.
    pub kind: FaultKind,
}

impl Fault {
    fn active_at(&self, t: f64) -> bool {
        self.start_us <= t && t < self.end_us
    }
}

/// A replayable schedule of faults for one run. Construct scripted plans
/// with [`FaultPlan::scripted`] or seeded ones with [`FaultSpec::plan`];
/// an empty plan ([`FaultPlan::none`]) leaves the serving tier on its
/// fault-free fast path, bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FaultPlan {
    /// Fault windows, sorted by start time (ties keep insertion order).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults, byte-identical behavior to a runtime
    /// without fault injection at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A hand-written plan. Windows are sorted by start time; windows
    /// with `end_us <= start_us` are empty and dropped.
    pub fn scripted(mut faults: Vec<Fault>) -> Self {
        faults.retain(|f| f.end_us > f.start_us);
        faults.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        FaultPlan { faults }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Every timestamp at which some fault starts or ends, sorted and
    /// deduplicated — the event points where lane rates change.
    pub fn transitions(&self) -> Vec<f64> {
        let mut ts: Vec<f64> = self
            .faults
            .iter()
            .flat_map(|f| [f.start_us, f.end_us])
            .collect();
        ts.sort_by(f64::total_cmp);
        ts.dedup();
        ts
    }

    /// True when any fault window covers `t`.
    pub fn any_active(&self, t: f64) -> bool {
        self.faults.iter().any(|f| f.active_at(t))
    }

    /// The throughput rate of `shard` at `t` from slowdowns and stalls:
    /// 1 healthy, 0 stalled, the product of active slowdown rates
    /// otherwise. Crashes are *not* folded in — they change job
    /// ownership, not just speed, so the runtime handles them separately
    /// via [`FaultPlan::crashed`].
    pub fn rate_of(&self, shard: usize, t: f64) -> f64 {
        let mut rate = 1.0f64;
        for f in &self.faults {
            if !f.active_at(t) {
                continue;
            }
            match f.kind {
                FaultKind::Stall { shard: s } if s == shard => return 0.0,
                FaultKind::Slowdown { shard: s, rate: r } if s == shard => {
                    rate *= r.clamp(0.0, 1.0);
                }
                _ => {}
            }
        }
        rate
    }

    /// True when a crash window covers `(shard, t)`.
    pub fn crashed(&self, shard: usize, t: f64) -> bool {
        self.faults.iter().any(|f| {
            f.active_at(t) && matches!(f.kind, FaultKind::Crash { shard: s } if s == shard)
        })
    }

    /// The all-gather slowdown factor at `t` (≥ 1): the product of every
    /// active link-degradation factor.
    pub fn link_factor(&self, t: f64) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active_at(t))
            .map(|f| match f.kind {
                FaultKind::LinkDegrade { factor } => factor.max(1.0),
                _ => 1.0,
            })
            .product()
    }

    /// Total time `shard` could make no progress (crash or stall
    /// windows) within `[0, until]`, µs. Overlapping windows are merged
    /// so downtime never exceeds `until`.
    pub fn downtime_us(&self, shard: usize, until: f64) -> f64 {
        let mut windows: Vec<(f64, f64)> = self
            .faults
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    FaultKind::Crash { shard: s } | FaultKind::Stall { shard: s } if s == shard
                )
            })
            .map(|f| (f.start_us.max(0.0), f.end_us.min(until)))
            .filter(|&(s, e)| e > s)
            .collect();
        windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut total = 0.0;
        let mut frontier = f64::NEG_INFINITY;
        for (s, e) in windows {
            let s = s.max(frontier);
            if e > s {
                total += e - s;
                frontier = e;
            }
        }
        total
    }
}

/// The statistical shape of a seeded fault schedule — the fault-side
/// analogue of [`crate::WorkloadSpec`]. Fault starts are a Poisson
/// process (exponential gaps), durations are exponential, kinds are
/// drawn by weight, and shard-scoped faults pick a shard uniformly.
/// Identical `(spec, num_shards, horizon, seed)` replays a bit-identical
/// [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultSpec {
    /// Mean gap between fault starts, µs.
    pub mean_time_between_us: f64,
    /// Mean fault duration, µs.
    pub mean_duration_us: f64,
    /// Relative draw weight of slowdown faults.
    pub slowdown_weight: f64,
    /// Relative draw weight of stall faults.
    pub stall_weight: f64,
    /// Relative draw weight of crash faults.
    pub crash_weight: f64,
    /// Relative draw weight of link-degradation faults.
    pub link_weight: f64,
    /// Throughput multiplier a slowdown imposes, in `(0, 1)`.
    pub slowdown_rate: f64,
    /// Bandwidth-cut factor a link degradation imposes, ≥ 1.
    pub link_factor: f64,
}

impl FaultSpec {
    /// A balanced mix of all four fault kinds at the given cadence.
    pub fn mixed(mean_time_between_us: f64, mean_duration_us: f64) -> Self {
        FaultSpec {
            mean_time_between_us,
            mean_duration_us,
            slowdown_weight: 3.0,
            stall_weight: 1.0,
            crash_weight: 1.0,
            link_weight: 1.0,
            slowdown_rate: 0.4,
            link_factor: 8.0,
        }
    }

    /// Synthesize the fault schedule for `num_shards` shards over
    /// `[0, horizon_us)` from `seed`. Identical arguments produce
    /// byte-identical plans.
    pub fn plan(&self, num_shards: usize, horizon_us: f64, seed: u64) -> FaultPlan {
        let total_weight =
            self.slowdown_weight + self.stall_weight + self.crash_weight + self.link_weight;
        if num_shards == 0 || horizon_us <= 0.0 || total_weight <= 0.0 {
            return FaultPlan::none();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x000F_A017_5EED);
        let mut faults = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -self.mean_time_between_us * (1.0 - u).ln();
            if t >= horizon_us {
                break;
            }
            let d: f64 = rng.gen_range(0.0..1.0);
            let duration = -self.mean_duration_us * (1.0 - d).ln();
            let shard = rng.gen_range(0..num_shards as u64) as usize;
            let pick = rng.gen_range(0.0..total_weight);
            let kind = if pick < self.slowdown_weight {
                FaultKind::Slowdown {
                    shard,
                    rate: self.slowdown_rate.clamp(1e-3, 1.0),
                }
            } else if pick < self.slowdown_weight + self.stall_weight {
                FaultKind::Stall { shard }
            } else if pick < self.slowdown_weight + self.stall_weight + self.crash_weight {
                FaultKind::Crash { shard }
            } else {
                FaultKind::LinkDegrade {
                    factor: self.link_factor.max(1.0),
                }
            };
            faults.push(Fault {
                start_us: t,
                end_us: t + duration.max(1.0),
                kind,
            });
        }
        FaultPlan::scripted(faults)
    }
}

/// A correlated fault kind scoped to a whole [`DeviceClass`] of the
/// fleet rather than a single shard lane — the failure mode a real
/// device pool sees when a rack PDU trips or a driver rollout bricks
/// one accelerator generation.
///
/// [`DeviceClass`]: crate::fleet::DeviceClass
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ClassFaultKind {
    /// Every lane of every member pinned to the class is dead for the
    /// window (expands to [`FaultKind::Crash`] on every shard).
    Outage,
    /// Every lane of every member on the class retires work at `rate`
    /// of healthy throughput (expands to [`FaultKind::Slowdown`]) —
    /// a fleet-wide thermal event or power cap.
    Brownout {
        /// Throughput multiplier, in `(0, 1)`.
        rate: f64,
    },
}

/// One timed correlated fault window: `kind` hits device class `class`
/// on `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClassFaultWindow {
    /// Index of the device class the window hits (into the fleet's
    /// class list).
    pub class: usize,
    /// What breaks, fleet-wide on that class.
    pub kind: ClassFaultKind,
    /// When the window opens, µs.
    pub start_us: f64,
    /// When the window clears, µs.
    pub end_us: f64,
}

impl ClassFaultWindow {
    fn active_at(&self, t: f64) -> bool {
        self.start_us <= t && t < self.end_us
    }

    fn overlaps(&self, start_us: f64, end_us: f64) -> bool {
        self.start_us < end_us && start_us < self.end_us
    }
}

/// The fleet-level fault schedule: scripted correlated class windows
/// plus an optional background [`FaultSpec`] drawn independently per
/// member. The fleet analogue of [`FaultSpec`]: identical
/// `(spec, shards, horizon, seed)` replays a bit-identical
/// [`FleetFaultPlan`].
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FleetFaultSpec {
    /// Correlated whole-class windows, applied to every member pinned
    /// to the named class at serve time.
    pub class_windows: Vec<ClassFaultWindow>,
    /// Background per-member fault mix; `None` injects nothing beyond
    /// the class windows.
    pub background: Option<FaultSpec>,
}

impl FleetFaultSpec {
    /// Materialize the plan for a fleet whose member `i` runs
    /// `shards[i]` shard lanes. Background plans are seeded per member
    /// with the same golden-ratio stride the fleet workload uses for
    /// per-scenario streams, so members stay decorrelated but
    /// replayable.
    pub fn plan(&self, shards: &[usize], horizon_us: f64, seed: u64) -> FleetFaultPlan {
        let mut class_windows: Vec<ClassFaultWindow> = self
            .class_windows
            .iter()
            .copied()
            .filter(|w| w.end_us > w.start_us)
            .collect();
        class_windows.sort_by(|a, b| {
            a.start_us
                .total_cmp(&b.start_us)
                .then(a.class.cmp(&b.class))
        });
        let member_plans = shards
            .iter()
            .enumerate()
            .map(|(i, &n)| match &self.background {
                Some(spec) => spec.plan(
                    n,
                    horizon_us,
                    seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                None => FaultPlan::none(),
            })
            .collect();
        FleetFaultPlan {
            class_windows,
            member_plans,
        }
    }
}

/// A materialized fleet fault schedule: one background [`FaultPlan`]
/// per member plus the correlated class windows. The per-member plan a
/// runtime actually executes comes from [`FleetFaultPlan::member_plan`],
/// which expands the class windows of the member's *current* class onto
/// its shard lanes — so a migrated member escapes its old class's
/// outages and inherits its new class's.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FleetFaultPlan {
    /// Correlated whole-class windows, sorted by start time.
    pub class_windows: Vec<ClassFaultWindow>,
    /// Background fault plan per fleet member, in member order.
    pub member_plans: Vec<FaultPlan>,
}

impl FleetFaultPlan {
    /// The empty plan for `num_members` members: injects nothing, and
    /// [`member_plan`](Self::member_plan) returns [`FaultPlan::none`]
    /// everywhere — the fleet's bit-identity fast path.
    pub fn none(num_members: usize) -> Self {
        FleetFaultPlan {
            class_windows: Vec::new(),
            member_plans: vec![FaultPlan::none(); num_members],
        }
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.class_windows.is_empty() && self.member_plans.iter().all(FaultPlan::is_empty)
    }

    /// The concrete [`FaultPlan`] member `member` executes while pinned
    /// to device class `class` with `num_shards` shard lanes: its
    /// background plan merged with every class window on `class`
    /// expanded onto all of its lanes (Outage → crash, Brownout →
    /// slowdown).
    pub fn member_plan(&self, member: usize, class: usize, num_shards: usize) -> FaultPlan {
        let mut faults = self
            .member_plans
            .get(member)
            .map(|p| p.faults.clone())
            .unwrap_or_default();
        for w in self.class_windows.iter().filter(|w| w.class == class) {
            for shard in 0..num_shards {
                let kind = match w.kind {
                    ClassFaultKind::Outage => FaultKind::Crash { shard },
                    ClassFaultKind::Brownout { rate } => FaultKind::Slowdown {
                        shard,
                        rate: rate.clamp(1e-3, 1.0),
                    },
                };
                faults.push(Fault {
                    start_us: w.start_us,
                    end_us: w.end_us,
                    kind,
                });
            }
        }
        FaultPlan::scripted(faults)
    }

    /// True when an outage window on `class` covers `t`.
    pub fn outage_active(&self, class: usize, t: f64) -> bool {
        self.class_windows
            .iter()
            .any(|w| w.class == class && matches!(w.kind, ClassFaultKind::Outage) && w.active_at(t))
    }

    /// True when any outage window on `class` intersects
    /// `[start_us, end_us)` — the query a staged migration runs before
    /// committing each rollout stage onto a target class.
    pub fn outage_overlaps(&self, class: usize, start_us: f64, end_us: f64) -> bool {
        self.class_windows.iter().any(|w| {
            w.class == class
                && matches!(w.kind, ClassFaultKind::Outage)
                && w.overlaps(start_us, end_us)
        })
    }

    /// Total outage downtime windows on `class` clipped to
    /// `[0, until]`, µs, overlaps merged.
    pub fn outage_downtime_us(&self, class: usize, until: f64) -> f64 {
        let mut windows: Vec<(f64, f64)> = self
            .class_windows
            .iter()
            .filter(|w| w.class == class && matches!(w.kind, ClassFaultKind::Outage))
            .map(|w| (w.start_us.max(0.0), w.end_us.min(until)))
            .filter(|&(s, e)| e > s)
            .collect();
        windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut total = 0.0;
        let mut frontier = f64::NEG_INFINITY;
        for (s, e) in windows {
            let s = s.max(frontier);
            if e > s {
                total += e - s;
                frontier = e;
            }
        }
        total
    }
}

/// A fault window scoped to one pipeline stage: the wrapped [`Fault`]
/// is injected only into that stage's tier, leaving the other stages
/// healthy — the shape that makes per-stage breakers and fallbacks
/// observable (a whole-pipeline fault would just look like overload).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageFault {
    /// Pipeline stage index the window applies to.
    pub stage: usize,
    /// The fault injected into that stage's shard lanes.
    pub fault: Fault,
}

/// The pipeline-level fault schedule: scripted stage-scoped windows plus
/// an optional background [`FaultSpec`] drawn independently per stage.
/// The staged analogue of [`FleetFaultSpec`]: identical
/// `(spec, stage shard counts, horizon, seed)` replays bit-identical
/// per-stage [`FaultPlan`]s.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct PipelineFaultSpec {
    /// Stage-scoped scripted windows.
    pub scripted: Vec<StageFault>,
    /// Background per-stage fault mix; `None` injects nothing beyond
    /// the scripted windows.
    pub background: Option<FaultSpec>,
}

impl PipelineFaultSpec {
    /// The empty schedule: every stage gets [`FaultPlan::none`] — the
    /// pipeline's bit-identity fast path.
    pub fn none() -> Self {
        PipelineFaultSpec::default()
    }

    /// A schedule of scripted stage windows only.
    pub fn scripted(scripted: Vec<StageFault>) -> Self {
        PipelineFaultSpec {
            scripted,
            background: None,
        }
    }

    /// Materialize one [`FaultPlan`] per stage, where stage `k` runs
    /// `stage_shards[k]` shard lanes. Background plans are seeded per
    /// stage with the same golden-ratio stride the fleet uses for
    /// per-member plans, so stages stay decorrelated but replayable.
    /// Scripted windows naming a stage out of range are dropped.
    pub fn plans(&self, stage_shards: &[usize], horizon_us: f64, seed: u64) -> Vec<FaultPlan> {
        stage_shards
            .iter()
            .enumerate()
            .map(|(k, &n)| {
                let mut faults: Vec<Fault> = self
                    .scripted
                    .iter()
                    .filter(|sf| sf.stage == k)
                    .map(|sf| sf.fault)
                    .collect();
                if let Some(spec) = &self.background {
                    let plan = spec.plan(
                        n,
                        horizon_us,
                        seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    faults.extend(plan.faults);
                }
                FaultPlan::scripted(faults)
            })
            .collect()
    }
}

/// How much standby capacity backs the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum ReplicationPolicy {
    /// No replicas: hedging is impossible; crash failover can only
    /// re-project onto survivors.
    #[default]
    None,
    /// One standby lane mirroring the costliest shard (by the same
    /// per-feature costs [`Placement::balance_by_cost`] places with) —
    /// the shard most likely to gate the gather gets a spare.
    MirrorHottest,
    /// One standby lane per shard.
    Full,
}

impl ReplicationPolicy {
    /// Which shards get a standby replica lane, in ascending shard
    /// order. `costs` are per-feature costs in the same units
    /// [`Placement::balance_by_cost`] consumes; ties break toward the
    /// lower shard index so the choice is a pure function of its inputs.
    pub fn mirrored_shards(&self, placement: &Placement, costs: &[f64]) -> Vec<usize> {
        match self {
            ReplicationPolicy::None => Vec::new(),
            ReplicationPolicy::Full => (0..placement.num_devices).collect(),
            ReplicationPolicy::MirrorHottest => {
                let mut load = vec![0.0f64; placement.num_devices];
                for (f, &d) in placement.device_of.iter().enumerate() {
                    load[d] += costs.get(f).copied().unwrap_or(0.0);
                }
                let hottest = load
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                vec![hottest]
            }
        }
    }
}

/// The degradation ladder's thresholds, graded on the tier's worst
/// effective backlog (device-µs owed divided by the lane's current
/// throughput rate — a stalled lane is infinitely backlogged).
///
/// * level 0 — normal operation: hedging active, crash failover
///   re-executes lost work,
/// * level 1 (`backlog > drop_hedge_backlog_us`) — the hedge is dropped:
///   duplicate work is the wrong spend when every lane is behind,
/// * level 2 (`backlog > partial_backlog_us`) — chunks touched by a
///   crashed shard are served with that shard's features zero-pooled
///   (flagged [`degraded`](crate::stats::ShardedRequestRecord::degraded))
///   instead of re-executed, so the tier keeps answering instead of
///   shedding.
///
/// Backlog is itself an integral of pressure — it only exceeds a
/// threshold after demand has outrun capacity for a sustained stretch —
/// so grading on it implements "sustained SLO pressure" without a
/// separate hysteresis clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Effective-backlog threshold above which hedging stops, µs.
    pub drop_hedge_backlog_us: f64,
    /// Effective-backlog threshold above which crashed-shard chunks are
    /// served partial instead of failed over, µs.
    pub partial_backlog_us: f64,
    /// How the backlog sample is turned into the pressure the thresholds
    /// grade on.
    pub pressure: PressureSignal,
}

impl LadderConfig {
    /// A ladder that fails over but never serves partial output.
    pub fn failover_only() -> Self {
        LadderConfig {
            drop_hedge_backlog_us: f64::MAX,
            partial_backlog_us: f64::MAX,
            pressure: PressureSignal::Instantaneous,
        }
    }

    /// The ladder level at the given effective backlog.
    pub fn level(&self, backlog_us: f64) -> u8 {
        if backlog_us > self.partial_backlog_us {
            2
        } else if backlog_us > self.drop_hedge_backlog_us {
            1
        } else {
            0
        }
    }
}

/// How the ladder converts raw backlog samples into rung pressure.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PressureSignal {
    /// Grade each decision on the instantaneous worst effective backlog
    /// — the historical behavior (and the identity-gate default): a
    /// single spiked sample can flip a rung.
    #[default]
    Instantaneous,
    /// Grade on a leaky-bucket (exponentially time-decayed) average of
    /// the backlog samples: pressure charges toward the raw backlog with
    /// time constant `tau_us` and leaks back the same way, so a
    /// sub-millisecond spike cannot flip a rung but sustained pressure
    /// still does.
    LeakyBucket {
        /// Time constant of the charge/leak, µs (≥ 0; 0 degenerates to
        /// instantaneous).
        tau_us: f64,
    },
}

/// Evolves the leaky-bucket pressure between ladder decisions.
/// Deterministic: the value is a pure fold over the (timestamp, backlog)
/// samples the event loop feeds it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PressureTracker {
    value: f64,
    last_us: f64,
}

impl PressureTracker {
    /// Fold in a backlog sample at `now` and return the pressure to
    /// grade on. Non-finite samples (a stalled lane is infinitely
    /// backlogged) re-seed the bucket directly — `∞ × decay` would be
    /// `NaN`-prone and a stall should max the ladder out immediately.
    pub fn observe(&mut self, now: f64, raw_backlog_us: f64, signal: PressureSignal) -> f64 {
        let tau_us = match signal {
            PressureSignal::Instantaneous => return raw_backlog_us,
            PressureSignal::LeakyBucket { tau_us } => tau_us,
        };
        if !raw_backlog_us.is_finite() || !self.value.is_finite() || tau_us <= 0.0 {
            self.value = raw_backlog_us;
        } else {
            let dt = (now - self.last_us).max(0.0);
            let alpha = 1.0 - (-dt / tau_us).exp();
            self.value += (raw_backlog_us - self.value) * alpha;
        }
        self.last_us = now;
        self.value
    }

    /// The current pressure without folding in a new sample.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// Fault injection plus the tier's full response policy. The default —
/// empty plan, no deadline, no replication, no ladder — is the exact
/// PR-2 serving tier: the event loop takes the same branches and
/// produces bit-identical reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceConfig {
    /// The faults injected into the run.
    pub plan: FaultPlan,
    /// Per-chunk shard deadline, µs after fan-out: a shard that has not
    /// finished a chunk by then triggers a hedged re-execution on its
    /// replica lane (if one exists and the ladder still allows hedging).
    pub chunk_deadline_us: Option<f64>,
    /// Standby replica lanes.
    pub replication: ReplicationPolicy,
    /// Crash mitigation: `Some` enables failover and the degradation
    /// ladder; `None` is the no-mitigation baseline where a crashed lane
    /// holds its queue frozen until recovery (the restart-from-checkpoint
    /// model) and the tier sheds under the resulting backlog.
    pub ladder: Option<LadderConfig>,
    /// Serve read traffic from healthy replica lanes instead of keeping
    /// them as cold standbys: when the mirrored shard's replica lane has
    /// less backlog than the primary and *no fault window is active
    /// anywhere in the tier*, the chunk's shard work runs on the replica.
    /// Any active fault drains reads back to the primaries so the replica
    /// is free to absorb failover and hedge traffic. Off by default —
    /// the cold-standby configuration stays bit-identical.
    pub replica_reads: bool,
}

impl ResilienceConfig {
    /// True when every knob is off — the bit-for-bit fault-free path.
    pub fn is_default(&self) -> bool {
        self.plan.is_empty()
            && self.chunk_deadline_us.is_none()
            && self.replication == ReplicationPolicy::None
            && self.ladder.is_none()
            && !self.replica_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{ModelPreset, Placement};

    fn crash(shard: usize, start: f64, end: f64) -> Fault {
        Fault {
            start_us: start,
            end_us: end,
            kind: FaultKind::Crash { shard },
        }
    }

    #[test]
    fn scripted_plans_sort_and_drop_empty_windows() {
        let plan = FaultPlan::scripted(vec![
            crash(1, 500.0, 900.0),
            crash(0, 100.0, 100.0), // empty, dropped
            Fault {
                start_us: 50.0,
                end_us: 200.0,
                kind: FaultKind::Stall { shard: 2 },
            },
        ]);
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[0].start_us, 50.0);
        assert_eq!(plan.transitions(), vec![50.0, 200.0, 500.0, 900.0]);
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::scripted(vec![crash(0, 100.0, 200.0)]);
        assert!(!plan.crashed(0, 99.9));
        assert!(plan.crashed(0, 100.0));
        assert!(plan.crashed(0, 199.9));
        assert!(!plan.crashed(0, 200.0), "faults clear at their end stamp");
        assert!(!plan.crashed(1, 150.0), "other shards unaffected");
        assert!(plan.any_active(150.0));
        assert!(!plan.any_active(250.0));
    }

    #[test]
    fn rates_compose_and_stall_dominates() {
        let plan = FaultPlan::scripted(vec![
            Fault {
                start_us: 0.0,
                end_us: 100.0,
                kind: FaultKind::Slowdown {
                    shard: 0,
                    rate: 0.5,
                },
            },
            Fault {
                start_us: 50.0,
                end_us: 100.0,
                kind: FaultKind::Slowdown {
                    shard: 0,
                    rate: 0.5,
                },
            },
            Fault {
                start_us: 80.0,
                end_us: 90.0,
                kind: FaultKind::Stall { shard: 0 },
            },
        ]);
        assert_eq!(plan.rate_of(0, 10.0), 0.5);
        assert_eq!(plan.rate_of(0, 60.0), 0.25, "slowdowns compose");
        assert_eq!(plan.rate_of(0, 85.0), 0.0, "stall wins");
        assert_eq!(plan.rate_of(1, 60.0), 1.0, "other shards healthy");
        assert_eq!(plan.rate_of(0, 150.0), 1.0, "clears after the window");
    }

    #[test]
    fn link_factor_composes_and_defaults_to_one() {
        let plan = FaultPlan::scripted(vec![
            Fault {
                start_us: 0.0,
                end_us: 100.0,
                kind: FaultKind::LinkDegrade { factor: 4.0 },
            },
            Fault {
                start_us: 50.0,
                end_us: 150.0,
                kind: FaultKind::LinkDegrade { factor: 2.0 },
            },
        ]);
        assert_eq!(plan.link_factor(10.0), 4.0);
        assert_eq!(plan.link_factor(75.0), 8.0);
        assert_eq!(plan.link_factor(120.0), 2.0);
        assert_eq!(plan.link_factor(200.0), 1.0);
    }

    #[test]
    fn downtime_merges_overlaps_and_clips_to_the_run() {
        let plan = FaultPlan::scripted(vec![
            crash(0, 100.0, 300.0),
            Fault {
                start_us: 200.0,
                end_us: 400.0,
                kind: FaultKind::Stall { shard: 0 },
            },
            crash(0, 1000.0, 2000.0),
        ]);
        // [100, 400) merged = 300, plus [1000, 1200) clipped = 200.
        assert!((plan.downtime_us(0, 1200.0) - 500.0).abs() < 1e-9);
        assert_eq!(plan.downtime_us(1, 1200.0), 0.0);
    }

    #[test]
    fn seeded_plans_replay_bit_for_bit() {
        let spec = FaultSpec::mixed(2_000.0, 1_500.0);
        let a = spec.plan(4, 20_000.0, 7);
        let b = spec.plan(4, 20_000.0, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "20k µs horizon at 2k µs cadence must fault");
        assert_ne!(a, spec.plan(4, 20_000.0, 8), "different seed differs");
        for f in &a.faults {
            assert!(f.end_us > f.start_us);
            assert!(f.start_us < 20_000.0);
            if let Some(s) = f.kind.shard() {
                assert!(s < 4);
            }
        }
    }

    #[test]
    fn mirror_hottest_tracks_the_costliest_shard() {
        let m = ModelPreset::A.scaled(0.01);
        let n = m.features.len();
        // All cost on features of shard the last feature lands on.
        let placement = Placement::round_robin(&m, 3);
        let mut costs = vec![1.0; n];
        costs[1] = 1e6; // feature 1 → shard 1 under round-robin
        assert_eq!(
            ReplicationPolicy::MirrorHottest.mirrored_shards(&placement, &costs),
            vec![1]
        );
        assert_eq!(
            ReplicationPolicy::None.mirrored_shards(&placement, &costs),
            Vec::<usize>::new()
        );
        assert_eq!(
            ReplicationPolicy::Full.mirrored_shards(&placement, &costs),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn ladder_levels_grade_on_backlog() {
        let ladder = LadderConfig {
            drop_hedge_backlog_us: 1_000.0,
            partial_backlog_us: 5_000.0,
            pressure: PressureSignal::Instantaneous,
        };
        assert_eq!(ladder.level(0.0), 0);
        assert_eq!(ladder.level(1_000.0), 0, "thresholds are exclusive");
        assert_eq!(ladder.level(1_001.0), 1);
        assert_eq!(ladder.level(f64::INFINITY), 2, "a stalled lane maxes out");
        assert_eq!(LadderConfig::failover_only().level(f64::MAX / 2.0), 0);
    }

    #[test]
    fn instantaneous_pressure_passes_samples_through_untouched() {
        let mut tracker = PressureTracker::default();
        let signal = PressureSignal::Instantaneous;
        assert_eq!(tracker.observe(0.0, 7_500.0, signal), 7_500.0);
        assert_eq!(tracker.observe(1.0, 0.0, signal), 0.0);
        // The identity path never mutates the bucket.
        assert_eq!(tracker, PressureTracker::default());
    }

    #[test]
    fn leaky_bucket_rejects_spikes_but_tracks_sustained_pressure() {
        let signal = PressureSignal::LeakyBucket { tau_us: 100_000.0 };
        let mut tracker = PressureTracker::default();
        // A 1 ms spike against a 100 ms time constant charges ~1%.
        let after_spike = tracker.observe(1_000.0, 10_000.0, signal);
        assert!(
            after_spike < 0.02 * 10_000.0,
            "spike must barely charge the bucket: {after_spike}"
        );
        // Sustained pressure converges onto the raw backlog.
        let mut p = after_spike;
        for k in 1..=20 {
            p = tracker.observe(1_000.0 + k as f64 * 50_000.0, 10_000.0, signal);
        }
        assert!(p > 0.99 * 10_000.0, "sustained pressure must converge: {p}");
        // And leaks back out once the backlog clears.
        let drained = tracker.observe(2_000_000.0, 0.0, signal);
        assert!(drained < 10.0, "bucket must leak: {drained}");
    }

    #[test]
    fn leaky_bucket_reseeds_on_infinite_backlog() {
        let signal = PressureSignal::LeakyBucket { tau_us: 100_000.0 };
        let mut tracker = PressureTracker::default();
        tracker.observe(0.0, 100.0, signal);
        // A stalled lane is infinitely backlogged: the ladder must max
        // out immediately, not after a NaN-polluted decay.
        assert_eq!(tracker.observe(1.0, f64::INFINITY, signal), f64::INFINITY);
        // Recovery re-seeds cleanly from the next finite sample.
        let back = tracker.observe(2.0, 500.0, signal);
        assert_eq!(back, 500.0);
        assert!(tracker.value().is_finite());
    }

    fn outage(class: usize, start: f64, end: f64) -> ClassFaultWindow {
        ClassFaultWindow {
            class,
            kind: ClassFaultKind::Outage,
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn empty_fleet_plan_expands_to_empty_member_plans() {
        let plan = FleetFaultPlan::none(3);
        assert!(plan.is_empty());
        for m in 0..3 {
            assert!(plan.member_plan(m, 0, 4).is_empty());
        }
        assert!(!plan.outage_active(0, 0.0));
        assert_eq!(plan.outage_downtime_us(0, 1e9), 0.0);
    }

    #[test]
    fn class_outage_expands_to_crashes_on_every_lane_of_the_class() {
        let spec = FleetFaultSpec {
            class_windows: vec![
                outage(1, 1_000.0, 2_000.0),
                ClassFaultWindow {
                    class: 0,
                    kind: ClassFaultKind::Brownout { rate: 0.25 },
                    start_us: 500.0,
                    end_us: 800.0,
                },
                outage(0, 300.0, 300.0), // empty, dropped
            ],
            background: None,
        };
        let plan = spec.plan(&[2, 3], 10_000.0, 7);
        assert_eq!(plan.class_windows.len(), 2, "empty windows are dropped");
        assert!(!plan.is_empty());

        // A member on class 1 sees a crash on each of its lanes.
        let on_hit = plan.member_plan(0, 1, 2);
        assert_eq!(on_hit.faults.len(), 2);
        assert!(on_hit.crashed(0, 1_500.0) && on_hit.crashed(1, 1_500.0));
        assert!(!on_hit.crashed(0, 2_000.0), "windows stay half-open");

        // The same member pinned to class 0 instead sees the brownout.
        let on_other = plan.member_plan(0, 0, 2);
        assert_eq!(on_other.rate_of(0, 600.0), 0.25);
        assert!(!on_other.crashed(0, 1_500.0));

        // Outage queries are class- and kind-scoped.
        assert!(plan.outage_active(1, 1_000.0));
        assert!(!plan.outage_active(1, 2_000.0));
        assert!(!plan.outage_active(0, 600.0), "brownout is not an outage");
        assert!(plan.outage_overlaps(1, 1_900.0, 5_000.0));
        assert!(!plan.outage_overlaps(1, 2_000.0, 5_000.0));
        assert_eq!(plan.outage_downtime_us(1, 1_600.0), 600.0);
    }

    #[test]
    fn fleet_background_plans_are_decorrelated_but_replayable() {
        let spec = FleetFaultSpec {
            class_windows: vec![outage(0, 1_000.0, 2_000.0)],
            background: Some(FaultSpec::mixed(2_000.0, 1_000.0)),
        };
        let a = spec.plan(&[2, 2], 20_000.0, 42);
        let b = spec.plan(&[2, 2], 20_000.0, 42);
        assert_eq!(a, b, "same inputs replay bit-for-bit");
        assert_ne!(
            a.member_plans[0], a.member_plans[1],
            "members draw independent background faults"
        );
        // The background seed derivation matches FaultSpec::plan per member.
        let direct = FaultSpec::mixed(2_000.0, 1_000.0).plan(
            2,
            20_000.0,
            42u64 ^ 1u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        assert_eq!(a.member_plans[1], direct);
    }

    #[test]
    fn default_resilience_is_the_fault_free_path() {
        assert!(ResilienceConfig::default().is_default());
        let cfg = ResilienceConfig {
            chunk_deadline_us: Some(100.0),
            ..Default::default()
        };
        assert!(!cfg.is_default());
        let cfg = ResilienceConfig {
            replica_reads: true,
            ..Default::default()
        };
        assert!(
            !cfg.is_default(),
            "replica reads change the event sequence and must opt out of \
             the bit-identity fast path"
        );
    }
}
