//! Distribution-drift detection.
//!
//! RecFlex tunes its schedule against the *historical* feature
//! distribution; Section VI-C shows the tuned schedule stays near-optimal
//! under moderate shift but degrades once pooling factors or coverage
//! move far enough. An online server therefore needs to notice when live
//! traffic has drifted from the distribution the engine was tuned on and
//! trigger a background retune. The observable we track is the cheapest
//! one the host already has: **mean lookups per sample** (total CSR
//! indices / batch size), which moves monotonically with both
//! pooling-factor scale and coverage shift (the two axes of
//! [`recflex_data::shift_distribution`]).

use recflex_data::{Batch, ModelConfig};

/// Configuration for the drift monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// How many admitted batches form one observation window.
    pub window: usize,
    /// Relative deviation of the window mean from the tuned reference
    /// that counts as drift (e.g. `0.25` = ±25 %).
    pub threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 16,
            threshold: 0.25,
        }
    }
}

/// Sliding-window monitor comparing live lookups-per-sample against the
/// value the current engine was tuned for.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    reference_lps: f64,
    window_sum_lookups: f64,
    window_sum_samples: f64,
    window_len: usize,
}

impl DriftMonitor {
    /// Monitor against an explicit tuned reference (lookups per sample).
    pub fn new(config: DriftConfig, reference_lps: f64) -> Self {
        DriftMonitor {
            config,
            reference_lps: reference_lps.max(f64::MIN_POSITIVE),
            window_sum_lookups: 0.0,
            window_sum_samples: 0.0,
            window_len: 0,
        }
    }

    /// Monitor against the *expected* lookups-per-sample of the model
    /// configuration the engine was tuned on: Σ coverage·mean-pooling
    /// over features.
    pub fn for_model(config: DriftConfig, model: &ModelConfig) -> Self {
        Self::new(config, expected_lookups_per_sample(model))
    }

    /// The reference the monitor currently compares against.
    pub fn reference_lps(&self) -> f64 {
        self.reference_lps
    }

    /// Mean lookups-per-sample over the current (possibly partial)
    /// window, if anything has been observed.
    pub fn window_lps(&self) -> Option<f64> {
        (self.window_sum_samples > 0.0).then(|| self.window_sum_lookups / self.window_sum_samples)
    }

    /// Record one admitted batch. Returns `true` when a full window has
    /// accumulated and its mean deviates from the reference by more than
    /// the threshold — i.e. the caller should kick off a retune. The
    /// window restarts after every verdict (drifted or not).
    pub fn observe(&mut self, batch: &Batch) -> bool {
        self.window_sum_lookups += batch.total_lookups() as f64;
        self.window_sum_samples += batch.batch_size as f64;
        self.window_len += 1;
        if self.window_len < self.config.window {
            return false;
        }
        let mean = if self.window_sum_samples > 0.0 {
            self.window_sum_lookups / self.window_sum_samples
        } else {
            0.0
        };
        self.window_sum_lookups = 0.0;
        self.window_sum_samples = 0.0;
        self.window_len = 0;
        (mean / self.reference_lps - 1.0).abs() > self.config.threshold
    }

    /// Re-anchor after a retune: the freshly tuned engine now matches
    /// `new_reference_lps`, so deviation is measured from there.
    pub fn rebase(&mut self, new_reference_lps: f64) {
        self.reference_lps = new_reference_lps.max(f64::MIN_POSITIVE);
        self.window_sum_lookups = 0.0;
        self.window_sum_samples = 0.0;
        self.window_len = 0;
    }
}

/// Expected lookups per sample of a model configuration:
/// Σ over features of coverage × mean pooling factor.
pub fn expected_lookups_per_sample(model: &ModelConfig) -> f64 {
    model
        .features
        .iter()
        .map(|f| f.coverage * f.pooling.mean())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{shift_distribution, Batch, ModelPreset};

    fn batches(model: &ModelConfig, n: usize, seed: u64) -> Vec<Batch> {
        (0..n)
            .map(|i| Batch::generate(model, 64, seed + i as u64))
            .collect()
    }

    #[test]
    fn in_distribution_traffic_does_not_trigger() {
        let model = ModelPreset::A.scaled(0.01);
        let cfg = DriftConfig {
            window: 8,
            threshold: 0.25,
        };
        let mut mon = DriftMonitor::for_model(cfg, &model);
        for b in batches(&model, 32, 100) {
            assert!(!mon.observe(&b), "no drift expected in-distribution");
        }
    }

    #[test]
    fn shifted_traffic_triggers_within_one_window() {
        let model = ModelPreset::A.scaled(0.01);
        // Double every pooling factor: lookups/sample roughly doubles.
        let shifted = shift_distribution(&model, 2.0, 0.0);
        let cfg = DriftConfig {
            window: 8,
            threshold: 0.25,
        };
        let mut mon = DriftMonitor::for_model(cfg, &model);
        let mut fired = false;
        for b in batches(&shifted, 8, 200) {
            fired |= mon.observe(&b);
        }
        assert!(fired, "2x pooling shift must be detected in one window");
    }

    #[test]
    fn rebase_silences_the_alarm() {
        let model = ModelPreset::A.scaled(0.01);
        let shifted = shift_distribution(&model, 2.0, 0.0);
        let cfg = DriftConfig {
            window: 4,
            threshold: 0.25,
        };
        let mut mon = DriftMonitor::for_model(cfg, &model);
        for b in batches(&shifted, 4, 300) {
            mon.observe(&b);
        }
        // Pretend a retune ran on the shifted distribution.
        mon.rebase(expected_lookups_per_sample(&shifted));
        for b in batches(&shifted, 8, 400) {
            assert!(!mon.observe(&b), "rebased monitor sees no drift");
        }
    }

    #[test]
    fn expected_lps_tracks_pf_scale() {
        let model = ModelPreset::A.scaled(0.01);
        let base = expected_lookups_per_sample(&model);
        let doubled = expected_lookups_per_sample(&shift_distribution(&model, 2.0, 0.0));
        assert!(doubled > base * 1.5, "doubling pooling raises expected lps");
    }
}
