//! Distribution-drift detection.
//!
//! RecFlex tunes its schedule against the *historical* feature
//! distribution; Section VI-C shows the tuned schedule stays near-optimal
//! under moderate shift but degrades once pooling factors or coverage
//! move far enough. An online server therefore needs to notice when live
//! traffic has drifted from the distribution the engine was tuned on and
//! trigger a background retune. The observable we track is the cheapest
//! one the host already has: **mean lookups per sample** (total CSR
//! indices / batch size), which moves monotonically with both
//! pooling-factor scale and coverage shift (the two axes of
//! [`recflex_data::shift_distribution`]).
//!
//! The aggregate alone is blind to *redistributions*: one feature's
//! pooling doubling while another's halves leaves the model-wide mean
//! flat, yet the tuned schedule — which assigned thread resources
//! per-feature — is now wrong on both. A monitor built with
//! [`DriftMonitor::for_model`] therefore also tracks lookups-per-sample
//! **per feature** against each feature's tuned reference
//! (coverage × mean pooling factor) and fires when any single feature
//! deviates, even when the aggregate cancels out.

use recflex_data::{Batch, ModelConfig};

/// Configuration for the drift monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// How many admitted batches form one observation window.
    pub window: usize,
    /// Relative deviation of the window mean from the tuned reference
    /// that counts as drift (e.g. `0.25` = ±25 %).
    pub threshold: f64,
    /// Relative deviation of any *single feature's* window mean from its
    /// own reference that counts as drift. Deliberately wider than
    /// `threshold`: a per-feature estimate averages far fewer lookups
    /// than the model-wide mean, so small-mean features wander tens of
    /// percent on pure sampling noise.
    pub feature_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 16,
            threshold: 0.25,
            feature_threshold: 0.5,
        }
    }
}

/// A feature whose reference traffic rounds to zero still gets a sane
/// relative-deviation denominator (lookups per sample).
const MIN_FEATURE_REFERENCE_LPS: f64 = 1e-3;

/// Sliding-window monitor comparing live lookups-per-sample against the
/// value the current engine was tuned for — model-wide, and (when built
/// with [`DriftMonitor::for_model`] or
/// [`DriftMonitor::with_feature_references`]) per feature.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    reference_lps: f64,
    /// Per-feature tuned references; empty for an aggregate-only monitor.
    reference_feature_lps: Vec<f64>,
    window_sum_lookups: f64,
    window_sum_samples: f64,
    /// Per-feature lookup sums over the current window (parallel to
    /// `reference_feature_lps`).
    window_feature_lookups: Vec<f64>,
    window_len: usize,
    drifted_features: Vec<usize>,
}

impl DriftMonitor {
    /// Monitor against an explicit aggregate reference (lookups per
    /// sample). Tracks only the model-wide mean; use
    /// [`Self::for_model`] to also catch per-feature redistributions.
    pub fn new(config: DriftConfig, reference_lps: f64) -> Self {
        Self::with_feature_references_inner(config, reference_lps, Vec::new())
    }

    /// Monitor against explicit per-feature references (lookups per
    /// sample each, in model feature order). The aggregate reference is
    /// their sum.
    pub fn with_feature_references(config: DriftConfig, per_feature: Vec<f64>) -> Self {
        let total = per_feature.iter().sum();
        Self::with_feature_references_inner(config, total, per_feature)
    }

    fn with_feature_references_inner(
        config: DriftConfig,
        reference_lps: f64,
        per_feature: Vec<f64>,
    ) -> Self {
        let n = per_feature.len();
        DriftMonitor {
            config,
            reference_lps: reference_lps.max(f64::MIN_POSITIVE),
            reference_feature_lps: per_feature,
            window_sum_lookups: 0.0,
            window_sum_samples: 0.0,
            window_feature_lookups: vec![0.0; n],
            window_len: 0,
            drifted_features: Vec::new(),
        }
    }

    /// Monitor against the *expected* lookups-per-sample of the model
    /// configuration the engine was tuned on: coverage·mean-pooling per
    /// feature, and their sum model-wide.
    pub fn for_model(config: DriftConfig, model: &ModelConfig) -> Self {
        Self::with_feature_references(config, expected_lookups_per_sample_per_feature(model))
    }

    /// The aggregate reference the monitor currently compares against.
    pub fn reference_lps(&self) -> f64 {
        self.reference_lps
    }

    /// Per-feature references, if the monitor tracks features.
    pub fn reference_feature_lps(&self) -> &[f64] {
        &self.reference_feature_lps
    }

    /// Mean lookups-per-sample over the current (possibly partial)
    /// window, if anything has been observed.
    pub fn window_lps(&self) -> Option<f64> {
        (self.window_sum_samples > 0.0).then(|| self.window_sum_lookups / self.window_sum_samples)
    }

    /// Per-feature mean lookups-per-sample over the current (possibly
    /// partial) window, if the monitor tracks features and has observed
    /// anything.
    pub fn window_feature_lps(&self) -> Option<Vec<f64>> {
        (self.window_sum_samples > 0.0 && !self.window_feature_lookups.is_empty()).then(|| {
            self.window_feature_lookups
                .iter()
                .map(|&l| l / self.window_sum_samples)
                .collect()
        })
    }

    /// Features that tripped the threshold at the last completed window
    /// (empty if the last verdict was clean, purely aggregate, or no
    /// window has completed yet). Tells the retuner *where* traffic
    /// moved.
    pub fn drifted_features(&self) -> &[usize] {
        &self.drifted_features
    }

    /// Record one admitted batch. Returns `true` when a full window has
    /// accumulated and either the window mean deviates from the aggregate
    /// reference by more than the threshold, or — for a feature-tracking
    /// monitor — any single feature's window mean deviates from its own
    /// reference. The window restarts after every verdict (drifted or
    /// not).
    pub fn observe(&mut self, batch: &Batch) -> bool {
        self.window_sum_lookups += batch.total_lookups() as f64;
        self.window_sum_samples += batch.batch_size as f64;
        if batch.features.len() == self.window_feature_lookups.len() {
            for (sum, fb) in self.window_feature_lookups.iter_mut().zip(&batch.features) {
                *sum += fb.total_lookups() as f64;
            }
        }
        self.window_len += 1;
        if self.window_len < self.config.window {
            return false;
        }
        let samples = self.window_sum_samples;
        let mean = if samples > 0.0 {
            self.window_sum_lookups / samples
        } else {
            0.0
        };
        let aggregate_drift = (mean / self.reference_lps - 1.0).abs() > self.config.threshold;
        self.drifted_features = if samples > 0.0 {
            self.window_feature_lookups
                .iter()
                .zip(&self.reference_feature_lps)
                .enumerate()
                .filter(|&(_, (&sum, &reference))| {
                    let lps = sum / samples;
                    let reference = reference.max(MIN_FEATURE_REFERENCE_LPS);
                    (lps / reference - 1.0).abs() > self.config.feature_threshold
                })
                .map(|(f, _)| f)
                .collect()
        } else {
            Vec::new()
        };
        self.window_sum_lookups = 0.0;
        self.window_sum_samples = 0.0;
        self.window_feature_lookups
            .iter_mut()
            .for_each(|s| *s = 0.0);
        self.window_len = 0;
        aggregate_drift || !self.drifted_features.is_empty()
    }

    /// Re-anchor after a retune: the freshly tuned engine now matches
    /// `new_reference_lps`, so deviation is measured from there. The
    /// caller provided only an aggregate, so per-feature tracking is
    /// dropped — use [`Self::rebase_for_model`] to keep it.
    pub fn rebase(&mut self, new_reference_lps: f64) {
        *self = Self::with_feature_references_inner(self.config, new_reference_lps, Vec::new());
    }

    /// Re-anchor after a retune on `model`'s distribution, keeping
    /// per-feature tracking against the new per-feature references.
    pub fn rebase_for_model(&mut self, model: &ModelConfig) {
        *self = Self::for_model(self.config, model);
    }

    /// Discard the partially accumulated window, keeping the reference.
    /// Called when a retune attempt launches so the next verdict only
    /// reflects traffic observed after the launch. A no-op right after a
    /// verdict (the window restarts on every verdict anyway), so the
    /// drift-fire → retune path is unchanged by the reset.
    pub fn reset_window(&mut self) {
        self.window_sum_lookups = 0.0;
        self.window_sum_samples = 0.0;
        self.window_feature_lookups
            .iter_mut()
            .for_each(|s| *s = 0.0);
        self.window_len = 0;
    }
}

/// Expected lookups per sample of a model configuration:
/// Σ over features of coverage × mean pooling factor.
pub fn expected_lookups_per_sample(model: &ModelConfig) -> f64 {
    expected_lookups_per_sample_per_feature(model)
        .into_iter()
        .sum()
}

/// Expected lookups per sample of each feature (coverage × mean pooling
/// factor), in model feature order.
pub fn expected_lookups_per_sample_per_feature(model: &ModelConfig) -> Vec<f64> {
    model
        .features
        .iter()
        .map(|f| f.coverage * f.pooling.mean())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::{shift_distribution, Batch, ModelPreset};

    fn batches(model: &ModelConfig, n: usize, seed: u64) -> Vec<Batch> {
        (0..n)
            .map(|i| Batch::generate(model, 64, seed + i as u64))
            .collect()
    }

    #[test]
    fn in_distribution_traffic_does_not_trigger() {
        let model = ModelPreset::A.scaled(0.01);
        let cfg = DriftConfig {
            window: 8,
            threshold: 0.25,
            feature_threshold: 0.5,
        };
        let mut mon = DriftMonitor::for_model(cfg, &model);
        for b in batches(&model, 32, 100) {
            assert!(!mon.observe(&b), "no drift expected in-distribution");
        }
    }

    #[test]
    fn shifted_traffic_triggers_within_one_window() {
        let model = ModelPreset::A.scaled(0.01);
        // Double every pooling factor: lookups/sample roughly doubles.
        let shifted = shift_distribution(&model, 2.0, 0.0);
        let cfg = DriftConfig {
            window: 8,
            threshold: 0.25,
            feature_threshold: 0.5,
        };
        let mut mon = DriftMonitor::for_model(cfg, &model);
        let mut fired = false;
        for b in batches(&shifted, 8, 200) {
            fired |= mon.observe(&b);
        }
        assert!(fired, "2x pooling shift must be detected in one window");
    }

    #[test]
    fn rebase_silences_the_alarm() {
        let model = ModelPreset::A.scaled(0.01);
        let shifted = shift_distribution(&model, 2.0, 0.0);
        let cfg = DriftConfig {
            window: 4,
            threshold: 0.25,
            feature_threshold: 0.5,
        };
        let mut mon = DriftMonitor::for_model(cfg, &model);
        for b in batches(&shifted, 4, 300) {
            mon.observe(&b);
        }
        // Pretend a retune ran on the shifted distribution.
        mon.rebase(expected_lookups_per_sample(&shifted));
        for b in batches(&shifted, 8, 400) {
            assert!(!mon.observe(&b), "rebased monitor sees no drift");
        }
    }

    /// Two always-present fixed-pooling features: per-feature traffic is
    /// exact, so the test isolates the redistribution logic from
    /// sampling noise.
    fn two_feature_model(pooling_a: u32, pooling_b: u32) -> ModelConfig {
        use recflex_data::{FeatureSpec, PoolingDist};
        let feat = |name: &str, k: u32| FeatureSpec {
            name: name.into(),
            table_rows: 1000,
            emb_dim: 16,
            pooling: PoolingDist::Fixed(k),
            coverage: 1.0,
            row_skew: 0.0,
        };
        ModelConfig {
            name: "drift-pair".into(),
            features: vec![feat("up", pooling_a), feat("down", pooling_b)],
        }
    }

    #[test]
    fn opposed_per_feature_shifts_cancel_in_aggregate_but_fire() {
        let tuned = two_feature_model(20, 20);
        // Feature 0 rises 60 %, feature 1 falls 60 %: the model-wide mean
        // is still exactly 40 lookups/sample.
        let redistributed = two_feature_model(32, 8);
        let cfg = DriftConfig {
            window: 4,
            threshold: 0.25,
            feature_threshold: 0.5,
        };

        let mut aggregate_only = DriftMonitor::new(cfg, expected_lookups_per_sample(&tuned));
        let mut per_feature = DriftMonitor::for_model(cfg, &tuned);
        let mut aggregate_fired = false;
        let mut per_feature_fired = false;
        for b in batches(&redistributed, 4, 500) {
            aggregate_fired |= aggregate_only.observe(&b);
            per_feature_fired |= per_feature.observe(&b);
        }
        assert!(
            !aggregate_fired,
            "the aggregate mean is unchanged, so the aggregate monitor is blind"
        );
        assert!(
            per_feature_fired,
            "per-feature tracking must catch the redistribution"
        );
        assert_eq!(
            per_feature.drifted_features(),
            &[0, 1],
            "both the rising and the falling feature deviate"
        );
    }

    #[test]
    fn rebase_for_model_keeps_per_feature_tracking() {
        let tuned = two_feature_model(20, 20);
        let redistributed = two_feature_model(32, 8);
        let cfg = DriftConfig {
            window: 4,
            threshold: 0.25,
            feature_threshold: 0.5,
        };
        let mut mon = DriftMonitor::for_model(cfg, &tuned);
        for b in batches(&redistributed, 4, 600) {
            mon.observe(&b);
        }
        // Retune on the redistributed traffic: the monitor re-anchors and
        // the same stream is clean...
        mon.rebase_for_model(&redistributed);
        assert_eq!(mon.reference_feature_lps().len(), 2);
        for b in batches(&redistributed, 4, 700) {
            assert!(!mon.observe(&b));
        }
        // ...but a shift back to the original mix fires again.
        let mut fired = false;
        for b in batches(&tuned, 4, 800) {
            fired |= mon.observe(&b);
        }
        assert!(fired, "per-feature refs survive the rebase");
    }

    #[test]
    fn per_feature_references_match_the_specs() {
        let model = ModelPreset::A.scaled(0.01);
        let per_feature = expected_lookups_per_sample_per_feature(&model);
        assert_eq!(per_feature.len(), model.features.len());
        for (r, f) in per_feature.iter().zip(&model.features) {
            assert!((r - f.coverage * f.pooling.mean()).abs() < 1e-12);
        }
        let total: f64 = per_feature.iter().sum();
        assert!((total - expected_lookups_per_sample(&model)).abs() < 1e-9);
    }

    #[test]
    fn expected_lps_tracks_pf_scale() {
        let model = ModelPreset::A.scaled(0.01);
        let base = expected_lookups_per_sample(&model);
        let doubled = expected_lookups_per_sample(&shift_distribution(&model, 2.0, 0.0));
        assert!(doubled > base * 1.5, "doubling pooling raises expected lps");
    }
}
