//! Per-request latency accounting.
//!
//! Serving quality is a tail-latency story (Section VI-D reports
//! end-to-end latency under concurrent long-tail requests), so the
//! runtime records a full breakdown for every request — queue wait
//! versus device time — and the report exposes nearest-rank percentiles
//! over completed requests plus the shed rate for SLO accounting. The
//! sharded tier adds the fault observables (downtime, hedge fires and
//! wins, failovers, degraded-request rate, availability) that the chaos
//! harness gates on.

use serde::{Deserialize, Serialize};

use crate::lifecycle::{LifecycleEvent, LifecycleStats};

/// Why (or whether) a request was dropped at admission. Serialized under
/// the field name `shed` that used to hold a bool — the vendored
/// serde_derive ignores `#[serde(rename)]` attributes, so the rename is a
/// hand-written `Serialize` impl below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedReason {
    /// The request was served (possibly degraded), not shed.
    #[default]
    None,
    /// Pure load shedding: the backlog already exceeded the SLO deadline
    /// with every lane healthy.
    Admission,
    /// Fault shedding: the backlog exceeded the deadline (or a lane could
    /// not drain at all) while a fault was active — capacity, not
    /// traffic, was the problem.
    Fault,
}

impl ShedReason {
    /// True when the request was dropped for any reason.
    pub fn is_shed(&self) -> bool {
        !matches!(self, ShedReason::None)
    }
}

impl Serialize for ShedReason {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                ShedReason::None => "none",
                ShedReason::Admission => "admission",
                ShedReason::Fault => "fault",
            }
            .to_string(),
        )
    }
}

impl Deserialize for ShedReason {
    /// Accepts both eras of the `shed` field: the pre-PR-3 boolean
    /// (`true` meant shed-at-admission, `false` meant served) and the
    /// current reason string — so archived reports keep parsing.
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Bool(true) => Ok(ShedReason::Admission),
            serde::Value::Bool(false) => Ok(ShedReason::None),
            serde::Value::Str(s) => match s.as_str() {
                "none" => Ok(ShedReason::None),
                "admission" => Ok(ShedReason::Admission),
                "fault" => Ok(ShedReason::Fault),
                other => Err(serde::Error::msg(format!("unknown shed reason `{other}`"))),
            },
            other => Err(serde::Error::msg(format!(
                "expected bool or shed-reason string, got {other:?}"
            ))),
        }
    }
}

/// What happened to one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Stream-unique request id, in arrival order.
    pub id: u64,
    /// Samples in the request.
    pub batch_size: u32,
    /// Arrival timestamp, µs.
    pub arrival_us: f64,
    /// Time spent waiting before the first chunk launched, µs
    /// (batching delay + stream queueing). Zero for shed requests.
    pub queue_us: f64,
    /// Time from first launch to last completion, µs. Zero for shed.
    pub service_us: f64,
    /// Completion timestamp, µs (equals `arrival_us` for shed requests).
    pub done_us: f64,
    /// Whether admission control dropped the request, and why
    /// ([`ShedReason::None`] means it ran).
    pub shed: ShedReason,
}

impl RequestRecord {
    /// End-to-end latency: queue wait plus device service.
    pub fn latency_us(&self) -> f64 {
        self.done_us - self.arrival_us
    }

    /// True when admission control dropped this request.
    pub fn is_shed(&self) -> bool {
        self.shed.is_shed()
    }
}

/// Aggregate outcome of one serving run. `PartialEq` so replay tests can
/// assert two runs of the same seed are *identical*, not merely close.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ServeReport {
    /// One record per request, in arrival order (shed included).
    pub records: Vec<RequestRecord>,
    /// Device kernel launches across the run.
    pub kernel_launches: u64,
    /// Background retunes promoted to the active engine during the run.
    pub retunes: u32,
    /// Timestamp of the last completion (or last arrival if all shed).
    pub makespan_us: f64,
    /// Schedule-lifecycle counters (attempts, failures, rollbacks,
    /// promotions, canary overhead, engine version).
    pub lifecycle: LifecycleStats,
    /// The lifecycle trace: every state-machine transition, in order, so
    /// replay tests can assert two runs walked the same path.
    pub lifecycle_trace: Vec<LifecycleEvent>,
}

impl ServeReport {
    /// Records of requests that actually ran.
    pub fn completed(&self) -> impl Iterator<Item = &RequestRecord> {
        self.records.iter().filter(|r| !r.is_shed())
    }

    /// Fraction of requests shed by admission control, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.is_shed()).count() as f64 / self.records.len() as f64
    }

    /// Mean end-to-end latency over completed requests, µs.
    pub fn mean_latency_us(&self) -> f64 {
        mean(self.completed().map(|r| r.latency_us()))
    }

    /// Nearest-rank latency percentile over completed requests, µs.
    /// `q` in `[0, 1]`; `q = 0` is the minimum, `q = 1` the maximum.
    pub fn percentile_us(&self, q: f64) -> f64 {
        percentile(self.completed().map(|r| r.latency_us()), q)
    }

    /// Mean queue wait over completed requests, µs — the batching +
    /// stream-contention share of latency.
    pub fn mean_queue_us(&self) -> f64 {
        mean(self.completed().map(|r| r.queue_us))
    }
}

/// What happened to one request in the sharded tier: the single-device
/// breakdown plus the cross-shard terms.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardedRequestRecord {
    /// The single-device-shaped record (`service_us` and `done_us`
    /// include the all-gather; latency = queue + device + gather).
    pub base: RequestRecord,
    /// Gating launch to last per-shard kernel completion, µs — the pure
    /// device share of service time. A chunk is "launched" once its
    /// *last* lane picks it up, so a backlogged shard's launch-queue
    /// wait stays in `queue_us` rather than inflating device time.
    pub device_us: f64,
    /// All-gather overhang on the critical path, µs (last device
    /// completion to final completion). Zero with one shard.
    pub gather_us: f64,
    /// Largest straggler gap over this request's chunks, µs: slowest
    /// shard completion minus fastest for the same chunk. The slowest
    /// shard gates the gather, so this is the latency lost to imbalance.
    pub straggler_us: f64,
    /// True when any of this request's chunks was served with partial
    /// embeddings: a crashed shard's features were zero-pooled instead
    /// of gathered (the degradation ladder's availability-over-fidelity
    /// trade).
    pub degraded: bool,
}

/// Aggregate view of one shard's lane over a run.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ShardLaneStats {
    /// Chunks executed on this shard.
    pub jobs: u64,
    /// Total device work submitted, µs.
    pub device_us: f64,
    /// Peak backlog (device-µs owed) observed at any submission.
    pub max_backlog_us: f64,
    /// Peak queue depth (resident + FIFO-queued jobs) at any submission.
    pub max_queue_depth: usize,
    /// Total time this shard was unable to make progress (crash or stall
    /// fault windows clipped to the run), µs.
    pub downtime_us: f64,
    /// Chunks whose work was re-projected off this shard because it
    /// crashed (onto a replica or a survivor lane).
    pub failovers: u64,
}

/// Aggregate outcome of one sharded serving run.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ShardedReport {
    /// One record per request, in arrival order (shed included).
    pub records: Vec<ShardedRequestRecord>,
    /// Per-shard lane statistics, indexed by device.
    pub per_shard: Vec<ShardLaneStats>,
    /// Standby replica lane statistics, in mirrored-shard order (empty
    /// without replication).
    pub per_replica: Vec<ShardLaneStats>,
    /// Kernel launches summed over every shard.
    pub kernel_launches: u64,
    /// Hedged re-executions fired after a chunk-shard deadline expired.
    pub hedge_fires: u64,
    /// Hedges whose replica copy finished before the primary.
    pub hedge_wins: u64,
    /// Chunk-shard work items re-projected off a crashed lane.
    pub failovers: u64,
    /// Timestamp of the last completion (or last arrival if all shed).
    pub makespan_us: f64,
    /// Schedule-lifecycle counters (attempts, failures, rollbacks,
    /// promotions, canary overhead, engine version).
    pub lifecycle: LifecycleStats,
    /// The lifecycle trace: every state-machine transition, in order.
    pub lifecycle_trace: Vec<LifecycleEvent>,
}

impl ShardedReport {
    /// Records of requests that actually ran.
    pub fn completed(&self) -> impl Iterator<Item = &ShardedRequestRecord> {
        self.records.iter().filter(|r| !r.base.is_shed())
    }

    /// Fraction of requests shed by admission control, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.base.is_shed()).count() as f64 / self.records.len() as f64
    }

    /// Fraction of requests shed for the given reason, in `[0, 1]`.
    pub fn shed_rate_for(&self, reason: ShedReason) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|r| r.base.shed == reason)
            .count() as f64
            / self.records.len() as f64
    }

    /// Availability: the fraction of requests that were answered —
    /// completed normally *or* served degraded — in `[0, 1]`. This is the
    /// quantity the degradation ladder protects: a zero-pooled partial
    /// embedding is an answer, a shed request is not.
    pub fn availability(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        1.0 - self.shed_rate()
    }

    /// Fraction of *answered* requests that were served degraded
    /// (partial embeddings), in `[0, 1]`.
    pub fn degraded_rate(&self) -> f64 {
        let (degraded, n) = self
            .completed()
            .fold((0u64, 0u64), |(d, n), r| (d + u64::from(r.degraded), n + 1));
        if n == 0 {
            0.0
        } else {
            degraded as f64 / n as f64
        }
    }

    /// Nearest-rank percentile of end-to-end latency, µs.
    pub fn percentile_us(&self, q: f64) -> f64 {
        percentile(self.completed().map(|r| r.base.latency_us()), q)
    }

    /// Nearest-rank percentile of the pure device share of service, µs.
    pub fn percentile_device_us(&self, q: f64) -> f64 {
        percentile(self.completed().map(|r| r.device_us), q)
    }

    /// Nearest-rank percentile of the straggler gap, µs.
    pub fn percentile_straggler_us(&self, q: f64) -> f64 {
        percentile(self.completed().map(|r| r.straggler_us), q)
    }

    /// Mean all-gather overhang over completed requests, µs.
    pub fn mean_gather_us(&self) -> f64 {
        mean(self.completed().map(|r| r.gather_us))
    }

    /// Mean straggler gap over completed requests, µs.
    pub fn mean_straggler_us(&self) -> f64 {
        mean(self.completed().map(|r| r.straggler_us))
    }

    /// Mean queue wait over completed requests, µs.
    pub fn mean_queue_us(&self) -> f64 {
        mean(self.completed().map(|r| r.base.queue_us))
    }

    /// Merge the reports of one logical run that was served in several
    /// time segments — the shape a drained-and-migrated fleet member
    /// produces (pre-migration traffic on the old class, post-handoff
    /// traffic on the new one). Records concatenate and re-sort by
    /// `(arrival_us, id)` so the merged stream reads as one arrival
    /// order; lane stats concatenate in segment order (the segments may
    /// run on different hardware, so their lanes are distinct);
    /// counters and downtime sum; makespan is the max; lifecycle
    /// counters sum field-wise except `engine_version`, which takes the
    /// max (versions only move forward); traces concatenate in segment
    /// order.
    pub fn merge(parts: Vec<ShardedReport>) -> ShardedReport {
        let mut out = ShardedReport::default();
        for part in parts {
            out.records.extend(part.records);
            out.per_shard.extend(part.per_shard);
            out.per_replica.extend(part.per_replica);
            out.kernel_launches += part.kernel_launches;
            out.hedge_fires += part.hedge_fires;
            out.hedge_wins += part.hedge_wins;
            out.failovers += part.failovers;
            out.makespan_us = out.makespan_us.max(part.makespan_us);
            out.lifecycle.retunes_attempted += part.lifecycle.retunes_attempted;
            out.lifecycle.retunes_failed += part.lifecycle.retunes_failed;
            out.lifecycle.retunes_rolled_back += part.lifecycle.retunes_rolled_back;
            out.lifecycle.retunes_promoted += part.lifecycle.retunes_promoted;
            out.lifecycle.canary_shadow_chunks += part.lifecycle.canary_shadow_chunks;
            out.lifecycle.canary_overhead_us += part.lifecycle.canary_overhead_us;
            out.lifecycle.engine_version = out
                .lifecycle
                .engine_version
                .max(part.lifecycle.engine_version);
            out.lifecycle_trace.extend(part.lifecycle_trace);
        }
        out.records.sort_by(|a, b| {
            a.base
                .arrival_us
                .total_cmp(&b.base.arrival_us)
                .then(a.base.id.cmp(&b.base.id))
        });
        out
    }

    /// The run flattened to the single-device report shape, for code that
    /// only cares about the request-level outcome (and for the 1-shard
    /// equivalence tests).
    pub fn flat(&self) -> ServeReport {
        ServeReport {
            records: self.records.iter().map(|r| r.base.clone()).collect(),
            kernel_launches: self.kernel_launches,
            retunes: self.lifecycle.retunes_promoted,
            makespan_us: self.makespan_us,
            lifecycle: self.lifecycle,
            lifecycle_trace: self.lifecycle_trace.clone(),
        }
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0u64), |(s, n), x| (s + x, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn percentile(xs: impl Iterator<Item = f64>, q: f64) -> f64 {
    let mut v: Vec<f64> = xs.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let rank = ((v.len() as f64 * q).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, arrival: f64, queue: f64, service: f64) -> RequestRecord {
        RequestRecord {
            id,
            batch_size: 32,
            arrival_us: arrival,
            queue_us: queue,
            service_us: service,
            done_us: arrival + queue + service,
            shed: ShedReason::None,
        }
    }

    fn shed(id: u64, arrival: f64) -> RequestRecord {
        RequestRecord {
            id,
            batch_size: 32,
            arrival_us: arrival,
            queue_us: 0.0,
            service_us: 0.0,
            done_us: arrival,
            shed: ShedReason::Admission,
        }
    }

    #[test]
    fn percentiles_over_known_latencies() {
        let report = ServeReport {
            records: (0..10)
                .map(|i| rec(i, 0.0, 0.0, (i + 1) as f64 * 10.0))
                .collect(),
            ..Default::default()
        };
        assert_eq!(report.percentile_us(0.5), 50.0);
        assert_eq!(report.percentile_us(0.9), 90.0);
        assert_eq!(report.percentile_us(1.0), 100.0);
    }

    #[test]
    fn percentile_zero_is_the_minimum() {
        let report = ServeReport {
            records: vec![rec(0, 0.0, 0.0, 30.0), rec(1, 0.0, 0.0, 10.0)],
            ..Default::default()
        };
        assert_eq!(report.percentile_us(0.0), 10.0);
    }

    #[test]
    fn single_record_percentiles_all_agree() {
        let report = ServeReport {
            records: vec![rec(0, 5.0, 2.0, 40.0)],
            ..Default::default()
        };
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(report.percentile_us(q), 42.0);
        }
    }

    #[test]
    fn shed_requests_count_in_shed_rate_not_latency() {
        let report = ServeReport {
            records: vec![
                rec(0, 0.0, 0.0, 100.0),
                shed(1, 1.0),
                shed(2, 2.0),
                rec(3, 3.0, 0.0, 100.0),
            ],
            ..Default::default()
        };
        assert_eq!(report.shed_rate(), 0.5);
        assert_eq!(report.mean_latency_us(), 100.0);
        assert_eq!(report.percentile_us(0.99), 100.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = ServeReport::default();
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.mean_latency_us(), 0.0);
        assert_eq!(report.percentile_us(0.5), 0.0);
    }

    #[test]
    fn shed_reason_serializes_under_the_legacy_field_shape() {
        // The `shed` field stays present by name; the bool became a
        // reason string.
        let json = serde_json::to_string(&shed(1, 2.0)).unwrap();
        assert!(json.contains("\"shed\":\"admission\""), "{json}");
        let json = serde_json::to_string(&rec(1, 0.0, 0.0, 1.0)).unwrap();
        assert!(json.contains("\"shed\":\"none\""), "{json}");
    }

    #[test]
    fn request_records_round_trip_through_json() {
        for record in [rec(7, 3.0, 2.0, 40.0), shed(8, 4.0), {
            let mut r = shed(9, 5.0);
            r.shed = ShedReason::Fault;
            r
        }] {
            let json = serde_json::to_string(&record).unwrap();
            let back: RequestRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, record, "{json}");
        }
    }

    #[test]
    fn boolean_era_shed_field_still_parses() {
        // A record serialized before ShedReason existed: `shed` was a
        // bool, true meaning dropped at admission.
        let legacy_shed = r#"{"id":1,"batch_size":32,"arrival_us":2.0,
            "queue_us":0.0,"service_us":0.0,"done_us":2.0,"shed":true}"#;
        let back: RequestRecord = serde_json::from_str(legacy_shed).unwrap();
        assert_eq!(back.shed, ShedReason::Admission);
        assert!(back.is_shed());

        let legacy_served = r#"{"id":1,"batch_size":32,"arrival_us":0.0,
            "queue_us":1.0,"service_us":9.0,"done_us":10.0,"shed":false}"#;
        let back: RequestRecord = serde_json::from_str(legacy_served).unwrap();
        assert_eq!(back.shed, ShedReason::None);
        assert!(!back.is_shed());
    }

    #[test]
    fn fault_and_admission_reasons_survive_serde_distinctly() {
        let admission = ShedReason::Admission.serialize_value();
        let fault = ShedReason::Fault.serialize_value();
        assert_ne!(admission, fault);
        assert_eq!(
            ShedReason::deserialize_value(&admission),
            Ok(ShedReason::Admission)
        );
        assert_eq!(ShedReason::deserialize_value(&fault), Ok(ShedReason::Fault));
        assert!(ShedReason::deserialize_value(&serde::Value::Str("bogus".into())).is_err());
        assert!(ShedReason::deserialize_value(&serde::Value::UInt(1)).is_err());
    }

    #[test]
    fn merge_interleaves_records_and_sums_counters() {
        let wrap = |base: RequestRecord| ShardedRequestRecord {
            base,
            device_us: 0.0,
            gather_us: 0.0,
            straggler_us: 0.0,
            degraded: false,
        };
        let a = ShardedReport {
            records: vec![wrap(rec(0, 0.0, 0.0, 10.0)), wrap(rec(2, 20.0, 0.0, 10.0))],
            per_shard: vec![ShardLaneStats {
                jobs: 2,
                ..Default::default()
            }],
            kernel_launches: 4,
            hedge_fires: 1,
            makespan_us: 30.0,
            lifecycle: LifecycleStats {
                retunes_promoted: 1,
                engine_version: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = ShardedReport {
            records: vec![wrap(rec(1, 10.0, 0.0, 10.0))],
            per_shard: vec![ShardLaneStats {
                jobs: 1,
                ..Default::default()
            }],
            kernel_launches: 2,
            failovers: 3,
            makespan_us: 20.0,
            lifecycle: LifecycleStats {
                retunes_attempted: 2,
                engine_version: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let merged = ShardedReport::merge(vec![a, b]);
        assert_eq!(
            merged.records.iter().map(|r| r.base.id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "records re-sort into one arrival order"
        );
        assert_eq!(merged.per_shard.len(), 2, "lane stats stay segmented");
        assert_eq!(merged.kernel_launches, 6);
        assert_eq!(merged.hedge_fires, 1);
        assert_eq!(merged.failovers, 3);
        assert_eq!(merged.makespan_us, 30.0);
        assert_eq!(merged.lifecycle.retunes_attempted, 2);
        assert_eq!(merged.lifecycle.retunes_promoted, 1);
        assert_eq!(merged.lifecycle.engine_version, 1, "versions take the max");
    }

    #[test]
    fn merge_of_one_part_reorders_nothing() {
        let wrap = |base: RequestRecord| ShardedRequestRecord {
            base,
            device_us: 1.0,
            gather_us: 2.0,
            straggler_us: 3.0,
            degraded: true,
        };
        let part = ShardedReport {
            records: vec![wrap(rec(0, 0.0, 0.0, 10.0)), wrap(rec(1, 5.0, 0.0, 10.0))],
            makespan_us: 15.0,
            ..Default::default()
        };
        assert_eq!(ShardedReport::merge(vec![part.clone()]), part);
        assert_eq!(ShardedReport::merge(Vec::new()), ShardedReport::default());
    }

    #[test]
    fn availability_counts_degraded_answers_but_not_sheds() {
        let wrap = |base: RequestRecord, degraded: bool| ShardedRequestRecord {
            base,
            device_us: 0.0,
            gather_us: 0.0,
            straggler_us: 0.0,
            degraded,
        };
        let mut fault_shed = shed(2, 2.0);
        fault_shed.shed = ShedReason::Fault;
        let report = ShardedReport {
            records: vec![
                wrap(rec(0, 0.0, 0.0, 10.0), false),
                wrap(rec(1, 1.0, 0.0, 10.0), true),
                wrap(fault_shed, false),
                wrap(shed(3, 3.0), false),
            ],
            ..Default::default()
        };
        assert_eq!(report.availability(), 0.5);
        assert_eq!(report.degraded_rate(), 0.5);
        assert_eq!(report.shed_rate_for(ShedReason::Fault), 0.25);
        assert_eq!(report.shed_rate_for(ShedReason::Admission), 0.25);
        assert_eq!(ShardedReport::default().availability(), 1.0);
    }
}
