//! Per-request latency accounting.
//!
//! Serving quality is a tail-latency story (Section VI-D reports
//! end-to-end latency under concurrent long-tail requests), so the
//! runtime records a full breakdown for every request — queue wait
//! versus device time — and the report exposes nearest-rank percentiles
//! over completed requests plus the shed rate for SLO accounting.

/// What happened to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Stream-unique request id, in arrival order.
    pub id: u64,
    /// Samples in the request.
    pub batch_size: u32,
    /// Arrival timestamp, µs.
    pub arrival_us: f64,
    /// Time spent waiting before the first chunk launched, µs
    /// (batching delay + stream queueing). Zero for shed requests.
    pub queue_us: f64,
    /// Time from first launch to last completion, µs. Zero for shed.
    pub service_us: f64,
    /// Completion timestamp, µs (equals `arrival_us` for shed requests).
    pub done_us: f64,
    /// True when admission control dropped the request to protect the
    /// SLO of everyone behind it.
    pub shed: bool,
}

impl RequestRecord {
    /// End-to-end latency: queue wait plus device service.
    pub fn latency_us(&self) -> f64 {
        self.done_us - self.arrival_us
    }
}

/// Aggregate outcome of one serving run. `PartialEq` so replay tests can
/// assert two runs of the same seed are *identical*, not merely close.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeReport {
    /// One record per request, in arrival order (shed included).
    pub records: Vec<RequestRecord>,
    /// Device kernel launches across the run.
    pub kernel_launches: u64,
    /// Background retunes that completed during the run.
    pub retunes: u32,
    /// Timestamp of the last completion (or last arrival if all shed).
    pub makespan_us: f64,
}

impl ServeReport {
    /// Records of requests that actually ran.
    pub fn completed(&self) -> impl Iterator<Item = &RequestRecord> {
        self.records.iter().filter(|r| !r.shed)
    }

    /// Fraction of requests shed by admission control, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.shed).count() as f64 / self.records.len() as f64
    }

    /// Mean end-to-end latency over completed requests, µs.
    pub fn mean_latency_us(&self) -> f64 {
        let (sum, n) = self
            .completed()
            .fold((0.0, 0u64), |(s, n), r| (s + r.latency_us(), n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Nearest-rank latency percentile over completed requests, µs.
    /// `q` in `[0, 1]`; `q = 0` is the minimum, `q = 1` the maximum.
    pub fn percentile_us(&self, q: f64) -> f64 {
        let mut lat: Vec<f64> = self.completed().map(|r| r.latency_us()).collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((lat.len() as f64 * q).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    }

    /// Mean queue wait over completed requests, µs — the batching +
    /// stream-contention share of latency.
    pub fn mean_queue_us(&self) -> f64 {
        let (sum, n) = self
            .completed()
            .fold((0.0, 0u64), |(s, n), r| (s + r.queue_us, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, arrival: f64, queue: f64, service: f64) -> RequestRecord {
        RequestRecord {
            id,
            batch_size: 32,
            arrival_us: arrival,
            queue_us: queue,
            service_us: service,
            done_us: arrival + queue + service,
            shed: false,
        }
    }

    fn shed(id: u64, arrival: f64) -> RequestRecord {
        RequestRecord {
            id,
            batch_size: 32,
            arrival_us: arrival,
            queue_us: 0.0,
            service_us: 0.0,
            done_us: arrival,
            shed: true,
        }
    }

    #[test]
    fn percentiles_over_known_latencies() {
        let report = ServeReport {
            records: (0..10)
                .map(|i| rec(i, 0.0, 0.0, (i + 1) as f64 * 10.0))
                .collect(),
            ..Default::default()
        };
        assert_eq!(report.percentile_us(0.5), 50.0);
        assert_eq!(report.percentile_us(0.9), 90.0);
        assert_eq!(report.percentile_us(1.0), 100.0);
    }

    #[test]
    fn percentile_zero_is_the_minimum() {
        let report = ServeReport {
            records: vec![rec(0, 0.0, 0.0, 30.0), rec(1, 0.0, 0.0, 10.0)],
            ..Default::default()
        };
        assert_eq!(report.percentile_us(0.0), 10.0);
    }

    #[test]
    fn single_record_percentiles_all_agree() {
        let report = ServeReport {
            records: vec![rec(0, 5.0, 2.0, 40.0)],
            ..Default::default()
        };
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(report.percentile_us(q), 42.0);
        }
    }

    #[test]
    fn shed_requests_count_in_shed_rate_not_latency() {
        let report = ServeReport {
            records: vec![
                rec(0, 0.0, 0.0, 100.0),
                shed(1, 1.0),
                shed(2, 2.0),
                rec(3, 3.0, 0.0, 100.0),
            ],
            ..Default::default()
        };
        assert_eq!(report.shed_rate(), 0.5);
        assert_eq!(report.mean_latency_us(), 100.0);
        assert_eq!(report.percentile_us(0.99), 100.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = ServeReport::default();
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.mean_latency_us(), 0.0);
        assert_eq!(report.percentile_us(0.5), 0.0);
    }
}
