//! Seeded request-arrival streams.
//!
//! Online recommendation traffic is a Poisson process of requests whose
//! batch sizes are heavy-tailed (Section II-C: "the varied batch sizes …
//! contribute to the dynamics", Section VI-D: industrial streams mix many
//! small requests with rare multi-thousand-sample stragglers). A
//! [`WorkloadSpec`] captures both axes — exponential inter-arrival gaps
//! and a size distribution drawn from the same [`PoolingDist`] family the
//! data layer uses for pooling factors — and synthesizes a fully
//! deterministic request stream from one seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recflex_data::{Batch, ModelConfig, PoolingDist};

/// One timestamped inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Stream-unique id, in arrival order.
    pub id: u64,
    /// Arrival time, µs since stream start (monotone within a stream).
    pub arrival_us: f64,
    /// The request payload.
    pub batch: Batch,
}

/// The statistical shape of one request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Mean inter-arrival gap, µs (Poisson arrivals ⇒ exponential gaps).
    pub mean_interarrival_us: f64,
    /// Distribution of `batch_size / size_unit` — reuse the heavy-tailed
    /// families of [`PoolingDist`] (e.g. `PowerLaw` for a long-tail mix).
    pub size_dist: PoolingDist,
    /// Multiplier turning a size-distribution draw into samples, so a
    /// `PowerLaw { max: 80 }` draw with `size_unit = 32` spans 32–2560
    /// samples — the Section VI-D long-tail regime.
    pub size_unit: u32,
}

impl WorkloadSpec {
    /// A Section VI-D-style mix: mostly small requests, occasionally a
    /// multi-thousand-sample tail, at the given offered load.
    pub fn long_tail(mean_interarrival_us: f64) -> Self {
        WorkloadSpec {
            mean_interarrival_us,
            size_dist: PoolingDist::PowerLaw {
                alpha: 1.6,
                max: 80,
            },
            size_unit: 32,
        }
    }

    /// Synthesize `n` requests for `model` from `seed`. Identical
    /// arguments produce byte-identical streams.
    pub fn stream(&self, model: &ModelConfig, n: usize, seed: u64) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_57EA);
        let mut t = 0.0f64;
        (0..n)
            .map(|i| {
                let u: f64 = rng.gen_range(0.0..1.0);
                t += -self.mean_interarrival_us * (1.0 - u).ln();
                let batch_size = (self.size_dist.sample(&mut rng) * self.size_unit).max(1);
                let batch_seed = seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(i as u64)
                    .rotate_left(23);
                Request {
                    id: i as u64,
                    arrival_us: t,
                    batch: Batch::generate(model, batch_size, batch_seed),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recflex_data::ModelPreset;

    #[test]
    fn streams_are_deterministic_and_monotone() {
        let m = ModelPreset::A.scaled(0.01);
        let spec = WorkloadSpec::long_tail(500.0);
        let a = spec.stream(&m, 32, 7);
        let b = spec.stream(&m, 32, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert_ne!(
            a,
            spec.stream(&m, 32, 8),
            "different seed, different stream"
        );
    }

    #[test]
    fn long_tail_mix_is_heavy_tailed() {
        let m = ModelPreset::A.scaled(0.005);
        let reqs = WorkloadSpec::long_tail(100.0).stream(&m, 300, 3);
        let small = reqs.iter().filter(|r| r.batch.batch_size <= 64).count();
        let big = reqs.iter().filter(|r| r.batch.batch_size >= 512).count();
        assert!(small > reqs.len() / 2, "mostly small: {small}/300");
        assert!(big > 0, "tail populated: {big}");
    }

    #[test]
    fn offered_load_tracks_mean_gap() {
        let m = ModelPreset::A.scaled(0.005);
        let reqs = WorkloadSpec::long_tail(200.0).stream(&m, 500, 11);
        let span = reqs.last().unwrap().arrival_us;
        let mean_gap = span / 500.0;
        assert!(
            (mean_gap - 200.0).abs() < 30.0,
            "empirical mean gap {mean_gap}"
        );
    }
}
