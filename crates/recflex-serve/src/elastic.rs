//! Fleet-scale chaos: correlated class outages, health-monitored
//! drain-and-migrate elasticity, and the fleet brownout ladder.
//!
//! PR 3 taught one [`ShardedServeRuntime`] to survive lane faults; this
//! module teaches the *fleet* to survive the failure mode a real device
//! pool actually sees — a whole device class going dark at once — by
//! composing three deterministic mechanisms:
//!
//! 1. **Correlated faults** ([`FleetFaultPlan`]): whole-class
//!    outage/brownout windows expand onto every lane of every member
//!    pinned to that class, on top of per-member background faults.
//! 2. **Health-monitored drain-and-migrate** ([`ElasticityConfig`]):
//!    a per-member health monitor folds per-epoch SLO-attainment
//!    shortfall and queue backlog through leaky-bucket
//!    [`PressureTracker`]s; when either crosses its threshold the
//!    elasticity controller re-solves placement against *residual*
//!    capacity ([`FleetAssignment::rehome`]) and executes the move as a
//!    staged, abortable drain on the §8f rollout cadence
//!    ([`StagedSchedule`]): healthy → draining → migrating →
//!    restored/aborted.
//! 3. **Fleet brownout ladder** ([`FleetBrownoutConfig`]): above the
//!    per-tier degradation ladder, the fleet grades its own pressure and
//!    climbs rung by rung — tighten every [`QueryGate`], then shed the
//!    lowest-priority scenarios, then answer outage-stranded traffic
//!    with degraded zero-pooled edge records instead of shedding it.
//!
//! Determinism is structural, not incidental. A chaos run is three pure
//! passes over the same demuxed streams: an *observe* pass (plain
//! gate-filtered serving under the fault plans) whose records feed the
//! health monitor; a *telemetry* pass with migrations applied whose
//! records grade the brownout ladder; and the *final* pass with both
//! applied. Each pass is a pure function of its inputs and members run
//! sequentially in member order, so the composition replays bit-for-bit
//! at any `RECFLEX_THREADS`. A trivial config short-circuits to
//! [`FleetRuntime::serve`] before touching any state — the no-fault
//! path is byte-identical to the plain fleet by construction, and both
//! invariants are gated by the `serving_fleet_chaos` experiment in CI.
//!
//! [`QueryGate`]: crate::fleet::QueryGate
//! [`ShardedServeRuntime`]: crate::sharded::ShardedServeRuntime

use serde::Serialize;

use recflex_data::FleetAssignment;

use crate::faults::{FleetFaultPlan, PressureSignal, PressureTracker};
use crate::fleet::{
    edge_record, splice_edge_records, FleetModelOutcome, FleetReport, FleetRuntime,
};
use crate::lifecycle::StagedSchedule;
use crate::sharded::ShardedServeRuntime;
use crate::stats::{ShardedReport, ShardedRequestRecord, ShedReason};
use crate::workload::FleetArrival;
use crate::{Request, ServeError};

/// When is a fleet member unhealthy enough to drain?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// How raw per-epoch samples become graded pressure. Use
    /// [`PressureSignal::LeakyBucket`] so one bad epoch cannot trigger
    /// a migration but a sustained outage does.
    pub signal: PressureSignal,
    /// Trigger when graded SLO-attainment *shortfall* (`1 − attainment`
    /// over the epoch's offered requests) exceeds this, in `[0, 1]`.
    pub max_shortfall: f64,
    /// Trigger when graded queue backlog (worst `queue_us` of the
    /// epoch's arrivals) exceeds this, µs.
    pub max_backlog_us: f64,
}

/// The drain-and-migrate controller's knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticityConfig {
    /// Per-member health monitor.
    pub health: HealthPolicy,
    /// Gap between per-shard drain stages, µs — the migration's
    /// [`StagedSchedule`] cadence (one stage per shard lane).
    pub drain_stagger_us: f64,
    /// Dead time between the last drain stage and the member resuming
    /// on its new class, µs (weights shipped, engine warmed).
    pub handoff_us: f64,
    /// `cost_matrix_us[member][class]`: per-sample device cost of each
    /// member on each class — the same measured matrix
    /// [`FleetAssignment::cheapest_fit`] placed with, re-consulted by
    /// [`FleetAssignment::rehome`] at migration time.
    pub cost_matrix_us: Vec<Vec<f64>>,
}

/// The fleet brownout ladder: thresholds on graded fleet-wide
/// attainment shortfall, in `[0, 1]`, exclusive and expected ascending.
///
/// * rung 1 (`> tighten_above`) — every member's [`QueryGate`] deadline
///   is multiplied by `gate_tighten`, rejecting the expensive tail at
///   the edge,
/// * rung 2 (`> shed_above`) — scenarios at the fleet's lowest
///   `priorities` value are shed entirely,
/// * rung 3 (`> degrade_above`) — traffic stranded by an active class
///   outage (and everything a tightened gate rejects) is answered with
///   degraded zero-pooled edge records instead of being shed:
///   availability degrades before goodput does, fleet-wide.
///
/// [`QueryGate`]: crate::fleet::QueryGate
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBrownoutConfig {
    /// How per-epoch fleet shortfall becomes graded pressure.
    pub signal: PressureSignal,
    /// Rung-1 threshold.
    pub tighten_above: f64,
    /// Rung-2 threshold.
    pub shed_above: f64,
    /// Rung-3 threshold.
    pub degrade_above: f64,
    /// Gate-deadline multiplier at rung ≥ 1, in `(0, 1]`.
    pub gate_tighten: f64,
    /// Per-member scenario priorities (larger = more important), in
    /// member order. Rung 2 sheds the members at the minimum value;
    /// empty (or all-equal) priorities disable rung-2 shedding.
    pub priorities: Vec<u32>,
}

impl FleetBrownoutConfig {
    /// The rung at graded shortfall `p`.
    fn level(&self, p: f64) -> u8 {
        if p > self.degrade_above {
            3
        } else if p > self.shed_above {
            2
        } else if p > self.tighten_above {
            1
        } else {
            0
        }
    }
}

/// Everything a chaos run injects on top of the plain fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetChaosConfig {
    /// The materialized fleet fault schedule.
    pub faults: FleetFaultPlan,
    /// Health/brownout observation epoch, µs. Must be positive and
    /// finite when elasticity or brownout is enabled.
    pub epoch_us: f64,
    /// Drain-and-migrate controller; `None` leaves placement static.
    pub elasticity: Option<ElasticityConfig>,
    /// Fleet brownout ladder; `None` never sheds at the fleet edge.
    pub brownout: Option<FleetBrownoutConfig>,
}

impl FleetChaosConfig {
    /// True when the config injects nothing and enables nothing — the
    /// guard for the byte-identity fast path.
    pub fn is_trivial(&self) -> bool {
        self.faults.is_empty() && self.elasticity.is_none() && self.brownout.is_none()
    }
}

/// One drain-and-migrate attempt, as reported.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MigrationRecord {
    /// Member (model) name.
    pub member: String,
    /// Class the member drained from.
    pub from_class: String,
    /// Class the member landed on (`None` when aborted before placement).
    pub to_class: Option<String>,
    /// When the health monitor triggered the drain, µs.
    pub trigger_us: f64,
    /// When the member resumed serving on its new class, µs (`None`
    /// when aborted).
    pub resume_us: Option<f64>,
    /// `"completed"`, `"aborted-no-capacity"`, or
    /// `"aborted-target-outage"`.
    pub outcome: String,
}

/// Post-migration residual capacity of one device class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResidualClassStats {
    /// Class name.
    pub class: String,
    /// Devices in the class.
    pub devices: usize,
    /// Devices consumed by members placed on the class at run end.
    pub used: usize,
    /// Devices still free at run end.
    pub free: isize,
}

/// Chaos/elasticity observables attached to the [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetChaosStats {
    /// Fleet availability: answered (completed or degraded) requests
    /// over all offered requests, in `[0, 1]`.
    pub availability: f64,
    /// Lane-weighted outage downtime, µs: for each member, the merged
    /// outage windows of its original class (clipped to the run, and to
    /// its migration resume when it escaped) times its shard count.
    pub outage_downtime_us: f64,
    /// Drain-and-migrate attempts triggered by the health monitor.
    pub migrations_attempted: u32,
    /// Attempts aborted (no residual capacity, or target outage).
    pub migrations_aborted: u32,
    /// Attempts that completed and resumed on the new class.
    pub migrations_completed: u32,
    /// Every attempt, in member order.
    pub migrations: Vec<MigrationRecord>,
    /// Residual per-class capacity after migrations.
    pub residual: Vec<ResidualClassStats>,
    /// The brownout rung in effect per observation epoch.
    pub ladder: Vec<u8>,
    /// The observation epoch the run graded on, µs.
    pub epoch_us: f64,
    /// Requests answered with degraded zero-pooled edge records at
    /// rung 3.
    pub edge_degraded: u64,
    /// Requests shed because they arrived inside a drain/handoff
    /// window.
    pub drain_shed: u64,
}

/// A committed migration: drain on the staged cadence, resume on the
/// target class after the handoff.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MigrationPlan {
    target: usize,
    drain: StagedSchedule,
    resume_us: f64,
}

/// Aggregate of one chaos serving pass.
struct PassResult {
    models: Vec<FleetModelOutcome>,
    attained_total: u64,
    offered_total: u64,
    edge_degraded: u64,
    drain_shed: u64,
}

impl<'a> FleetRuntime<'a> {
    /// Serve a merged fleet trace under a chaos config. `rebuild(m, c)`
    /// must build member `m`'s sharded runtime against device class `c`
    /// — it is invoked (deterministically, in member order) for every
    /// completed migration's landing class. A trivial config
    /// short-circuits to [`FleetRuntime::serve`] before mutating
    /// anything, so the no-fault path stays byte-identical to the plain
    /// fleet.
    ///
    /// `serve_chaos` owns each member runtime's fault plan: it installs
    /// [`FleetFaultPlan::member_plan`] for the member's *current* class
    /// (background faults plus expanded class windows), which is why it
    /// takes `&mut self`. The rest of each member's
    /// [`ResilienceConfig`](crate::faults::ResilienceConfig) — ladder,
    /// replication, deadlines — is respected as built.
    pub fn serve_chaos<F>(
        &mut self,
        arrivals: &[FleetArrival],
        chaos: &FleetChaosConfig,
        mut rebuild: F,
    ) -> Result<FleetReport, ServeError>
    where
        F: FnMut(usize, usize) -> ShardedServeRuntime<'a>,
    {
        if chaos.is_trivial() {
            return self.serve(arrivals);
        }
        if (chaos.elasticity.is_some() || chaos.brownout.is_some())
            && !(chaos.epoch_us.is_finite() && chaos.epoch_us > 0.0)
        {
            return Err(ServeError::Policy(
                "chaos epoch_us must be positive and finite",
            ));
        }
        if let Some(el) = &chaos.elasticity {
            if el.cost_matrix_us.len() != self.members.len()
                || el
                    .cost_matrix_us
                    .iter()
                    .any(|row| row.len() != self.classes.len())
            {
                return Err(ServeError::Policy(
                    "elasticity cost matrix must be members x classes",
                ));
            }
        }

        // Install each member's fault plan for its pinned class.
        for (i, member) in self.members.iter_mut().enumerate() {
            let shards = member.runtime.placement.num_devices;
            member.runtime.resilience.plan = chaos.faults.member_plan(i, member.class, shards);
        }

        let streams = self.demux(arrivals);
        let horizon_us = streams
            .iter()
            .flat_map(|s| s.iter().map(|r| r.arrival_us))
            .fold(0.0f64, f64::max)
            + chaos.epoch_us.max(1.0);
        let epochs = if chaos.epoch_us > 0.0 {
            (horizon_us / chaos.epoch_us).ceil() as usize
        } else {
            0
        };

        // Observe pass: plain gate-filtered serving under the fault
        // plans feeds the per-member health monitor.
        let (migrations, records) = match &chaos.elasticity {
            Some(el) => {
                let observed = self.serve_streams(&streams)?;
                self.plan_migrations(&observed, chaos, el, epochs)
            }
            None => (vec![None; self.members.len()], Vec::new()),
        };

        // Telemetry pass: migrations applied, no brownout — its records
        // grade the ladder, so rungs clear once a migration has
        // actually relieved the pressure.
        let ladder: Vec<u8> = match &chaos.brownout {
            Some(bw) => {
                let telemetry =
                    self.chaos_pass(&streams, chaos, &migrations, None, &mut rebuild)?;
                ladder_levels(&telemetry.models, chaos.epoch_us, epochs, bw)
            }
            None => vec![0; epochs],
        };

        // Final pass: migrations and brownout both in effect.
        let fin = self.chaos_pass(&streams, chaos, &migrations, Some(&ladder), &mut rebuild)?;

        let final_class: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| migrations[i].map_or(m.class, |p| p.target))
            .collect();
        let (answered, total) = fin.models.iter().fold((0u64, 0u64), |(a, t), m| {
            let shed = m.report.records.iter().filter(|r| r.base.is_shed()).count() as u64;
            let n = m.report.records.len() as u64;
            (a + n - shed, t + n)
        });
        let makespan_us = fin
            .models
            .iter()
            .map(|m| m.report.makespan_us)
            .fold(0.0, f64::max);
        let outage_downtime_us: f64 = self
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let until = migrations[i].map_or(makespan_us, |p| p.resume_us.min(makespan_us));
                chaos.faults.outage_downtime_us(m.class, until)
                    * m.runtime.placement.num_devices as f64
            })
            .sum();
        let mut used = vec![0usize; self.classes.len()];
        for (i, m) in self.members.iter().enumerate() {
            used[final_class[i]] += m.runtime.placement.num_devices;
        }
        let residual = self
            .classes
            .iter()
            .enumerate()
            .map(|(ci, c)| ResidualClassStats {
                class: c.name.clone(),
                devices: c.devices,
                used: used[ci],
                free: c.devices as isize - used[ci] as isize,
            })
            .collect();
        let stats = FleetChaosStats {
            availability: if total == 0 {
                1.0
            } else {
                answered as f64 / total as f64
            },
            outage_downtime_us,
            migrations_attempted: records.len() as u32,
            migrations_aborted: records.iter().filter(|r| r.outcome != "completed").count() as u32,
            migrations_completed: records.iter().filter(|r| r.outcome == "completed").count()
                as u32,
            migrations: records,
            residual,
            ladder,
            epoch_us: chaos.epoch_us,
            edge_degraded: fin.edge_degraded,
            drain_shed: fin.drain_shed,
        };
        Ok(self.assemble(
            fin.models,
            &final_class,
            fin.attained_total,
            fin.offered_total,
            Some(stats),
        ))
    }

    /// The elasticity controller: fold each member's observe-pass
    /// records through its health monitor, and for every member that
    /// trips, re-solve placement against residual capacity and commit
    /// (or abort) a staged drain. Members are processed in member
    /// order; each may migrate at most once.
    fn plan_migrations(
        &self,
        observed: &FleetReport,
        chaos: &FleetChaosConfig,
        el: &ElasticityConfig,
        epochs: usize,
    ) -> (Vec<Option<MigrationPlan>>, Vec<MigrationRecord>) {
        let mut free: Vec<isize> = self.classes.iter().map(|c| c.devices as isize).collect();
        for m in &self.members {
            free[m.class] -= m.runtime.placement.num_devices as isize;
        }
        let mut plans = vec![None; self.members.len()];
        let mut records = Vec::new();
        for (i, member) in self.members.iter().enumerate() {
            let Some(trigger_us) = health_trigger(
                &observed.models[i].report.records,
                member.slo_deadline_us,
                chaos.epoch_us,
                epochs,
                &el.health,
            ) else {
                continue;
            };
            let shards = member.runtime.placement.num_devices;
            let banned: Vec<bool> = (0..self.classes.len())
                .map(|c| c == member.class || chaos.faults.outage_active(c, trigger_us))
                .collect();
            let Some(target) =
                FleetAssignment::rehome(&el.cost_matrix_us[i], shards, &free, &banned)
            else {
                records.push(MigrationRecord {
                    member: member.name.clone(),
                    from_class: self.classes[member.class].name.clone(),
                    to_class: None,
                    trigger_us,
                    resume_us: None,
                    outcome: "aborted-no-capacity".into(),
                });
                continue;
            };
            let drain = StagedSchedule::new(trigger_us, shards, el.drain_stagger_us);
            let resume_us = drain.complete_us() + el.handoff_us.max(0.0);
            // Abort if any drain stage or the handoff would land inside
            // an outage window on the target — the §8f rollout's
            // abort-on-regression check, applied to class health.
            if chaos.faults.outage_overlaps(target, trigger_us, resume_us) {
                records.push(MigrationRecord {
                    member: member.name.clone(),
                    from_class: self.classes[member.class].name.clone(),
                    to_class: Some(self.classes[target].name.clone()),
                    trigger_us,
                    resume_us: None,
                    outcome: "aborted-target-outage".into(),
                });
                continue;
            }
            free[target] -= shards as isize;
            free[member.class] += shards as isize;
            plans[i] = Some(MigrationPlan {
                target,
                drain,
                resume_us,
            });
            records.push(MigrationRecord {
                member: member.name.clone(),
                from_class: self.classes[member.class].name.clone(),
                to_class: Some(self.classes[target].name.clone()),
                trigger_us,
                resume_us: Some(resume_us),
                outcome: "completed".into(),
            });
        }
        (plans, records)
    }

    /// One chaos serving pass: every request is resolved at the fleet
    /// edge (brownout rungs, drain windows, gates) or routed to the
    /// member's pre-/post-migration runtime; segment reports merge back
    /// into one per-member report.
    fn chaos_pass<F>(
        &self,
        streams: &[Vec<Request>],
        chaos: &FleetChaosConfig,
        migrations: &[Option<MigrationPlan>],
        ladder: Option<&[u8]>,
        rebuild: &mut F,
    ) -> Result<PassResult, ServeError>
    where
        F: FnMut(usize, usize) -> ShardedServeRuntime<'a>,
    {
        let bw = chaos.brownout.as_ref();
        let prio = bw.map(|b| b.priorities.as_slice()).unwrap_or(&[]);
        let (prio_min, prio_max) = prio
            .iter()
            .fold((u32::MAX, u32::MIN), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        let shed_priorities = prio.len() == self.members.len() && prio_min < prio_max;
        let rung_at = |t: f64| -> u8 {
            match ladder {
                Some(l) if chaos.epoch_us > 0.0 => {
                    let k = (t / chaos.epoch_us) as usize;
                    l.get(k).copied().unwrap_or(0)
                }
                _ => 0,
            }
        };

        let mut models = Vec::with_capacity(self.members.len());
        let mut attained_total = 0u64;
        let mut offered_total = 0u64;
        let mut edge_degraded = 0u64;
        let mut drain_shed = 0u64;
        for (i, (member, stream)) in self.members.iter().zip(streams).enumerate() {
            let mig = migrations[i];
            let offered = stream.len() as u64;
            let mut pre = Vec::new();
            let mut post = Vec::new();
            let mut edge: Vec<ShardedRequestRecord> = Vec::new();
            for r in stream {
                let t = r.arrival_us;
                let rung = rung_at(t);
                // Rung 2: the lowest-priority scenarios are shed whole.
                if rung >= 2 && shed_priorities && prio[i] == prio_min {
                    edge.push(edge_record(r, ShedReason::Admission, false));
                    continue;
                }
                // Drain/handoff window: neither runtime can take the
                // request. Rung 3 answers it degraded; otherwise shed.
                if let Some(p) = mig {
                    if t >= p.drain.start_us && t < p.resume_us {
                        if rung >= 3 {
                            edge.push(edge_record(r, ShedReason::None, true));
                            edge_degraded += 1;
                        } else {
                            edge.push(edge_record(r, ShedReason::Admission, false));
                            drain_shed += 1;
                        }
                        continue;
                    }
                }
                // Rung 3: traffic stranded on a class inside an active
                // outage window is answered degraded at the edge.
                let class_now = mig
                    .filter(|p| t >= p.resume_us)
                    .map_or(member.class, |p| p.target);
                if rung >= 3 && chaos.faults.outage_active(class_now, t) {
                    edge.push(edge_record(r, ShedReason::None, true));
                    edge_degraded += 1;
                    continue;
                }
                // Admission gate, tightened at rung ≥ 1.
                if let Some(g) = member.gate {
                    let tighten = match bw {
                        Some(b) if rung >= 1 => b.gate_tighten.clamp(0.0, 1.0),
                        _ => 1.0,
                    };
                    let admits =
                        r.batch.batch_size as f64 * g.cost_per_sample_us <= g.deadline_us * tighten;
                    if !admits {
                        if rung >= 3 {
                            edge.push(edge_record(r, ShedReason::None, true));
                            edge_degraded += 1;
                        } else {
                            edge.push(edge_record(r, ShedReason::Admission, false));
                        }
                        continue;
                    }
                }
                match mig {
                    Some(p) if t >= p.resume_us => post.push(r.clone()),
                    _ => pre.push(r.clone()),
                }
            }
            let gate_shed = edge
                .iter()
                .filter(|e| e.base.shed == ShedReason::Admission)
                .count() as u64;
            let pre_report = member.runtime.serve(&pre)?;
            let mut report = match mig {
                Some(p) => {
                    let mut landed = rebuild(i, p.target);
                    landed.resilience.plan =
                        chaos
                            .faults
                            .member_plan(i, p.target, landed.placement.num_devices);
                    let post_report = landed.serve(&post)?;
                    ShardedReport::merge(vec![pre_report, post_report])
                }
                None => pre_report,
            };
            splice_edge_records(&mut report, edge);
            let final_class = mig.map_or(member.class, |p| p.target);
            let (outcome, attained) =
                self.finish_member(member, final_class, offered, gate_shed, report);
            attained_total += attained;
            offered_total += offered;
            models.push(outcome);
        }
        Ok(PassResult {
            models,
            attained_total,
            offered_total,
            edge_degraded,
            drain_shed,
        })
    }
}

/// Fold one member's records through its health monitor and return the
/// first epoch-end timestamp at which graded shortfall or backlog
/// crosses its threshold — the drain trigger. Empty epochs (no
/// arrivals) are skipped, not observed as healthy.
fn health_trigger(
    records: &[ShardedRequestRecord],
    slo_deadline_us: Option<f64>,
    epoch_us: f64,
    epochs: usize,
    health: &HealthPolicy,
) -> Option<f64> {
    if epochs == 0 || epoch_us <= 0.0 {
        return None;
    }
    let mut offered = vec![0u64; epochs];
    let mut attained = vec![0u64; epochs];
    let mut backlog = vec![0.0f64; epochs];
    for r in records {
        let k = ((r.base.arrival_us / epoch_us) as usize).min(epochs - 1);
        offered[k] += 1;
        let ok = !r.base.is_shed() && slo_deadline_us.is_none_or(|d| r.base.latency_us() <= d);
        if ok {
            attained[k] += 1;
        }
        backlog[k] = backlog[k].max(r.base.queue_us);
    }
    let mut shortfall_p = PressureTracker::default();
    let mut backlog_p = PressureTracker::default();
    for k in 0..epochs {
        if offered[k] == 0 {
            continue;
        }
        let now = (k + 1) as f64 * epoch_us;
        let s = shortfall_p.observe(
            now,
            1.0 - attained[k] as f64 / offered[k] as f64,
            health.signal,
        );
        let b = backlog_p.observe(now, backlog[k], health.signal);
        if s > health.max_shortfall || b > health.max_backlog_us {
            return Some(now);
        }
    }
    None
}

/// Grade the fleet brownout ladder from a telemetry pass: per-epoch
/// fleet-wide attainment shortfall, folded through the brownout's
/// pressure signal, mapped to a rung per epoch. Epochs with no offered
/// traffic carry the previous graded pressure forward.
fn ladder_levels(
    models: &[FleetModelOutcome],
    epoch_us: f64,
    epochs: usize,
    bw: &FleetBrownoutConfig,
) -> Vec<u8> {
    if epochs == 0 || epoch_us <= 0.0 {
        return Vec::new();
    }
    let mut offered = vec![0u64; epochs];
    let mut attained = vec![0u64; epochs];
    for m in models {
        for r in &m.report.records {
            let k = ((r.base.arrival_us / epoch_us) as usize).min(epochs - 1);
            offered[k] += 1;
            let ok =
                !r.base.is_shed() && m.slo_deadline_us.is_none_or(|d| r.base.latency_us() <= d);
            if ok {
                attained[k] += 1;
            }
        }
    }
    let mut tracker = PressureTracker::default();
    let mut p = 0.0f64;
    (0..epochs)
        .map(|k| {
            if offered[k] > 0 {
                let now = (k + 1) as f64 * epoch_us;
                p = tracker.observe(now, 1.0 - attained[k] as f64 / offered[k] as f64, bw.signal);
            }
            bw.level(p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{ClassFaultKind, ClassFaultWindow, FleetFaultSpec};
    use crate::fleet::{DeviceClass, FleetMember};
    use crate::runtime::{BatchPolicy, ServeConfig};
    use crate::workload::{FleetWorkload, ScenarioSpec, TrafficShape};
    use crate::WorkloadSpec;
    use proptest::prelude::*;
    use recflex_baselines::TorchRecBackend;
    use recflex_data::{ModelConfig, ModelPreset, Placement};
    use recflex_sim::{GpuArch, Interconnect};

    const EPOCH_US: f64 = 1_000.0;
    const OUTAGE: (f64, f64) = (4_000.0, 12_000.0);

    fn build<'a>(model: &'a ModelConfig, arch: &'a GpuArch) -> ShardedServeRuntime<'a> {
        ShardedServeRuntime::build(
            model,
            arch,
            Placement::balance(model, 1),
            ServeConfig {
                streams: 2,
                policy: BatchPolicy::Split { cap: 256 },
                // Tier-level SLO shedding so an unmitigated outage sheds
                // (reason Fault) instead of queueing forever.
                slo_deadline_us: Some(3_000.0),
                closed_loop: false,
                hot_shard_cap: None,
            },
            Interconnect::nvlink(),
            |m| Box::new(TorchRecBackend::compile(m)),
        )
    }

    fn scenario(name: &str, n: usize, priority: u32) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            workload: WorkloadSpec::long_tail(400.0),
            shape: TrafficShape::flat(),
            requests: n,
            priority,
        }
    }

    fn outage(class: usize, start: f64, end: f64) -> ClassFaultWindow {
        ClassFaultWindow {
            class,
            kind: ClassFaultKind::Outage,
            start_us: start,
            end_us: end,
        }
    }

    fn one_member_fleet<'a>(
        model: &'a ModelConfig,
        v100: &'a GpuArch,
        a100: &'a GpuArch,
        spare_devices: usize,
    ) -> FleetRuntime<'a> {
        FleetRuntime {
            classes: vec![
                DeviceClass {
                    name: "V100".into(),
                    arch: v100,
                    devices: 1,
                },
                DeviceClass {
                    name: "A100".into(),
                    arch: a100,
                    devices: spare_devices,
                },
            ],
            members: vec![FleetMember {
                name: "a".into(),
                class: 0,
                runtime: build(model, v100),
                slo_deadline_us: Some(3_000.0),
                gate: None,
                tuning: None,
            }],
        }
    }

    fn elasticity() -> ElasticityConfig {
        ElasticityConfig {
            health: HealthPolicy {
                signal: PressureSignal::Instantaneous,
                max_shortfall: 0.6,
                max_backlog_us: f64::INFINITY,
            },
            drain_stagger_us: 100.0,
            handoff_us: 1_000.0,
            cost_matrix_us: vec![vec![1.0, 1.2]],
        }
    }

    fn chaos_with_outage(elastic: bool) -> FleetChaosConfig {
        FleetChaosConfig {
            faults: FleetFaultSpec {
                class_windows: vec![outage(0, OUTAGE.0, OUTAGE.1)],
                background: None,
            }
            .plan(&[1], 30_000.0, 7),
            epoch_us: EPOCH_US,
            elasticity: elastic.then(elasticity),
            brownout: None,
        }
    }

    fn chaos_stats(report: &crate::fleet::FleetReport) -> Result<&FleetChaosStats, ServeError> {
        report
            .chaos
            .as_ref()
            .ok_or(ServeError::Internal("chaos stats missing"))
    }

    #[test]
    fn trivial_chaos_reproduces_plain_serve_byte_for_byte() -> Result<(), ServeError> {
        let model = ModelPreset::A.scaled(0.02);
        let (v100, a100) = (GpuArch::v100(), GpuArch::a100());
        let workload = FleetWorkload {
            scenarios: vec![scenario("a", 24, 1)],
            seed: 42,
        };
        let merged = workload.merged(&[&model]);
        let mut fleet = one_member_fleet(&model, &v100, &a100, 1);
        let plain = fleet.serve(&merged)?;
        let chaos = FleetChaosConfig {
            faults: FleetFaultPlan::none(1),
            epoch_us: EPOCH_US,
            elasticity: None,
            brownout: None,
        };
        assert!(chaos.is_trivial());
        let chaotic = fleet.serve_chaos(&merged, &chaos, |_, _| panic!("must not rebuild"))?;
        assert_eq!(
            serde_json::to_string(&plain).ok(),
            serde_json::to_string(&chaotic).ok(),
            "empty plan + disabled elasticity must reproduce serve byte-for-byte"
        );
        assert!(chaotic.chaos.is_none());
        Ok(())
    }

    #[test]
    fn class_outage_triggers_a_completed_drain_and_migrate() -> Result<(), ServeError> {
        let model = ModelPreset::A.scaled(0.02);
        let (v100, a100) = (GpuArch::v100(), GpuArch::a100());
        let workload = FleetWorkload {
            scenarios: vec![scenario("a", 48, 1)],
            seed: 42,
        };
        let merged = workload.merged(&[&model]);
        let mut fleet = one_member_fleet(&model, &v100, &a100, 1);
        let report = fleet.serve_chaos(&merged, &chaos_with_outage(true), |_, c| {
            assert_eq!(c, 1, "the only surviving class is A100");
            build(&model, &a100)
        })?;
        let stats = chaos_stats(&report)?;
        assert_eq!(stats.migrations_attempted, 1);
        assert_eq!(stats.migrations_completed, 1);
        assert_eq!(stats.migrations_aborted, 0);
        let mig = &stats.migrations[0];
        assert_eq!(mig.outcome, "completed");
        assert_eq!(mig.from_class, "V100");
        assert_eq!(mig.to_class.as_deref(), Some("A100"));
        // Requests in flight when the class goes dark finish late, so
        // the monitor can surface the damage in their *arrival* epoch,
        // slightly before the outage itself opens.
        assert!(
            mig.trigger_us > 0.0 && mig.trigger_us <= OUTAGE.1,
            "the health monitor triggers off the outage: {}",
            mig.trigger_us
        );
        let resume = mig
            .resume_us
            .ok_or(ServeError::Internal("completed migrations must resume"))?;
        assert!(resume > mig.trigger_us);
        // The member escaped: its outcome is attributed to A100, the
        // spare A100 device is consumed, and V100 is free again.
        assert_eq!(report.models[0].class, "A100");
        assert_eq!(stats.residual[0].free, 1);
        assert_eq!(stats.residual[1].free, 0);
        assert!(stats.outage_downtime_us > 0.0);
        // Every offered request has a record (edge sheds included).
        assert_eq!(report.models[0].report.records.len(), 48);
        // Post-resume traffic actually completes on the new class.
        let post_ok = report.models[0]
            .report
            .records
            .iter()
            .filter(|r| r.base.arrival_us >= resume && !r.base.is_shed())
            .count();
        assert!(post_ok > 0, "post-migration traffic must be served");
        Ok(())
    }

    #[test]
    fn elasticity_beats_static_placement_under_an_outage() -> Result<(), ServeError> {
        let model = ModelPreset::A.scaled(0.02);
        let (v100, a100) = (GpuArch::v100(), GpuArch::a100());
        let workload = FleetWorkload {
            scenarios: vec![scenario("a", 48, 1)],
            seed: 42,
        };
        let merged = workload.merged(&[&model]);
        let availability = |elastic: bool| {
            let mut fleet = one_member_fleet(&model, &v100, &a100, 1);
            let report = fleet.serve_chaos(&merged, &chaos_with_outage(elastic), |_, _| {
                build(&model, &a100)
            })?;
            Ok::<f64, ServeError>(chaos_stats(&report)?.availability)
        };
        assert!(
            availability(true)? > availability(false)?,
            "migrating off the dead class must strictly improve availability"
        );
        Ok(())
    }

    #[test]
    fn no_residual_capacity_aborts_the_migration() -> Result<(), ServeError> {
        let model = ModelPreset::A.scaled(0.02);
        let (v100, a100) = (GpuArch::v100(), GpuArch::a100());
        let workload = FleetWorkload {
            scenarios: vec![scenario("a", 48, 1)],
            seed: 42,
        };
        let merged = workload.merged(&[&model]);
        // Zero spare A100 devices: rehome must refuse to oversubscribe.
        let mut fleet = one_member_fleet(&model, &v100, &a100, 0);
        let report = fleet.serve_chaos(&merged, &chaos_with_outage(true), |_, _| {
            panic!("aborted migrations must not rebuild")
        })?;
        let stats = chaos_stats(&report)?;
        assert_eq!(stats.migrations_attempted, 1);
        assert_eq!(stats.migrations_aborted, 1);
        assert_eq!(stats.migrations_completed, 0);
        assert_eq!(stats.migrations[0].outcome, "aborted-no-capacity");
        assert!(stats.migrations[0].resume_us.is_none());
        assert_eq!(report.models[0].class, "V100", "the member stays put");
        Ok(())
    }

    #[test]
    fn target_outage_aborts_the_staged_drain() -> Result<(), ServeError> {
        let model = ModelPreset::A.scaled(0.02);
        let (v100, a100) = (GpuArch::v100(), GpuArch::a100());
        let workload = FleetWorkload {
            scenarios: vec![scenario("a", 48, 1)],
            seed: 42,
        };
        let merged = workload.merged(&[&model]);
        // Learn the deterministic trigger timestamp from a clean run…
        let trigger = {
            let mut fleet = one_member_fleet(&model, &v100, &a100, 1);
            let report = fleet.serve_chaos(&merged, &chaos_with_outage(true), |_, _| {
                build(&model, &a100)
            })?;
            chaos_stats(&report)?.migrations[0].trigger_us
        };
        // …then open an A100 outage inside the drain+handoff window but
        // strictly after the trigger: the controller places onto A100
        // (healthy at decision time) and the staged abort check fires.
        let mut cfg = chaos_with_outage(true);
        cfg.faults = FleetFaultSpec {
            class_windows: vec![
                outage(0, OUTAGE.0, OUTAGE.1),
                outage(1, trigger + 10.0, trigger + 20_000.0),
            ],
            background: None,
        }
        .plan(&[1], 30_000.0, 7);
        let mut fleet = one_member_fleet(&model, &v100, &a100, 1);
        let report = fleet.serve_chaos(&merged, &cfg, |_, _| {
            panic!("aborted migrations must not rebuild")
        })?;
        let stats = chaos_stats(&report)?;
        assert_eq!(stats.migrations[0].outcome, "aborted-target-outage");
        assert_eq!(stats.migrations[0].to_class.as_deref(), Some("A100"));
        assert_eq!(stats.migrations_completed, 0);
        assert_eq!(report.models[0].class, "V100");
        Ok(())
    }

    #[test]
    fn brownout_rung_three_degrades_stranded_traffic_instead_of_shedding() -> Result<(), ServeError>
    {
        let model = ModelPreset::A.scaled(0.02);
        let (v100, a100) = (GpuArch::v100(), GpuArch::a100());
        let workload = FleetWorkload {
            scenarios: vec![scenario("a", 48, 1)],
            seed: 42,
        };
        let merged = workload.merged(&[&model]);
        let run = |brownout: Option<FleetBrownoutConfig>| {
            let mut cfg = chaos_with_outage(false);
            cfg.brownout = brownout;
            let mut fleet = one_member_fleet(&model, &v100, &a100, 1);
            fleet.serve_chaos(&merged, &cfg, |_, _| panic!("no elasticity, no rebuild"))
        };
        let faults_only = run(None)?;
        let browned = run(Some(FleetBrownoutConfig {
            signal: PressureSignal::Instantaneous,
            tighten_above: 0.01,
            shed_above: 0.03,
            degrade_above: 0.05,
            gate_tighten: 1.0,
            priorities: Vec::new(),
        }))?;
        let stats = chaos_stats(&browned)?;
        assert!(
            stats.ladder.contains(&3),
            "the outage must climb the fleet ladder to rung 3: {:?}",
            stats.ladder
        );
        assert!(stats.edge_degraded > 0, "stranded traffic answers degraded");
        assert!(
            stats.availability > chaos_stats(&faults_only)?.availability,
            "degraded edge answers must beat shedding on availability"
        );
        Ok(())
    }

    #[test]
    fn brownout_rung_two_sheds_only_the_lowest_priority_scenario() -> Result<(), ServeError> {
        let model = ModelPreset::A.scaled(0.02);
        let (v100, a100) = (GpuArch::v100(), GpuArch::a100());
        let workload = FleetWorkload {
            scenarios: vec![scenario("low", 32, 0), scenario("high", 32, 5)],
            seed: 42,
        };
        let merged = workload.merged(&[&model, &model]);
        let mut fleet = FleetRuntime {
            classes: vec![
                DeviceClass {
                    name: "V100".into(),
                    arch: &v100,
                    devices: 1,
                },
                DeviceClass {
                    name: "A100".into(),
                    arch: &a100,
                    devices: 1,
                },
            ],
            members: vec![
                FleetMember {
                    name: "low".into(),
                    class: 0,
                    runtime: build(&model, &v100),
                    slo_deadline_us: Some(3_000.0),
                    gate: None,
                    tuning: None,
                },
                FleetMember {
                    name: "high".into(),
                    class: 1,
                    runtime: build(&model, &a100),
                    slo_deadline_us: Some(3_000.0),
                    gate: None,
                    tuning: None,
                },
            ],
        };
        let cfg = FleetChaosConfig {
            faults: FleetFaultSpec {
                class_windows: vec![outage(0, OUTAGE.0, OUTAGE.1)],
                background: None,
            }
            .plan(&[1, 1], 30_000.0, 7),
            epoch_us: EPOCH_US,
            elasticity: None,
            brownout: Some(FleetBrownoutConfig {
                signal: PressureSignal::Instantaneous,
                tighten_above: 0.01,
                shed_above: 0.03,
                degrade_above: 2.0, // unreachable: the ladder caps at rung 2
                gate_tighten: 1.0,
                priorities: vec![0, 5],
            }),
        };
        let report = fleet.serve_chaos(&merged, &cfg, |_, _| panic!("no elasticity"))?;
        let stats = chaos_stats(&report)?;
        assert!(
            stats.ladder.contains(&2) && stats.ladder.iter().all(|&l| l < 3),
            "ladder must reach exactly rung 2: {:?}",
            stats.ladder
        );
        assert!(
            report.models[0].gate_shed > 0,
            "the low-priority scenario is shed at the edge"
        );
        assert_eq!(
            report.models[1].gate_shed, 0,
            "the high-priority scenario is untouched"
        );
        Ok(())
    }

    proptest! {
        /// Satellite replay gate: the same seed and `FleetFaultSpec`
        /// yield an identical migration trace and a byte-identical
        /// `FleetReport` across runs. (The CI `threads-replay` matrix
        /// extends this equality across `RECFLEX_THREADS`.)
        #[test]
        fn chaos_runs_replay_bit_for_bit(seed in 0u64..6) {
            // Kept deliberately small: each case is two full three-pass
            // chaos runs, and the default case count multiplies it.
            let model = ModelPreset::A.scaled(0.01);
            let (v100, a100) = (GpuArch::v100(), GpuArch::a100());
            let workload = FleetWorkload {
                scenarios: vec![scenario("a", 12, 1)],
                seed,
            };
            let merged = workload.merged(&[&model]);
            let spec = FleetFaultSpec {
                class_windows: vec![outage(0, OUTAGE.0, OUTAGE.1)],
                background: Some(crate::faults::FaultSpec::mixed(8_000.0, 2_000.0)),
            };
            let mut cfg = chaos_with_outage(true);
            cfg.faults = spec.plan(&[1], 30_000.0, seed);
            let run = || {
                let mut fleet = one_member_fleet(&model, &v100, &a100, 1);
                fleet
                    .serve_chaos(&merged, &cfg, |_, _| build(&model, &a100))
                    .ok()
                    .and_then(|report| serde_json::to_string(&report).ok())
            };
            let (a, b) = (run(), run());
            prop_assert!(a.is_some(), "a faulty chaos run must still serve");
            prop_assert_eq!(a, b, "same inputs must replay bit-for-bit");
        }
    }
}
