//! Fleet tier: several models, several device classes, one report.
//!
//! A production recommendation fleet does not serve one model on one
//! device type. It serves a portfolio — a handful of models with wildly
//! different feature mixes — over a pool of heterogeneous accelerators,
//! and the placement of models onto device classes decides fleet-wide
//! SLO attainment (Hercules makes this point for training clusters;
//! DeepRecSys for per-query scheduling). The fleet tier composes:
//!
//! - a [`FleetWorkload`](crate::workload::FleetWorkload) — the merged,
//!   deterministic multi-scenario arrival trace,
//! - one [`ShardedServeRuntime`] per model, pinned to a device class,
//! - an optional per-model [`QueryGate`] — the DeepRecSys-style
//!   batch-size-aware accept/queue decision applied *before* a request
//!   enters the model's runtime,
//! - per-model SLO deadlines and a fleet-wide attainment roll-up.
//!
//! Determinism: the fleet runs each member runtime on its demuxed slice
//! of the merged trace, in member order. Every member run is itself a
//! pure function of its inputs, so the fleet report is bit-reproducible
//! and a degenerate one-model fleet (no gate, no deadline) serializes
//! byte-identically to the underlying [`ShardedServeRuntime`] report —
//! both invariants are gated by tests and by the `serving_fleet`
//! experiment in CI.

use serde::Serialize;

use crate::elastic::FleetChaosStats;
use crate::lifecycle::EngineTuning;
use crate::sharded::ShardedServeRuntime;
use crate::stats::{RequestRecord, ShardedReport, ShardedRequestRecord, ShedReason};
use crate::workload::FleetArrival;
use crate::Request;
use crate::ServeError;
use recflex_sim::GpuArch;

/// Synthesize the record of a request resolved *at the fleet edge*,
/// before it could enter any member runtime: an admission/brownout shed
/// (`shed != None`) or a degraded zero-pooled edge answer (`degraded`)
/// — zero queue, zero service, done at arrival. Keeps edge decisions
/// visible in the same record stream the runtimes produce, so
/// availability and shed-reason accounting see every offered request.
pub(crate) fn edge_record(req: &Request, shed: ShedReason, degraded: bool) -> ShardedRequestRecord {
    ShardedRequestRecord {
        base: RequestRecord {
            id: req.id,
            batch_size: req.batch.batch_size,
            arrival_us: req.arrival_us,
            queue_us: 0.0,
            service_us: 0.0,
            done_us: req.arrival_us,
            shed,
        },
        device_us: 0.0,
        gather_us: 0.0,
        straggler_us: 0.0,
        degraded,
    }
}

/// Splice edge-synthesized records into a member report and restore one
/// arrival order over the combined stream.
pub(crate) fn splice_edge_records(report: &mut ShardedReport, edge: Vec<ShardedRequestRecord>) {
    if edge.is_empty() {
        return;
    }
    report.records.extend(edge);
    report.records.sort_by(|a, b| {
        a.base
            .arrival_us
            .total_cmp(&b.base.arrival_us)
            .then(a.base.id.cmp(&b.base.id))
    });
}

/// A pool of identical simulated devices — one heterogeneity bucket.
pub struct DeviceClass<'a> {
    /// Class name, for reports (e.g. `"V100"`).
    pub name: String,
    /// The simulated device architecture every pool member shares.
    pub arch: &'a GpuArch,
    /// How many devices the class contributes to the fleet budget.
    pub devices: usize,
}

/// A per-query admission gate: the DeepRecSys-style accept/queue
/// decision. A request whose batch would blow the model's latency budget
/// on its assigned class is shed *at the fleet edge* instead of
/// poisoning the lane's queue for everyone behind it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QueryGate {
    /// Measured per-sample device cost on the member's class, µs.
    pub cost_per_sample_us: f64,
    /// Largest acceptable predicted device time for one query, µs.
    pub deadline_us: f64,
}

impl QueryGate {
    /// Accept a query of `batch_size` pooled samples?
    pub fn admits(&self, batch_size: u32) -> bool {
        batch_size as f64 * self.cost_per_sample_us <= self.deadline_us
    }
}

/// One model in the fleet: its serving runtime, the device class it is
/// placed on, and its SLO policy.
pub struct FleetMember<'a> {
    /// Model/scenario name, for reports.
    pub name: String,
    /// Index into the fleet's device classes.
    pub class: usize,
    /// The model's own sharded serving tier, built against the class
    /// arch.
    pub runtime: ShardedServeRuntime<'a>,
    /// End-to-end latency SLO for this model class, µs. `None` means
    /// every completed request attains.
    pub slo_deadline_us: Option<f64>,
    /// Per-query admission gate. `None` admits everything.
    pub gate: Option<QueryGate>,
    /// How this member's engines were tuned, when the builder went
    /// through the shared profile vault (replicas of one model reuse one
    /// sidecar). `None` for plainly tuned members.
    pub tuning: Option<EngineTuning>,
}

/// The fleet runtime: a pool of device classes and the members placed on
/// them.
pub struct FleetRuntime<'a> {
    /// The heterogeneity buckets.
    pub classes: Vec<DeviceClass<'a>>,
    /// The models, in scenario order — member `i` serves scenario `i` of
    /// the fleet workload.
    pub members: Vec<FleetMember<'a>>,
}

/// Per-model outcome in the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetModelOutcome {
    /// Model name.
    pub name: String,
    /// Name of the device class the model was placed on.
    pub class: String,
    /// Devices (shards) the model's runtime spans.
    pub shards: usize,
    /// The model's SLO deadline, if any.
    pub slo_deadline_us: Option<f64>,
    /// Requests offered to this model, including gate-shed ones.
    pub requests_offered: u64,
    /// Requests shed by the admission gate before entering the runtime.
    pub gate_shed: u64,
    /// Fraction of offered requests that completed within the SLO.
    pub slo_attainment: f64,
    /// Median end-to-end latency over completed requests, µs.
    pub p50_us: f64,
    /// Tail end-to-end latency over completed requests, µs.
    pub p99_us: f64,
    /// Vault tuning accounting carried over from the member, if any.
    pub tuning: Option<EngineTuning>,
    /// The member runtime's full report.
    pub report: ShardedReport,
}

/// Per-device-class utilization in the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceClassStats {
    /// Class name.
    pub name: String,
    /// Devices in the class.
    pub devices: usize,
    /// Total device-busy time accumulated by members on this class, µs.
    pub busy_us: f64,
    /// `busy_us / (devices × fleet makespan)`.
    pub utilization: f64,
}

/// The fleet-wide report: per-model outcomes, per-class utilization, and
/// the headline SLO attainment number placement strategies compete on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Per-model outcomes, in member order.
    pub models: Vec<FleetModelOutcome>,
    /// Per-class utilization, in class order.
    pub classes: Vec<DeviceClassStats>,
    /// Fleet makespan: the latest member makespan, µs.
    pub makespan_us: f64,
    /// Fleet-wide SLO attainment: attained requests over offered
    /// requests, across all members.
    pub slo_attainment: f64,
    /// Chaos/elasticity observables, populated only by
    /// [`FleetRuntime::serve_chaos`](crate::elastic) runs; `None` (and
    /// serialized as `null`) on the plain serving path.
    pub chaos: Option<FleetChaosStats>,
}

impl<'a> FleetRuntime<'a> {
    /// Serve a merged fleet trace: demux by scenario (preserving the
    /// merged order, which is already per-scenario arrival order) and
    /// run every member on its slice.
    pub fn serve(&self, arrivals: &[FleetArrival]) -> Result<FleetReport, ServeError> {
        self.serve_streams(&self.demux(arrivals))
    }

    /// Demux a merged fleet trace into per-member request streams
    /// (preserving the merged order, which is already per-scenario
    /// arrival order).
    pub(crate) fn demux(&self, arrivals: &[FleetArrival]) -> Vec<Vec<Request>> {
        let mut streams: Vec<Vec<Request>> = vec![Vec::new(); self.members.len()];
        for a in arrivals {
            streams[a.scenario].push(a.request.clone());
        }
        streams
    }

    /// Serve pre-demuxed per-member request streams. `streams[i]` goes
    /// to member `i` after its admission gate; gate rejections surface
    /// as [`ShedReason::Admission`] records in the member report, so
    /// every offered request has a record.
    pub fn serve_streams(&self, streams: &[Vec<Request>]) -> Result<FleetReport, ServeError> {
        assert_eq!(streams.len(), self.members.len());
        let mut models = Vec::with_capacity(self.members.len());
        let mut attained_total = 0u64;
        let mut offered_total = 0u64;
        for (member, stream) in self.members.iter().zip(streams) {
            let offered = stream.len() as u64;
            let (admitted, rejected): (Vec<Request>, Vec<Request>) = match member.gate {
                None => (stream.clone(), Vec::new()),
                Some(gate) => stream
                    .iter()
                    .cloned()
                    .partition(|r| gate.admits(r.batch.batch_size)),
            };
            let gate_shed = rejected.len() as u64;
            let mut report = member.runtime.serve(&admitted)?;
            splice_edge_records(
                &mut report,
                rejected
                    .iter()
                    .map(|r| edge_record(r, ShedReason::Admission, false))
                    .collect(),
            );
            let (outcome, attained) =
                self.finish_member(member, member.class, offered, gate_shed, report);
            attained_total += attained;
            offered_total += offered;
            models.push(outcome);
        }
        let class_of: Vec<usize> = self.members.iter().map(|m| m.class).collect();
        Ok(self.assemble(models, &class_of, attained_total, offered_total, None))
    }

    /// Roll one member's finished report up into its fleet outcome,
    /// returning the outcome and the member's attained-request count.
    /// `class` is the device class the outcome is attributed to — the
    /// member's pinned class on the plain path, its *final* class after
    /// a chaos-path migration.
    pub(crate) fn finish_member(
        &self,
        member: &FleetMember<'a>,
        class: usize,
        offered: u64,
        gate_shed: u64,
        report: ShardedReport,
    ) -> (FleetModelOutcome, u64) {
        let attained = report
            .records
            .iter()
            .filter(|r| {
                !r.base.is_shed()
                    && member
                        .slo_deadline_us
                        .is_none_or(|d| r.base.latency_us() <= d)
            })
            .count() as u64;
        let outcome = FleetModelOutcome {
            name: member.name.clone(),
            class: self.classes[class].name.clone(),
            shards: member.runtime.placement.num_devices,
            slo_deadline_us: member.slo_deadline_us,
            requests_offered: offered,
            gate_shed,
            slo_attainment: if offered == 0 {
                1.0
            } else {
                attained as f64 / offered as f64
            },
            p50_us: report.percentile_us(0.50),
            p99_us: report.percentile_us(0.99),
            tuning: member.tuning,
            report,
        };
        (outcome, attained)
    }

    /// Assemble the fleet report from finished member outcomes.
    /// `class_of[i]` attributes member `i`'s busy time to a device class
    /// — the pinned classes on the plain path (where this reproduces the
    /// historical arithmetic branch-for-branch), the final post-migration
    /// classes on the chaos path.
    pub(crate) fn assemble(
        &self,
        models: Vec<FleetModelOutcome>,
        class_of: &[usize],
        attained_total: u64,
        offered_total: u64,
        chaos: Option<FleetChaosStats>,
    ) -> FleetReport {
        let makespan_us = models
            .iter()
            .map(|m| m.report.makespan_us)
            .fold(0.0, f64::max);
        let classes = self
            .classes
            .iter()
            .enumerate()
            .map(|(ci, class)| {
                let busy_us: f64 = class_of
                    .iter()
                    .zip(&models)
                    .filter(|(&c, _)| c == ci)
                    .map(|(_, out)| {
                        out.report
                            .per_shard
                            .iter()
                            .chain(&out.report.per_replica)
                            .map(|s| s.device_us)
                            .sum::<f64>()
                    })
                    .sum();
                let capacity = class.devices as f64 * makespan_us;
                DeviceClassStats {
                    name: class.name.clone(),
                    devices: class.devices,
                    busy_us,
                    utilization: if capacity > 0.0 {
                        busy_us / capacity
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        FleetReport {
            models,
            classes,
            makespan_us,
            slo_attainment: if offered_total == 0 {
                1.0
            } else {
                attained_total as f64 / offered_total as f64
            },
            chaos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{BatchPolicy, ServeConfig};
    use crate::workload::{FleetWorkload, ScenarioSpec, TrafficShape};
    use crate::WorkloadSpec;
    use recflex_baselines::TorchRecBackend;
    use recflex_data::{ModelPreset, Placement};
    use recflex_sim::Interconnect;

    fn config() -> ServeConfig {
        ServeConfig {
            streams: 2,
            policy: BatchPolicy::Split { cap: 256 },
            slo_deadline_us: None,
            closed_loop: false,
            hot_shard_cap: None,
        }
    }

    /// A 1-model, 1-class fleet with no gate and no deadline is the
    /// underlying sharded runtime, bit for bit: the serialized member
    /// report equals the report from calling the runtime directly.
    #[test]
    fn degenerate_fleet_reproduces_sharded_runtime_byte_for_byte() {
        let model = ModelPreset::A.scaled(0.05);
        let arch = GpuArch::v100();
        let placement = Placement::balance(&model, 2);
        let build = || {
            ShardedServeRuntime::build(
                &model,
                &arch,
                placement.clone(),
                config(),
                Interconnect::nvlink(),
                |m| Box::new(TorchRecBackend::compile(m)),
            )
        };
        let workload = FleetWorkload {
            scenarios: vec![ScenarioSpec {
                name: "a".into(),
                workload: WorkloadSpec::long_tail(400.0),
                shape: TrafficShape::flat(),
                requests: 32,
                priority: 1,
            }],
            seed: 42,
        };
        let merged = workload.merged(&[&model]);

        let fleet = FleetRuntime {
            classes: vec![DeviceClass {
                name: "V100".into(),
                arch: &arch,
                devices: 2,
            }],
            members: vec![FleetMember {
                name: "a".into(),
                class: 0,
                runtime: build(),
                slo_deadline_us: None,
                gate: None,
                tuning: None,
            }],
        };
        let fleet_report = fleet.serve(&merged).expect("fleet serve");

        let direct = build()
            .serve(&WorkloadSpec::long_tail(400.0).stream(&model, 32, 42))
            .expect("direct serve");

        assert_eq!(
            serde_json::to_string(&fleet_report.models[0].report).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "degenerate fleet must reproduce the sharded runtime bit-for-bit"
        );
        assert_eq!(fleet_report.models[0].gate_shed, 0);
        assert!((fleet_report.makespan_us - direct.makespan_us).abs() == 0.0);
        // No deadline: attainment is completion rate.
        assert_eq!(
            fleet_report.slo_attainment,
            1.0 - direct.shed_rate(),
            "attainment without a deadline is the completion rate"
        );

        // Replay the whole fleet report too.
        let again = fleet.serve(&merged).expect("fleet replay");
        assert_eq!(fleet_report, again, "fleet replay must be bit-identical");
    }

    #[test]
    fn query_gate_sheds_oversized_batches_at_the_edge() {
        let model = ModelPreset::A.scaled(0.05);
        let arch = GpuArch::v100();
        let build = || {
            ShardedServeRuntime::build(
                &model,
                &arch,
                Placement::balance(&model, 1),
                config(),
                Interconnect::nvlink(),
                |m| Box::new(TorchRecBackend::compile(m)),
            )
        };
        let workload = FleetWorkload {
            scenarios: vec![ScenarioSpec {
                name: "a".into(),
                workload: WorkloadSpec::long_tail(400.0),
                shape: TrafficShape::flat(),
                requests: 48,
                priority: 1,
            }],
            seed: 11,
        };
        let merged = workload.merged(&[&model]);
        let sizes: Vec<u32> = merged.iter().map(|a| a.request.batch.batch_size).collect();
        let cut = *sizes.iter().max().unwrap() as f64; // gate out only the max
        let gate = QueryGate {
            cost_per_sample_us: 1.0,
            deadline_us: cut - 0.5,
        };
        let expect_shed = sizes.iter().filter(|&&s| !gate.admits(s)).count() as u64;
        assert!(expect_shed > 0, "test needs at least one oversized batch");

        let fleet = FleetRuntime {
            classes: vec![DeviceClass {
                name: "V100".into(),
                arch: &arch,
                devices: 1,
            }],
            members: vec![FleetMember {
                name: "a".into(),
                class: 0,
                runtime: build(),
                slo_deadline_us: None,
                gate: Some(gate),
                tuning: None,
            }],
        };
        let report = fleet.serve(&merged).expect("fleet serve");
        assert_eq!(report.models[0].gate_shed, expect_shed);
        let records = &report.models[0].report.records;
        assert_eq!(
            records.len() as u64,
            48,
            "gated requests keep an edge record instead of vanishing"
        );
        let admission_shed = records
            .iter()
            .filter(|r| r.base.shed == crate::stats::ShedReason::Admission)
            .count() as u64;
        assert_eq!(
            admission_shed, expect_shed,
            "gate rejections surface as ShedReason::Admission"
        );
        for pair in records.windows(2) {
            assert!(
                pair[0].base.arrival_us <= pair[1].base.arrival_us,
                "edge records splice back into arrival order"
            );
        }
        // Gate-shed requests count against attainment.
        assert!(report.models[0].slo_attainment <= 1.0 - expect_shed as f64 / 48.0);
    }

    #[test]
    fn class_utilization_accounts_member_busy_time() {
        let (ma, mb) = (ModelPreset::A.scaled(0.05), ModelPreset::C.scaled(0.05));
        let v100 = GpuArch::v100();
        let edge = GpuArch::edge();
        fn build<'a>(
            model: &'a recflex_data::ModelConfig,
            arch: &'a GpuArch,
        ) -> ShardedServeRuntime<'a> {
            ShardedServeRuntime::build(
                model,
                arch,
                Placement::balance(model, 1),
                config(),
                Interconnect::nvlink(),
                |m| Box::new(TorchRecBackend::compile(m)),
            )
        }
        let workload = FleetWorkload {
            scenarios: vec![
                ScenarioSpec {
                    name: "a".into(),
                    workload: WorkloadSpec::long_tail(300.0),
                    shape: TrafficShape::flat(),
                    requests: 24,
                    priority: 1,
                },
                ScenarioSpec {
                    name: "c".into(),
                    workload: WorkloadSpec::long_tail(500.0),
                    shape: TrafficShape::flat(),
                    requests: 16,
                    priority: 1,
                },
            ],
            seed: 5,
        };
        let merged = workload.merged(&[&ma, &mb]);
        let fleet = FleetRuntime {
            classes: vec![
                DeviceClass {
                    name: "V100".into(),
                    arch: &v100,
                    devices: 1,
                },
                DeviceClass {
                    name: "Edge".into(),
                    arch: &edge,
                    devices: 1,
                },
            ],
            members: vec![
                FleetMember {
                    name: "a".into(),
                    class: 0,
                    runtime: build(&ma, &v100),
                    slo_deadline_us: None,
                    gate: None,
                    tuning: None,
                },
                FleetMember {
                    name: "c".into(),
                    class: 1,
                    runtime: build(&mb, &edge),
                    slo_deadline_us: None,
                    gate: None,
                    tuning: None,
                },
            ],
        };
        let report = fleet.serve(&merged).expect("fleet serve");
        assert_eq!(report.classes.len(), 2);
        for (ci, class) in report.classes.iter().enumerate() {
            let expect: f64 = report.models[ci]
                .report
                .per_shard
                .iter()
                .map(|s| s.device_us)
                .sum();
            assert!((class.busy_us - expect).abs() < 1e-9);
            assert!(class.utilization > 0.0 && class.utilization <= 1.0);
        }
        assert!(report.makespan_us >= report.models[0].report.makespan_us);
        assert!(report.makespan_us >= report.models[1].report.makespan_us);
    }
}
