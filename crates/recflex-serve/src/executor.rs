//! Multi-stream device executor.
//!
//! Online serving time-shares one device among concurrent kernels
//! (Section VI-D runs one CUDA stream per in-flight request). The
//! simulator models that as deterministic *processor sharing*: up to
//! `streams` kernels are resident at once and each resident kernel
//! progresses at rate `1/k` when `k` are resident, so total device
//! throughput is one µs of work per µs of wall time regardless of
//! occupancy. Kernels beyond the stream limit wait in a FIFO launch
//! queue. The model is event-driven and exactly reproducible: ties are
//! broken by submission order, never by wall clock or hash order.
//!
//! Fault injection hooks into the same model: a *slowdown* scales the
//! device's aggregate throughput (rate `r` µs of work per µs of wall
//! time), a *stall* is rate zero (resident kernels freeze in place), and
//! a *crash* drains every resident and queued kernel without completion
//! events so the serving tier can re-execute or degrade them. At the
//! default rate of 1 every code path is arithmetically identical to the
//! fault-free model — the no-fault bit-for-bit guarantee leans on
//! `x / 1.0 == x` and `x * 1.0 == x` being exact in IEEE arithmetic.

use std::collections::VecDeque;

/// Caller-chosen identifier for a unit of device work.
pub type JobId = u64;

#[derive(Debug, Clone)]
struct Job {
    id: JobId,
    /// Device-µs of work still to do (at `clock`, for resident jobs).
    remaining_us: f64,
}

/// A deterministic processor-sharing model of one device.
#[derive(Debug)]
pub struct DeviceExecutor {
    streams: usize,
    clock: f64,
    /// Aggregate throughput: µs of device work retired per µs of wall
    /// time. 1 is a healthy device, (0, 1) a fault-injected slowdown,
    /// 0 a stall (kernels freeze until the rate recovers).
    rate: f64,
    resident: Vec<Job>,
    queue: VecDeque<Job>,
    started: Vec<(f64, JobId)>,
    completed: Vec<(f64, JobId)>,
}

impl DeviceExecutor {
    /// A device that can keep `streams` kernels resident (≥ 1).
    pub fn new(streams: u32) -> Self {
        DeviceExecutor {
            streams: streams.max(1) as usize,
            clock: 0.0,
            rate: 1.0,
            resident: Vec::new(),
            queue: VecDeque::new(),
            started: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Submit `work_us` of device work at time `now_us` (must be ≥ the
    /// timestamp of every earlier call — the runtime's event loop is
    /// monotone). The job starts immediately if a stream is free,
    /// otherwise it queues FIFO.
    pub fn submit(&mut self, now_us: f64, id: JobId, work_us: f64) {
        self.advance_to(now_us);
        self.queue.push_back(Job {
            id,
            remaining_us: work_us.max(0.0),
        });
        self.promote();
    }

    /// The absolute time at which the next resident kernel finishes, if
    /// any work is in flight. A stalled device (rate 0) never completes
    /// on its own — it needs a rate recovery first.
    pub fn next_completion_us(&self) -> Option<f64> {
        if self.rate <= 0.0 {
            return None;
        }
        let k = self.resident.len();
        self.resident
            .iter()
            .map(|j| j.remaining_us)
            .fold(None, |m: Option<f64>, r| Some(m.map_or(r, |m| m.min(r))))
            .map(|min| self.clock + min * k as f64 / self.rate)
    }

    /// Change the device's aggregate throughput at time `now_us`,
    /// accounting all progress made under the old rate first. Rate 1 is
    /// healthy, (0, 1) a slowdown, 0 a stall.
    pub fn set_rate(&mut self, now_us: f64, rate: f64) {
        self.advance_to(now_us);
        self.rate = rate.max(0.0);
    }

    /// The current aggregate throughput.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Kill the device at time `now_us`: every resident and queued kernel
    /// is dropped *without* a completion event and their ids are returned
    /// (resident first, in submission order, then the FIFO queue) so the
    /// caller can re-execute them elsewhere or serve degraded output.
    /// Partial progress on resident kernels is lost.
    pub fn fail_all(&mut self, now_us: f64) -> Vec<JobId> {
        self.advance_to(now_us);
        let mut failed: Vec<JobId> = self.resident.drain(..).map(|j| j.id).collect();
        failed.extend(self.queue.drain(..).map(|j| j.id));
        failed
    }

    /// Cancel one kernel at time `now_us` (hedged re-execution lost the
    /// race, or its chunk was served degraded). Progress is accounted
    /// first; a freed stream immediately promotes queued work. Returns
    /// false if the job already completed or was never submitted.
    pub fn cancel(&mut self, now_us: f64, id: JobId) -> bool {
        self.advance_to(now_us);
        if let Some(i) = self.resident.iter().position(|j| j.id == id) {
            self.resident.remove(i);
            self.promote();
            return true;
        }
        if let Some(i) = self.queue.iter().position(|j| j.id == id) {
            self.queue.remove(i);
            return true;
        }
        false
    }

    /// Total device-µs of outstanding work (resident + queued). Because
    /// aggregate throughput is 1, this is exactly the time the device
    /// needs to drain if nothing else arrives — the quantity SLO
    /// admission control compares against a request's deadline.
    pub fn backlog_us(&self) -> f64 {
        self.resident.iter().map(|j| j.remaining_us).sum::<f64>()
            + self.queue.iter().map(|j| j.remaining_us).sum::<f64>()
    }

    /// True when no work is resident or queued.
    pub fn is_idle(&self) -> bool {
        self.resident.is_empty() && self.queue.is_empty()
    }

    /// Jobs currently on the device: resident plus FIFO-queued. The
    /// sharded tier samples this at every submission to report per-shard
    /// peak queue depth.
    pub fn depth(&self) -> usize {
        self.resident.len() + self.queue.len()
    }

    /// Advance the device clock to `t`, retiring every kernel that
    /// finishes on the way and promoting queued kernels into freed
    /// streams. Completions are buffered for [`Self::drain_completed`].
    pub fn advance_to(&mut self, t: f64) {
        while self.clock < t {
            if self.resident.is_empty() || self.rate <= 0.0 {
                // Nothing resident, or stalled: time passes, work doesn't.
                self.clock = t;
                break;
            }
            let k = self.resident.len() as f64;
            let min_rem = self
                .resident
                .iter()
                .map(|j| j.remaining_us)
                .fold(f64::INFINITY, f64::min);
            let finish_at = self.clock + min_rem * k / self.rate;
            if finish_at > t {
                let per_job = (t - self.clock) * self.rate / k;
                for j in &mut self.resident {
                    j.remaining_us -= per_job;
                }
                self.clock = t;
                break;
            }
            for j in &mut self.resident {
                j.remaining_us -= min_rem;
            }
            self.clock = finish_at;
            // Retire in submission order (Vec order), so simultaneous
            // completions resolve deterministically.
            let mut i = 0;
            while i < self.resident.len() {
                if self.resident[i].remaining_us <= 1e-9 {
                    let job = self.resident.remove(i);
                    self.completed.push((self.clock, job.id));
                } else {
                    i += 1;
                }
            }
            self.promote();
        }
    }

    /// Take every completion recorded so far, in completion order.
    pub fn drain_completed(&mut self) -> Vec<(f64, JobId)> {
        std::mem::take(&mut self.completed)
    }

    /// Take every kernel-start event recorded so far, in start order —
    /// the moment a job left the FIFO launch queue and became resident.
    /// The gap between submission and start is the stream-queue wait.
    pub fn drain_started(&mut self) -> Vec<(f64, JobId)> {
        std::mem::take(&mut self.started)
    }

    fn promote(&mut self) {
        while self.resident.len() < self.streams {
            match self.queue.pop_front() {
                Some(job) if job.remaining_us <= 1e-9 => {
                    // Zero-cost work retires instantly.
                    self.started.push((self.clock, job.id));
                    self.completed.push((self.clock, job.id));
                }
                Some(job) => {
                    self.started.push((self.clock, job.id));
                    self.resident.push(job);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_idle(ex: &mut DeviceExecutor) -> Vec<(f64, JobId)> {
        while let Some(t) = ex.next_completion_us() {
            ex.advance_to(t);
        }
        ex.drain_completed()
    }

    #[test]
    fn single_job_takes_its_own_cost() {
        let mut ex = DeviceExecutor::new(4);
        ex.submit(10.0, 1, 100.0);
        assert_eq!(run_until_idle(&mut ex), vec![(110.0, 1)]);
    }

    #[test]
    fn processor_sharing_slows_concurrent_jobs() {
        // Two equal jobs each run at half rate: both finish at 200.
        let mut ex = DeviceExecutor::new(4);
        ex.submit(0.0, 1, 100.0);
        ex.submit(0.0, 2, 100.0);
        assert_eq!(run_until_idle(&mut ex), vec![(200.0, 1), (200.0, 2)]);
    }

    #[test]
    fn unequal_jobs_finish_at_work_conserving_times() {
        // B(50) at half rate finishes at 100; A then runs alone and
        // finishes its remaining 50 at 150. Total work 150 is conserved.
        let mut ex = DeviceExecutor::new(4);
        ex.submit(0.0, 1, 100.0);
        ex.submit(0.0, 2, 50.0);
        assert_eq!(run_until_idle(&mut ex), vec![(100.0, 2), (150.0, 1)]);
    }

    #[test]
    fn single_stream_is_fifo_serial() {
        let mut ex = DeviceExecutor::new(1);
        ex.submit(0.0, 1, 100.0);
        ex.submit(0.0, 2, 50.0);
        ex.submit(120.0, 3, 30.0);
        assert_eq!(
            run_until_idle(&mut ex),
            vec![(100.0, 1), (150.0, 2), (180.0, 3)]
        );
    }

    #[test]
    fn backlog_is_total_outstanding_work() {
        let mut ex = DeviceExecutor::new(2);
        ex.submit(0.0, 1, 100.0);
        ex.submit(0.0, 2, 60.0);
        ex.submit(0.0, 3, 40.0); // queued
        assert!((ex.backlog_us() - 200.0).abs() < 1e-9);
        ex.advance_to(50.0); // 25 µs progress per resident job
        assert!((ex.backlog_us() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn start_events_measure_stream_queue_wait() {
        let mut ex = DeviceExecutor::new(1);
        ex.submit(0.0, 1, 100.0);
        ex.submit(0.0, 2, 50.0);
        run_until_idle(&mut ex);
        assert_eq!(ex.drain_started(), vec![(0.0, 1), (100.0, 2)]);
    }

    #[test]
    fn slowdown_stretches_completions_by_the_rate() {
        // 100 µs of work at rate 0.5 takes 200 µs of wall time.
        let mut ex = DeviceExecutor::new(4);
        ex.set_rate(0.0, 0.5);
        ex.submit(0.0, 1, 100.0);
        assert_eq!(run_until_idle(&mut ex), vec![(200.0, 1)]);
    }

    #[test]
    fn mid_flight_rate_change_accounts_prior_progress() {
        // Half the work at rate 1 (50 µs), the rest at rate 0.25 (200 µs).
        let mut ex = DeviceExecutor::new(1);
        ex.submit(0.0, 1, 100.0);
        ex.set_rate(50.0, 0.25);
        assert_eq!(run_until_idle(&mut ex), vec![(250.0, 1)]);
    }

    #[test]
    fn stall_freezes_work_until_recovery() {
        let mut ex = DeviceExecutor::new(1);
        ex.submit(0.0, 1, 100.0);
        ex.set_rate(30.0, 0.0);
        assert_eq!(ex.next_completion_us(), None, "stalled device never fires");
        ex.advance_to(500.0);
        assert!(
            (ex.backlog_us() - 70.0).abs() < 1e-9,
            "no progress while stalled"
        );
        ex.set_rate(500.0, 1.0);
        assert_eq!(run_until_idle(&mut ex), vec![(570.0, 1)]);
    }

    #[test]
    fn fail_all_drains_resident_and_queued_without_completions() {
        let mut ex = DeviceExecutor::new(1);
        ex.submit(0.0, 1, 100.0);
        ex.submit(0.0, 2, 50.0);
        let failed = ex.fail_all(10.0);
        assert_eq!(failed, vec![1, 2], "resident first, then the queue");
        assert!(ex.is_idle());
        assert!(ex.drain_completed().is_empty());
        // The device serves fresh work normally after the crash.
        ex.submit(20.0, 3, 30.0);
        assert_eq!(run_until_idle(&mut ex), vec![(50.0, 3)]);
    }

    #[test]
    fn cancel_removes_one_job_and_promotes_queued_work() {
        let mut ex = DeviceExecutor::new(1);
        ex.submit(0.0, 1, 100.0);
        ex.submit(0.0, 2, 50.0);
        assert!(ex.cancel(10.0, 1), "resident job cancels");
        assert!(!ex.cancel(10.0, 1), "already gone");
        // Job 2 starts at the cancellation instant and runs alone.
        assert_eq!(run_until_idle(&mut ex), vec![(60.0, 2)]);
        assert_eq!(ex.drain_started(), vec![(0.0, 1), (10.0, 2)]);
    }

    #[test]
    fn queued_work_promotes_when_a_stream_frees() {
        let mut ex = DeviceExecutor::new(1);
        ex.submit(0.0, 1, 10.0);
        ex.submit(0.0, 2, 10.0);
        ex.advance_to(5.0);
        assert_eq!(ex.next_completion_us(), Some(10.0));
        let done = run_until_idle(&mut ex);
        assert_eq!(done, vec![(10.0, 1), (20.0, 2)]);
    }
}
